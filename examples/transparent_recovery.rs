//! Transparent recovery across every error class of Table 1, on a 3D
//! (data × pipeline × tensor) parallel job, with the Table-7-style step
//! breakdown printed for each recovery.
//!
//! ```sh
//! cargo run --example transparent_recovery
//! ```

use cluster::{FailureInjector, SharedStore};
use jitckpt::transparent::run_transparent_job;
use simcore::cost::CostModel;
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::layout::ParallelLayout;
use simcore::RankId;
use std::sync::Arc;

fn main() {
    let scenarios = [
        (
            "transient network fault (in the all-reduce)",
            FailureKind::TransientNetwork,
            Phase::AllReduce,
        ),
        (
            "driver-state corruption (host round-trip)",
            FailureKind::DriverCorruption,
            Phase::Backward,
        ),
        (
            "sticky CUDA error (replica copy)",
            FailureKind::StickyCuda,
            Phase::Forward,
        ),
        (
            "failure inside the optimizer step (roll forward)",
            FailureKind::StickyCuda,
            Phase::OptimizerStep,
        ),
        (
            "hard GPU failure (migration + CRIU)",
            FailureKind::GpuHardware,
            Phase::Backward,
        ),
    ];
    for (label, kind, phase) in scenarios {
        let mut cfg = dltrain::TrainConfig::tiny_dp(1);
        cfg.layout = ParallelLayout::three_d(2, 2, 2);
        let injector =
            FailureInjector::with_specs(vec![FailureSpec::new(3, phase, RankId(5), kind)]);
        println!("== {label} ==");
        let out = run_transparent_job(
            cfg,
            CostModel::v100(),
            injector,
            Arc::new(SharedStore::new()),
            7,
        )
        .expect("recovery");
        let victim = out
            .reports
            .iter()
            .find(|r| r.rank == RankId(5))
            .expect("victim report");
        println!("  mode: {:?}, recovery rounds: {}", victim.mode, out.rounds);
        for s in &victim.steps {
            println!("    {:45} {:>9.3}s", s.name, s.time.as_secs());
        }
        println!("    {:45} {:>9.3}s (total)", "", victim.total.as_secs());
        let finite = out.losses[2].iter().filter(|l| l.is_finite()).count();
        println!("  loss-bearing iterations completed: {finite}/7\n");
    }
    println!("All five error classes recovered without the training loop");
    println!("ever observing an error.");
}

//! Quickstart: train a small data-parallel job under transparent JIT
//! checkpointing, inject a failure, and watch training finish as if
//! nothing happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cluster::{FailureInjector, SharedStore};
use jitckpt::transparent::run_transparent_job;
use simcore::cost::CostModel;
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::RankId;
use std::sync::Arc;

fn main() {
    // A 4-way data-parallel job (the smallest shape that shows replica
    // based recovery).
    let cfg = dltrain::TrainConfig::tiny_dp(4);
    let iters = 12;

    // Schedule a sticky CUDA error on rank 2, in the backward pass of
    // iteration 5 — the classic single-GPU failure of the paper's study.
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        5,
        Phase::Backward,
        RankId(2),
        FailureKind::StickyCuda,
    )]);

    println!("Training 4-rank DP job for {iters} iterations;");
    println!("a sticky CUDA error will hit rank 2 at iteration 5...\n");

    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .expect("job must survive the failure");

    println!("recovery rounds: {}", out.rounds);
    println!("losses (rank 0):");
    for (i, l) in out.losses[0].iter().enumerate() {
        let marker = if i == 5 {
            "   <- failure + JIT recovery here"
        } else {
            ""
        };
        println!("  iter {i:2}: {l:.6}{marker}");
    }
    println!("\nPer-rank recovery reports:");
    for r in &out.reports {
        println!(
            "  {}: mode {:?}, victim = {}, total {:.2}s (virtual)",
            r.rank,
            r.mode,
            r.was_victim,
            r.total.as_secs()
        );
    }
    println!("\nThe training loop never saw an error — that is the point of §4.");
}

//! Interactive exploration of the §5 wasted-work model: sweep GPU count,
//! failure rate, and checkpoint cost, and compare periodic checkpointing
//! at the optimal frequency against both JIT designs.
//!
//! ```sh
//! cargo run --example cost_explorer                 # defaults (BERT-L-PT-like)
//! cargo run --example cost_explorer 5 9.9 0.4 2     # o r m f_per_day_per_992
//! ```

use jitckpt::analysis::{
    monthly_failure_cost_dollars, optimal_frequency, scaling_curve, wasted_fraction,
    wasted_rate_periodic_optimal, JobParams,
};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let o = args.first().copied().unwrap_or(5.0);
    let r = args.get(1).copied().unwrap_or(9.9);
    let m = args.get(2).copied().unwrap_or(0.418);
    let f992 = args.get(3).copied().unwrap_or(2.0);
    let f_day = f992 / 992.0;
    println!("model: o = {o}s/checkpoint, r = {r}s fixed recovery, m = {m}s/minibatch,");
    println!("       f = {f992} failures/day per 992 GPUs\n");

    let base = JobParams::new(o, f_day, r, 4, m);
    println!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>14}",
        "N", "c*/hour", "periodic w_f", "JIT-user w_f", "JIT-transp w_f"
    );
    let ns = [4usize, 16, 64, 256, 1024, 4096, 8192, 16384];
    for p in scaling_curve(&base, &ns, 0.0, 0.0001) {
        println!(
            "{:>6}  {:>10.3}  {:>11.4}%  {:>11.4}%  {:>13.4}%",
            p.n,
            p.c_star_per_hour,
            p.wf_periodic * 100.0,
            p.wf_jit_user * 100.0,
            p.wf_jit_transparent * 100.0
        );
    }

    // Where does periodic checkpointing start to really hurt?
    println!("\ndollar cost of the periodic-checkpointing waste (@ $4/GPU-hr):");
    for n in [1_000usize, 4_000, 10_000] {
        let p = JobParams::new(o, f_day, r, n, m);
        let wf = wasted_fraction(wasted_rate_periodic_optimal(&p));
        // Wasted GPU-hours/month = N × 730 h × w_f; cost at $4/h.
        let monthly = n as f64 * 730.0 * wf * 4.0;
        println!(
            "  N = {n:>6}: w_f = {:>6.3}% → ~${monthly:>10.0}/month",
            wf * 100.0
        );
    }

    // The paper's §5.1 back-of-envelope for comparison.
    println!(
        "\n§5.1 reference points: 1000 GPUs → ${:.0}/month, 10000 GPUs → ${:.0}/month",
        monthly_failure_cost_dollars(1000, 1.0, 0.25, 4.0),
        monthly_failure_cost_dollars(10_000, 10.0, 0.25, 4.0),
    );
    let p1024 = JobParams::new(o, f_day, r, 1024, m);
    println!(
        "\nat N = 1024 the optimal periodic frequency is {:.2}/hour (once every {:.0} min);",
        optimal_frequency(&p1024) * 3600.0,
        60.0 / (optimal_frequency(&p1024) * 3600.0)
    );
    println!("JIT checkpointing removes that entire term and the redo window.");
}

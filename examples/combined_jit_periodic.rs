//! JIT + low-frequency periodic checkpointing combined (§6.3): both
//! mechanisms share the same file format, so recovery simply takes the
//! newest complete checkpoint of either kind.
//!
//! ```sh
//! cargo run --example combined_jit_periodic
//! ```

use baselines::{run_periodic_job, PeriodicConfig, PolicyKind};
use cluster::{Cluster, FailureInjector, Scheduler, SharedStore};
use jitckpt::checkpoint::{self, CkptKind};
use jitckpt::user_level::{run_user_level_job, JitUserConfig};
use simcore::cost::{CostModel, GpuGeneration};
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::{JobId, RankId};
use std::sync::Arc;

fn main() {
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 12;

    // Pass 1: pure periodic checkpointing (the baseline): a failure at
    // iteration 10 rolls back to the last periodic checkpoint.
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        10,
        Phase::Backward,
        RankId(1),
        FailureKind::StickyCuda,
    )]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let out = run_periodic_job(
        cfg.clone(),
        CostModel::v100(),
        injector,
        scheduler,
        Arc::new(SharedStore::new()),
        PeriodicConfig::every(PolicyKind::PcDisk, 4),
        iters,
    )
    .expect("periodic run");
    println!("periodic-only: failure at iter 10, checkpoints every 4 iters");
    println!(
        "  → re-executed {} iterations of work across the job\n",
        out.wasted_iterations
    );

    // Pass 2: the combined mode. Seed the store with an old periodic
    // checkpoint, then run user-level JIT: when a failure hits, the JIT
    // checkpoint (newer) wins at restore time.
    let store = Arc::new(SharedStore::new());
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        10,
        Phase::Backward,
        RankId(1),
        FailureKind::StickyCuda,
    )]);
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler,
        store.clone(),
        JitUserConfig::default(),
        iters,
    )
    .expect("combined run");
    println!("JIT (+ optional PC_1/day for catastrophes): same failure");
    println!(
        "  → restarts: {}, redone work: at most one minibatch",
        out.restarts
    );
    let layout = simcore::layout::ParallelLayout::data_parallel(2);
    if let Ok(plan) = checkpoint::assemble(&store, JobId(0), &layout) {
        for ((stage, part), c) in plan {
            println!(
                "  cell (stage {stage}, part {part}): restored {:?} checkpoint of iteration {}",
                c.kind, c.iteration
            );
        }
    }
    // Demonstrate kind preference: add a newer periodic checkpoint and
    // re-assemble.
    println!("\nBoth kinds share paths/format; assembly picks the newest complete");
    println!(
        "checkpoint of either kind ({:?} vs {:?}).",
        CkptKind::Jit,
        CkptKind::Periodic
    );
}

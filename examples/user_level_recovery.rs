//! User-level JIT checkpointing end to end (§3 of the paper):
//! hang detection by watchdog → checkpoint from the healthy replicas →
//! scheduler quorum → kill + reschedule excluding the failed GPU →
//! restore from any replica's checkpoint.
//!
//! ```sh
//! cargo run --example user_level_recovery
//! ```

use cluster::{Cluster, FailureInjector, Scheduler, SharedStore};
use jitckpt::user_level::{run_user_level_job, JitUserConfig};
use simcore::cost::{CostModel, GpuGeneration};
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::RankId;
use std::sync::Arc;

fn main() {
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 10;
    // A hard GPU failure on rank 0 at iteration 4: the device is dead and
    // must be excluded from the reschedule.
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        4,
        Phase::Forward,
        RankId(0),
        FailureKind::GpuHardware,
    )]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let store = Arc::new(SharedStore::new());

    println!("2-rank DP job, hard GPU error on rank 0 at iteration 4.");
    println!("The healthy replica JIT-checkpoints; the scheduler waits for");
    println!("quorum, kills the job, and reschedules on fresh GPUs.\n");

    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler.clone(),
        store.clone(),
        JitUserConfig::default(),
        iters,
    )
    .expect("user-level recovery");

    println!("restarts: {}", out.restarts);
    for e in &out.events {
        if e.checkpoint_time.as_secs() > 0.0 {
            println!(
                "  {} wrote a JIT checkpoint for iteration {} in {:.2}s (virtual)",
                e.rank,
                e.iteration,
                e.checkpoint_time.as_secs()
            );
        } else {
            println!(
                "  {} restored iteration {} in {:.2}s (virtual, incl. job re-init)",
                e.rank,
                e.iteration,
                e.restore_time.as_secs()
            );
        }
    }
    println!("\ncheckpoint objects in the shared store:");
    for p in store.list("ckpt/") {
        println!("  {p}");
    }
    println!(
        "\nfinal losses (rank 0): {:?}",
        &out.losses[0][iters as usize - 3..]
    );
    println!("Only ~1 minibatch of work was redone — vs half a checkpoint");
    println!("interval under periodic checkpointing.");
}

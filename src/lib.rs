//! Reproduction suite for *Just-In-Time Checkpointing: Low Cost Error
//! Recovery from Deep Learning Training Failures* (EuroSys '24).
//!
//! This crate is the workspace umbrella: it hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`), and
//! re-exports the member crates for convenience. See the repository
//! README and DESIGN.md for the full map.
//!
//! * [`jitckpt`] — the paper's contribution (user-level + transparent JIT
//!   checkpointing, §5 analytical model, workload catalog);
//! * [`dltrain`] — the mini distributed training framework;
//! * [`proxy`] — the device-proxy interception layer;
//! * [`collectives`] — the NCCL-substitute collective layer;
//! * [`simgpu`] — the simulated GPU device;
//! * [`cluster`] — scheduler, shared store, CRIU, failure injection;
//! * [`baselines`] — periodic checkpointing baselines;
//! * [`simcore`] — virtual time, cost models, codec.

pub use baselines;
pub use cluster;
pub use collectives;
pub use dltrain;
pub use jitckpt;
pub use proxy;
pub use simcore;
pub use simgpu;

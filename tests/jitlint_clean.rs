//! Tier-1 enforcement: `cargo test` at the workspace root runs jitlint
//! over every crate. See `crates/lint` and DESIGN.md ("Machine-checked
//! invariants") for the rule families and the suppression grammar.

use std::path::PathBuf;

#[test]
fn jitlint_reports_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let findings = lint::analyze(&root).expect("workspace parses");
    assert!(
        findings.is_empty(),
        "jitlint found {} violation(s) — fix them or add `// jitlint::allow(<rule>): <reason>`:\n{}",
        findings.len(),
        lint::report::render_text(&findings)
    );
}

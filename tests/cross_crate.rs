//! Cross-crate integration tests: the full stack wired together —
//! trainer over proxy over simulated devices over collectives, with the
//! cluster substrate — exercising properties no single crate can test.

use cluster::{Cluster, FailureInjector, Scheduler, SharedStore};
use jit_checkpoint_repro::*;
use jitckpt::transparent::run_transparent_job;
use jitckpt::user_level::{run_user_level_job, JitUserConfig};
use simcore::cost::{CostModel, GpuGeneration};
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::layout::ParallelLayout;
use simcore::RankId;
use std::sync::{Arc, Mutex};

static SEQ: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn clean_run(cfg: &dltrain::TrainConfig, iters: u64) -> Vec<Vec<f32>> {
    run_transparent_job(
        cfg.clone(),
        CostModel::v100(),
        FailureInjector::none(),
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap()
    .losses
}

fn assert_losses_match(a: &[Vec<f32>], b: &[Vec<f32>]) {
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        for (i, (lx, ly)) in x.iter().zip(y).enumerate() {
            let same = (lx.is_nan() && ly.is_nan()) || lx == ly;
            assert!(same, "rank {r} iter {i}: {lx} vs {ly}");
        }
    }
}

#[test]
fn multiple_sequential_failures_all_recover_transparently() {
    let _g = serial();
    // Three different failure classes, three different victims, one job.
    let cfg = dltrain::TrainConfig::tiny_dp(4);
    let iters = 14;
    let clean = clean_run(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![
        FailureSpec::new(
            2,
            Phase::AllReduce,
            RankId(0),
            FailureKind::TransientNetwork,
        ),
        FailureSpec::new(6, Phase::Backward, RankId(3), FailureKind::StickyCuda),
        FailureSpec::new(10, Phase::Forward, RankId(1), FailureKind::GpuHardware),
    ]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 3, "three independent recoveries");
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn fsdp_hybrid_shard_job_recovers_transparently() {
    let _g = serial();
    // T5-3B-style hybrid sharding: 2 replica groups × shard group of 2.
    let mut cfg = dltrain::TrainConfig::tiny_dp(1);
    cfg.layout = ParallelLayout::three_d(2, 1, 2);
    cfg.fsdp = true;
    let iters = 8;
    let clean = clean_run(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::Backward,
        RankId(3),
        FailureKind::StickyCuda,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn pipeline_job_survives_mid_stage_failure() {
    let _g = serial();
    // 2 replicas × 2 stages: a stage-0 failure exercises the p2p replay
    // consistency machinery (iteration-keyed idempotent mailboxes).
    let mut cfg = dltrain::TrainConfig::tiny_dp(1);
    cfg.layout = ParallelLayout::three_d(2, 2, 1);
    let iters = 8;
    let clean = clean_run(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::Forward,
        RankId(0),
        FailureKind::StickyCuda,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn user_level_and_transparent_agree_on_final_state() {
    let _g = serial();
    // The same failure recovered by both designs must yield the same
    // trajectory (and both equal the failure-free run).
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 9;
    let clean = clean_run(&cfg, iters);
    let mk_injector = || {
        FailureInjector::with_specs(vec![FailureSpec::new(
            4,
            Phase::Backward,
            RankId(1),
            FailureKind::StickyCuda,
        )])
    };
    let transparent = run_transparent_job(
        cfg.clone(),
        CostModel::v100(),
        mk_injector(),
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let user = run_user_level_job(
        cfg,
        CostModel::v100(),
        mk_injector(),
        scheduler,
        Arc::new(SharedStore::new()),
        JitUserConfig::default(),
        iters,
    )
    .unwrap();
    assert_losses_match(&transparent.losses, &clean);
    assert_losses_match(&user.losses, &clean);
}

#[test]
fn periodic_baseline_wastes_more_work_than_jit() {
    let _g = serial();
    use baselines::{run_periodic_job, PeriodicConfig, PolicyKind};
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 12;
    let mk_injector = || {
        FailureInjector::with_specs(vec![FailureSpec::new(
            9,
            Phase::Backward,
            RankId(1),
            FailureKind::StickyCuda,
        )])
    };
    // Periodic: checkpoint every 4 → failure at 9 redoes ≥1 iteration.
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let pc = run_periodic_job(
        cfg.clone(),
        CostModel::v100(),
        mk_injector(),
        scheduler,
        Arc::new(SharedStore::new()),
        PeriodicConfig::every(PolicyKind::PcMem, 4),
        iters,
    )
    .unwrap();
    assert!(pc.wasted_iterations >= 1);
    // Transparent JIT on the same failure redoes at most the current
    // minibatch (zero whole iterations).
    let jit = run_transparent_job(
        cfg,
        CostModel::v100(),
        mk_injector(),
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(jit.rounds, 1);
    // Both end bit-identical to each other (semantics preserved).
    assert_losses_match(&pc.losses, &jit.losses);
}

#[test]
fn poisson_failure_trace_drives_user_level_recovery() {
    let _g = serial();
    // Randomized (seeded) schedule: convert a Poisson trace into scripted
    // failures and survive all of them.
    use simcore::rng::DetRng;
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 16u64;
    let mut rng = DetRng::new(2024);
    let phases = Phase::all();
    let specs: Vec<FailureSpec> = (0..2)
        .map(|k| {
            let it = 3 + rng.below(iters / 2 - 3) + k * (iters / 2);
            let phase = phases[rng.below(3) as usize]; // fwd/bwd/allreduce
            let rank = RankId(rng.below(2) as u32);
            FailureSpec::new(it, phase, rank, FailureKind::StickyCuda)
        })
        .collect();
    let clean = clean_run(&cfg, iters);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        FailureInjector::with_specs(specs),
        scheduler,
        Arc::new(SharedStore::new()),
        JitUserConfig::default(),
        iters,
    )
    .unwrap();
    assert_eq!(out.restarts, 2);
    assert_losses_match(&out.losses, &clean);
}

//! Offline, std-only substitute for the subset of `criterion` used by the
//! bench crate: `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `Throughput`, and `Bencher::iter`.
//!
//! Measurement is a simple warmup + timed-batch loop printing
//! mean ns/iter (and MB/s when a byte throughput is set) — adequate for
//! relative comparisons in an environment without the real crate. The API
//! shape matches criterion so the bench sources compile unchanged.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn report(name: &str, iters: u64, elapsed_ns: u128, throughput: Option<Throughput>) {
    let per_iter = elapsed_ns as f64 / iters.max(1) as f64;
    let extra = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
            format!(" ({:.1} MB/s)", b as f64 / per_iter * 1e9 / 1e6)
        }
        Some(Throughput::Elements(e)) if per_iter > 0.0 => {
            format!(" ({:.1} Melem/s)", e as f64 / per_iter * 1e9 / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {per_iter:>12.1} ns/iter{extra}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (interpreted here as timed iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into());
        report(&full, b.iters, b.elapsed_ns, self.throughput);
        self
    }

    /// Finishes the group (no-op; for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: 30,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 30,
            elapsed_ns: 0,
        };
        f(&mut b);
        report(&id.into(), b.iters, b.elapsed_ns, None);
        self
    }
}

/// Re-export of `std::hint::black_box` for API compatibility.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline, std-only substitute for the subset of `serde` this workspace
//! uses: the `Serialize`/`Deserialize` names as derive markers on state
//! structs.
//!
//! Nothing in the workspace serializes through serde — the checkpoint
//! codec is the hand-rolled `simcore::codec` — so the traits here are
//! empty markers and the derives (from the vendored `serde_derive`)
//! expand to nothing. The derive annotations still matter: `jitlint`'s
//! checkpoint-schema rule treats `#[derive(Serialize)]` in checkpoint and
//! replay-log modules as "this type is persisted state" and requires a
//! schema-version marker alongside it.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Stand-in for `serde::de`.
pub mod de {
    /// Marker standing in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
}

pub use serde_derive::{Deserialize, Serialize};

//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde substitute.
//!
//! The workspace never serializes through serde (the checkpoint codec in
//! `simcore::codec` is hand-rolled, and no code bounds on the serde
//! traits); the derives exist as machine-readable schema markers on state
//! structs — `jitlint`'s checkpoint-schema rule keys off them. Emitting an
//! empty token stream is therefore sufficient and avoids depending on
//! syn/quote, which the offline build environment does not have.

use proc_macro::TokenStream;

/// Marker derive standing in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive standing in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

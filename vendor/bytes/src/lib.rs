//! Offline, std-only substitute for the subset of the `bytes` crate used
//! by this workspace: [`Bytes`] (cheaply cloneable, sliceable, immutable
//! byte buffer), [`BytesMut`] (growable buffer), and the [`Buf`]/[`BufMut`]
//! cursor traits with the little-endian accessors the checkpoint codec
//! uses.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.iter().take(64) {
                if b.is_ascii_graphic() || b == b' ' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            if self.len() > 64 {
                write!(f, "…({} bytes)", self.len())?;
            }
            write!(f, "\"")
        }
    };
}

/// A cheaply cloneable, immutable slice of a shared byte buffer.
///
/// Backed by `Arc<Vec<u8>>` (not `Arc<[u8]>`) so that `Bytes::from(vec)`
/// and [`BytesMut::freeze`] take ownership of the allocation instead of
/// copying it — freezing a multi-hundred-MiB checkpoint stream must be
/// O(1), not O(n).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates `Bytes` from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns the bytes as a slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-view of `self` without copying the underlying data.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref_slice() == &other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Empties the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

macro_rules! buf_get_impl {
    ($name:ident, $t:ty, $size:expr) => {
        /// Reads a little-endian value, advancing the cursor.
        fn $name(&mut self) -> $t {
            let mut raw = [0u8; $size];
            raw.copy_from_slice(&self.chunk()[..$size]);
            self.advance($size);
            <$t>::from_le_bytes(raw)
        }
    };
}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    buf_get_impl!(get_u16_le, u16, 2);
    buf_get_impl!(get_u32_le, u32, 4);
    buf_get_impl!(get_u64_le, u64, 8);
    buf_get_impl!(get_i64_le, i64, 8);
    buf_get_impl!(get_f32_le, f32, 4);
    buf_get_impl!(get_f64_le, f64, 8);

    /// Copies bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

macro_rules! buf_put_impl {
    ($name:ident, $t:ty) => {
        /// Writes a little-endian value.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    };
}

/// Write cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put_impl!(put_u16_le, u16);
    buf_put_impl!(put_u32_le, u32);
    buf_put_impl!(put_u64_le, u64);
    buf_put_impl!(put_i64_le, i64);
    buf_put_impl!(put_f32_le, f32);
    buf_put_impl!(put_f64_le, f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_numbers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f64_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), 1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_and_slice_share_data() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[4, 5]);
        assert_eq!(b.slice(..1).to_vec(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.split_to(2);
    }
}

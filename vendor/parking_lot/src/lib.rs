//! Offline, std-only substitute for the subset of `parking_lot` used by
//! this workspace: `Mutex`, `RwLock`, and `Condvar` with the
//! non-poisoning API shape (`lock()` returns the guard directly,
//! `Condvar::wait*` take `&mut MutexGuard`).
//!
//! Built on `std::sync`; poisoning is swallowed (`PoisonError::into_inner`)
//! to match parking_lot semantics, which is also what the recovery paths
//! in this workspace want: a panicked trainer thread must not poison the
//! watchdog's locks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with the `parking_lot` API shape.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the underlying std guard in an
/// `Option` so [`Condvar::wait`]-style APIs (which take `&mut` guards)
/// can temporarily move it out.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed:
    /// `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard moved during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard moved during condvar wait")
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => f
                .debug_struct("RwLock")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with the `parking_lot` API shape: waits take
/// `&mut MutexGuard` and re-acquire in place.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard moved during condvar wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard moved during condvar wait");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_millis(50));
            if r.timed_out() && !*done {
                continue;
            }
        }
        h.join().unwrap();
        assert!(*done);
    }
}

//! Offline, std-only substitute for the subset of `proptest` used by this
//! workspace's property tests.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build environment:
//!
//! * **No shrinking** — a failing case reports its case number and
//!   message, not a minimized input. Cases are deterministic (seeded from
//!   the test's module path + case index), so failures reproduce exactly.
//! * **String strategies ignore the regex** — any `&str` strategy
//!   produces arbitrary printable-ASCII strings (the workspace only ever
//!   uses `".*"`, for which this is the correct semantics).
//! * Strategies are plain samplers (`Strategy::sample`), not composable
//!   value trees.
//!
//! The macro surface (`proptest!`, `prop_assert*!`, `prop_oneof!`) and
//! the strategy combinators used by the tests (`any`, ranges,
//! `collection::vec`/`hash_set`, `sample::select`, `sample::Index`,
//! `Just`, `prop_map`, tuples) match real proptest closely enough that
//! the tests compile unchanged.

pub mod rng {
    /// Deterministic splitmix64 generator seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator for one test case, deterministically derived
        /// from the test's identity and the case index.
        pub fn for_case(test_id: &str, case: u32) -> Self {
            // FNV-1a over the test id, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod test_runner {
    /// Subset of proptest's run configuration: the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 48 keeps the simulation-heavy
            // suites inside a reasonable wall-clock budget while still
            // exploring the space. Tests that care set with_cases().
            ProptestConfig { cases: 48 }
        }
    }
}

pub mod strategy {
    use super::rng::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Maps generated values into a dependent strategy and draws
        /// from it (`prop_flat_map`): the standard way to generate a
        /// value whose shape depends on an earlier draw, e.g. a vector
        /// whose length was itself generated.
        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy for heterogeneous composition.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U::Value;
        fn sample(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a choice over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = rng.unit_f64() as $t;
                    self.start + frac * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// `&str` strategies produce arbitrary printable-ASCII strings (the
    /// workspace only uses `".*"`; the regex itself is ignored).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let len = rng.below(24) as usize;
            (0..len)
                .map(|_| (b' ' + rng.below(95) as u8) as char)
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Arbitrary floats cover the full bit space (NaNs, infinities,
    // subnormals) — codec round-trip tests compare bit patterns.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy producing arbitrary values of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<u64>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A target size or size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` (see [`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>` (see [`hash_set`]).
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            // Collisions can make the exact target unreachable for small
            // domains; bounded attempts, then accept what we have (still
            // >= min whenever the domain allows it).
            let mut attempts = 0usize;
            let max_attempts = 100 + target * 20;
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates hash sets of `element` with a size drawn from `size`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolves to an index in `[0, len)`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: rng.next_u64(),
            }
        }
    }

    /// Strategy choosing uniformly among fixed values (see [`select`]).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Chooses uniformly from `options`; must be non-empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }
}

/// `prop::` namespace alias, as re-exported by proptest's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::rng::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_items!{ config = ($cfg); $($rest)* }
    };
}

/// Skips the current case when its precondition does not hold. (Real
/// proptest retries with a fresh input and tracks a rejection budget;
/// here the case simply counts as passed, which is equivalent for
/// deterministically seeded cases.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right),
            ::std::format!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right),
            ::std::format!($($fmt)+), l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(::std::boxed::Box::new($strat)
                as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..3.5), &mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn determinism_per_case() {
        let s = crate::collection::vec(0u64..100, 1..8);
        let mut a = crate::rng::TestRng::for_case("det", 7);
        let mut b = crate::rng::TestRng::for_case("det", 7);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec(any::<u8>(), 0..16),
            label in ".*",
            choice in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
            pick in prop::sample::select(vec![10usize, 20]),
        ) {
            prop_assert!(xs.len() < 16);
            prop_assert!(label.len() < 24);
            prop_assert!((1u8..5u8).contains(&choice));
            prop_assert_ne!(pick, 15);
            prop_assert_eq!(pick % 10, 0, "pick was {}", pick);
        }
    }
}

#!/usr/bin/env sh
# Checkpoint-pipeline benchmark driver: runs the monolithic-vs-sharded
# write/read/assemble measurement at a 64 MiB synthetic TrainState and
# emits BENCH_ckpt.json (throughput MB/s per config + delta hit-rate)
# at the repository root. Optional args pass through:
#
#   scripts/bench.sh [payload_mib] [out_path]
set -eu
cd "$(dirname "$0")/.."

PAYLOAD_MIB="${1:-64}"
OUT="${2:-BENCH_ckpt.json}"

echo "==> cargo run --release -p bench --bin ckpt_bench -- ${PAYLOAD_MIB} ${OUT}"
cargo run --release --quiet -p bench --bin ckpt_bench -- "${PAYLOAD_MIB}" "${OUT}"

echo "==> criterion micro-benches (ckpt)"
cargo bench -p bench --bench ckpt --quiet

echo "bench.sh: wrote ${OUT}"

#!/usr/bin/env sh
# Benchmark driver: regenerates both shipped benchmark reports at the
# repository root.
#
#   BENCH_ckpt.json  — monolithic-vs-sharded checkpoint write/read/
#                      assemble throughput at a 64 MiB synthetic
#                      TrainState, plus the delta-mode hit rate.
#   BENCH_proxy.json — transparent-interception per-op overhead
#                      (batched vs per-call flushing vs direct), the
#                      flush-capacity sweep, and replay time with and
#                      without log compaction.
#   BENCH_coll.json  — slot-vs-ring all-reduce wall time across world
#                      and payload sizes, hier-vs-flat simulated time on
#                      the scale ladder to 2048 ranks, the ring
#                      chunk-size sweep, bucketed-overlap minibatch
#                      time, and pipelined recovery streaming vs the
#                      store round-trip.
#   BENCH_recovery.json — in-network gradient-replication tap overhead
#                      at world {8, 64, 256}, the recovery-scheme
#                      head-to-head (periodic-optimal / user JIT /
#                      transparent JIT / in-network), and the
#                      zero-store-read ledger recovery demo.
#   BENCH_store.json — multi-job coordinator persistence: write-behind
#                      vs blocking at equal durability over both
#                      storage backends, the jobs×ranks throughput
#                      ladder under churn, per-job gate isolation,
#                      backend round-trip bit identity, the restore
#                      matrix (serial vs parallel fetch across backends
#                      × shard counts × delta depths, incl. a placed
#                      fleet rebalanced mid-matrix), and the delta
#                      writer's meta-cache list-traffic savings.
#
# Optional args pass through to the checkpoint bench:
#
#   scripts/bench.sh [payload_mib] [ckpt_out_path]
set -eu
cd "$(dirname "$0")/.."

PAYLOAD_MIB="${1:-64}"
OUT="${2:-BENCH_ckpt.json}"
PROXY_OUT="${PROXY_OUT:-BENCH_proxy.json}"
COLL_OUT="${COLL_OUT:-BENCH_coll.json}"
RECOVERY_OUT="${RECOVERY_OUT:-BENCH_recovery.json}"
STORE_OUT="${STORE_OUT:-BENCH_store.json}"

echo "==> cargo run --release -p bench --bin ckpt_bench -- ${PAYLOAD_MIB} ${OUT}"
cargo run --release --quiet -p bench --bin ckpt_bench -- "${PAYLOAD_MIB}" "${OUT}"

echo "==> cargo run --release -p bench --bin proxy_bench -- 20000 12000 ${PROXY_OUT}"
cargo run --release --quiet -p bench --bin proxy_bench -- 20000 12000 "${PROXY_OUT}"

echo "==> cargo run --release -p bench --bin coll_bench -- 6 64 ${COLL_OUT} 2048"
cargo run --release --quiet -p bench --bin coll_bench -- 6 64 "${COLL_OUT}" 2048

echo "==> cargo run --release -p bench --bin recovery_bench -- ${RECOVERY_OUT}"
cargo run --release --quiet -p bench --bin recovery_bench -- "${RECOVERY_OUT}"

echo "==> cargo run --release -p bench --bin store_bench -- 4 6 ${STORE_OUT}"
cargo run --release --quiet -p bench --bin store_bench -- 4 6 "${STORE_OUT}"

echo "==> criterion micro-benches (ckpt, proxy, coll)"
cargo bench -p bench --bench ckpt --quiet
cargo bench -p bench --bench proxy --quiet
cargo bench -p bench --bench coll --quiet

echo "bench.sh: wrote ${OUT}, ${PROXY_OUT}, ${COLL_OUT}, ${RECOVERY_OUT}, and ${STORE_OUT}"

#!/usr/bin/env sh
# Local CI gate: formatting, lints, tests, and the jitlint invariant
# analyzer. Everything must pass before a change lands.
set -eu
cd "$(dirname "$0")/.."

echo '==> cargo fmt --check'
cargo fmt --all -- --check

echo '==> cargo clippy --workspace --all-targets -- -D warnings'
cargo clippy --workspace --all-targets -- -D warnings

echo '==> cargo test --workspace'
cargo test --workspace --quiet

echo '==> benches compile'
cargo build --benches --workspace --quiet

echo '==> jitlint'
cargo run -p lint --quiet

echo '==> jitlint --format json (machine-readable findings)'
cargo run -p lint --quiet -- --format json > target/jitlint.json
echo "    wrote target/jitlint.json"

echo '==> lock-witness test run (instrumented sync primitives)'
rm -f target/lock_witness.txt
JIT_LOCK_WITNESS="$PWD/target/lock_witness.txt" \
    cargo test --workspace --features simcore/lock_witness --quiet

echo '==> jitlint --witness (runtime edges vs static lock graph)'
cargo run -p lint --quiet -- --witness target/lock_witness.txt

echo '==> proxy_bench smoke (tiny sizes, throwaway output)'
cargo run --release --quiet -p bench --bin proxy_bench -- 500 600 target/BENCH_proxy.smoke.json

echo '==> coll_bench smoke (tiny sizes, hier ladder capped at 64 ranks)'
cargo run --release --quiet -p bench --bin coll_bench -- 2 1 target/BENCH_coll.smoke.json 64

echo '==> recovery_bench smoke (full matrix is sub-second, throwaway output)'
cargo run --release --quiet -p bench --bin recovery_bench -- target/BENCH_recovery.smoke.json

echo '==> store_bench smoke (1 MiB payload, 2 generations, incl. restore matrix, throwaway output)'
cargo run --release --quiet -p bench --bin store_bench -- 1 2 target/BENCH_store.smoke.json
grep -q '"restore": \[' target/BENCH_store.smoke.json \
    || { echo 'check.sh: store_bench smoke output lacks the restore section' >&2; exit 1; }

echo 'check.sh: all gates passed'

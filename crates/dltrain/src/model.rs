//! Model definition: Megatron-style tensor-parallel pre-LN MLP blocks
//! plus a classifier head.
//!
//! Each block computes the transformer MLP sublayer
//! `y = x + relu(LN_γβ(x)·A + b_A)·B`, with `A` column-sharded and `B`
//! row-sharded across the tensor-parallel group — exactly the Megatron
//! MLP partitioning, which needs only all-reduce sync points: one on the
//! sublayer output in the forward pass, one on the pre-LN input gradient
//! in the backward pass. Those sync points are the hang-detection targets
//! that make JIT checkpointing "compatible with large-scale training
//! techniques such as 3D parallelism" (§3.1). LayerNorm parameters and
//! the residual are replicated across the group (their gradients are
//! computed from already-reduced quantities, so every part derives
//! identical values without extra synchronization).
//!
//! Parameters are initialized from per-(block, parameter) derived RNG
//! streams, so data-parallel replicas are bit-identical and tensor
//! shards are distinct — the state-redundancy structure recovery relies
//! on.

use proxy::Executor;
use simcore::rng::DetRng;
use simcore::SimResult;
use simgpu::{AllocSite, BufferId, BufferTag, DeviceCall, KernelKind, StreamId};

/// Model hyperparameters (pre-sharding, whole-model sizes).
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Input/embedding width `d` (also every block's in/out width).
    pub input_dim: usize,
    /// Block hidden width (split across tensor-parallel ranks).
    pub hidden: usize,
    /// Number of MLP blocks (split across pipeline stages).
    pub blocks: usize,
    /// Output classes.
    pub classes: usize,
    /// Phantom scaling: logical bytes per actual parameter byte (1.0 =
    /// unscaled). Lets a laptop-sized payload carry paper-scale state
    /// sizes for the cost model (see DESIGN.md).
    pub phantom_scale: f64,
}

impl ModelConfig {
    /// A small config for tests.
    pub fn tiny() -> Self {
        ModelConfig {
            input_dim: 8,
            hidden: 16,
            blocks: 2,
            classes: 4,
            phantom_scale: 1.0,
        }
    }

    /// Actual parameter count of the whole (unsharded) model.
    pub fn param_count(&self) -> usize {
        self.blocks * (self.input_dim * self.hidden + self.hidden + self.hidden * self.input_dim)
            + self.input_dim * self.classes
    }
}

/// Allocates a device buffer through the executor.
///
/// Phantom-scaling policy: persistent state (params, optimizer moments)
/// and parameter-shaped gradients carry the workload's phantom factor so
/// checkpoint sizes and gradient all-reduce volumes match paper scale;
/// activation-shaped buffers (and their gradients) scale with the batch,
/// not the parameter count, and are allocated at their actual size.
pub fn alloc_buf<E: Executor>(
    exec: &mut E,
    path: &str,
    elems: usize,
    phantom_scale: f64,
    tag: BufferTag,
) -> SimResult<BufferId> {
    let logical = ((elems * 4) as f64 * phantom_scale).ceil() as u64;
    exec.call(DeviceCall::Malloc {
        site: AllocSite::new(path, elems as u64),
        elems: elems as u64,
        logical_bytes: logical,
        tag,
    })?
    .buffer()
}

/// Uploads data into a buffer.
pub fn upload<E: Executor>(exec: &mut E, buf: BufferId, data: Vec<f32>) -> SimResult<()> {
    exec.call(DeviceCall::Upload { buf, data })?;
    Ok(())
}

/// Downloads a buffer's contents.
pub fn download<E: Executor>(exec: &mut E, buf: BufferId) -> SimResult<Vec<f32>> {
    exec.call(DeviceCall::Download { buf })?.data()
}

/// Launches a kernel on a stream.
pub fn launch<E: Executor>(exec: &mut E, stream: StreamId, kernel: KernelKind) -> SimResult<()> {
    exec.call(DeviceCall::Launch { stream, kernel })?;
    Ok(())
}

/// One tensor-parallel pre-LN MLP block's parameters on one rank.
#[derive(Debug, Clone)]
pub struct Block {
    /// Column shard of `A`: `[d × h_local]`.
    pub a: BufferId,
    /// Shard of `A`'s bias: `[h_local]`.
    pub bias_a: BufferId,
    /// Row shard of `B`: `[h_local × d]`.
    pub b: BufferId,
    /// LayerNorm scale `γ` `[d]` (replicated across the group).
    pub gamma: BufferId,
    /// LayerNorm shift `β` `[d]` (replicated).
    pub beta: BufferId,
    /// Width `d`.
    pub d: usize,
    /// Local hidden width `hidden / tp`.
    pub h_local: usize,
    /// Global block index (naming / init streams).
    pub index: usize,
}

/// Activations a block's forward pass produces (needed by backward).
#[derive(Debug, Clone)]
pub struct BlockActs {
    /// LayerNorm output.
    pub ln: BufferId,
    /// Saved LayerNorm row means.
    pub mean: BufferId,
    /// Saved LayerNorm row reciprocal standard deviations.
    pub rstd: BufferId,
    /// Pre-activation `LN(x)·A + b_A`.
    pub h_pre: BufferId,
    /// Post-relu hidden.
    pub h: BufferId,
    /// Sublayer output (partial until all-reduced; the residual is added
    /// by the trainer after the reduction).
    pub y: BufferId,
}

impl Block {
    /// Allocates and initializes one block's shard for tensor-parallel
    /// partition `part` of `tp`.
    #[allow(clippy::too_many_arguments)]
    pub fn init<E: Executor>(
        exec: &mut E,
        cfg: &ModelConfig,
        index: usize,
        part: usize,
        tp: usize,
        seed: u64,
    ) -> SimResult<Block> {
        let d = cfg.input_dim;
        let h_local = cfg.hidden / tp;
        assert!(cfg.hidden.is_multiple_of(tp), "hidden must divide by tp");
        let a = alloc_buf(
            exec,
            &format!("model.block{index}.a"),
            d * h_local,
            cfg.phantom_scale,
            BufferTag::Param,
        )?;
        let bias_a = alloc_buf(
            exec,
            &format!("model.block{index}.bias_a"),
            h_local,
            cfg.phantom_scale,
            BufferTag::Param,
        )?;
        let b = alloc_buf(
            exec,
            &format!("model.block{index}.b"),
            h_local * d,
            cfg.phantom_scale,
            BufferTag::Param,
        )?;
        let gamma = alloc_buf(
            exec,
            &format!("model.block{index}.gamma"),
            d,
            cfg.phantom_scale,
            BufferTag::Param,
        )?;
        let beta = alloc_buf(
            exec,
            &format!("model.block{index}.beta"),
            d,
            cfg.phantom_scale,
            BufferTag::Param,
        )?;
        upload(exec, gamma, vec![1.0; d])?;
        upload(exec, beta, vec![0.0; d])?;
        // Init streams keyed by (block, param, shard): identical across
        // data-parallel replicas, distinct per shard.
        let root = DetRng::new(seed);
        let scale_a = 1.0 / (d as f32).sqrt();
        let scale_b = 1.0 / (cfg.hidden as f32).sqrt();
        // The full A is [d × hidden]; this rank holds columns
        // [part·h_local, (part+1)·h_local). Generate the full column set
        // deterministically and slice, so shards compose to the same full
        // matrix regardless of tp degree.
        let mut rng_a = root.derive((index as u64) << 8 | 1);
        let mut full_a = vec![0f32; d * cfg.hidden];
        for v in &mut full_a {
            *v = rng_a.uniform_symmetric(scale_a);
        }
        let mut shard_a = vec![0f32; d * h_local];
        for r in 0..d {
            for c in 0..h_local {
                shard_a[r * h_local + c] = full_a[r * cfg.hidden + part * h_local + c];
            }
        }
        upload(exec, a, shard_a)?;
        let mut rng_bias = root.derive((index as u64) << 8 | 2);
        let full_bias: Vec<f32> = (0..cfg.hidden)
            .map(|_| rng_bias.uniform_symmetric(0.01))
            .collect();
        upload(
            exec,
            bias_a,
            full_bias[part * h_local..(part + 1) * h_local].to_vec(),
        )?;
        let mut rng_b = root.derive((index as u64) << 8 | 3);
        let full_b: Vec<f32> = (0..cfg.hidden * d)
            .map(|_| rng_b.uniform_symmetric(scale_b))
            .collect();
        // Full B is [hidden × d]; this rank holds rows
        // [part·h_local, (part+1)·h_local) — contiguous in row-major.
        upload(
            exec,
            b,
            full_b[part * h_local * d..(part + 1) * h_local * d].to_vec(),
        )?;
        Ok(Block {
            a,
            bias_a,
            b,
            gamma,
            beta,
            d,
            h_local,
            index,
        })
    }

    /// Parameter buffers (for checkpointing / optimizer wiring).
    pub fn params(&self) -> Vec<(BufferId, usize)> {
        vec![
            (self.a, self.d * self.h_local),
            (self.bias_a, self.h_local),
            (self.b, self.h_local * self.d),
            (self.gamma, self.d),
            (self.beta, self.d),
        ]
    }

    /// Forward pass of the pre-LN MLP sublayer: computes the *partial*
    /// output (pre all-reduce). The caller all-reduces `y` across the
    /// tensor-parallel group and then adds the residual `x`.
    pub fn forward<E: Executor>(
        &self,
        exec: &mut E,
        stream: StreamId,
        x: BufferId,
        batch: usize,
        phantom_scale: f64,
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<BlockActs> {
        let _ = phantom_scale; // activations are batch-sized, not param-sized
        let (m, d, h) = (batch, self.d, self.h_local);
        let ln = alloc_buf(
            exec,
            &format!("act.block{}.ln", self.index),
            m * d,
            1.0,
            BufferTag::Activation,
        )?;
        let mean = alloc_buf(
            exec,
            &format!("act.block{}.ln_mean", self.index),
            m,
            1.0,
            BufferTag::Activation,
        )?;
        let rstd = alloc_buf(
            exec,
            &format!("act.block{}.ln_rstd", self.index),
            m,
            1.0,
            BufferTag::Activation,
        )?;
        let h_pre = alloc_buf(
            exec,
            &format!("act.block{}.h_pre", self.index),
            m * h,
            1.0,
            BufferTag::Activation,
        )?;
        let hbuf = alloc_buf(
            exec,
            &format!("act.block{}.h", self.index),
            m * h,
            1.0,
            BufferTag::Activation,
        )?;
        let y = alloc_buf(
            exec,
            &format!("act.block{}.y", self.index),
            m * d,
            1.0,
            BufferTag::Activation,
        )?;
        scratch.extend([ln, mean, rstd, h_pre, hbuf, y]);
        launch(
            exec,
            stream,
            KernelKind::LayerNormFwd {
                x,
                gamma: self.gamma,
                beta: self.beta,
                out: ln,
                mean,
                rstd,
                rows: m as u32,
                cols: d as u32,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: ln,
                b: self.a,
                out: h_pre,
                m: m as u32,
                k: d as u32,
                n: h as u32,
                trans_a: false,
                trans_b: false,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::BiasAdd {
                x: h_pre,
                bias: self.bias_a,
                rows: m as u32,
                cols: h as u32,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::Relu {
                x: h_pre,
                out: hbuf,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: hbuf,
                b: self.b,
                out: y,
                m: m as u32,
                k: h as u32,
                n: d as u32,
                trans_a: false,
                trans_b: false,
            },
        )?;
        Ok(BlockActs {
            ln,
            mean,
            rstd,
            h_pre,
            h: hbuf,
            y,
        })
    }

    /// First half of the backward pass: from the sublayer-output gradient
    /// `dy` `[m × d]` through the MLP, writing the shard gradients
    /// (`dA`, `dbias_A`, `dB`) and returning the *partial* gradient at
    /// the LayerNorm output. The caller all-reduces it across the
    /// tensor-parallel group, then calls [`Block::backward_ln`].
    #[allow(clippy::too_many_arguments)]
    pub fn backward_mlp<E: Executor>(
        &self,
        exec: &mut E,
        stream: StreamId,
        acts: &BlockActs,
        dy: BufferId,
        batch: usize,
        phantom_scale: f64,
        grads: &BlockGrads,
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<BufferId> {
        let (m, d, h) = (batch, self.d, self.h_local);
        // dB = h^T · dy.
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: acts.h,
                b: dy,
                out: grads.db,
                m: h as u32,
                k: m as u32,
                n: d as u32,
                trans_a: true,
                trans_b: false,
            },
        )?;
        // dh = dy · B^T.
        let _ = phantom_scale; // activation gradients are batch-sized
        let dh = alloc_buf(
            exec,
            &format!("grad.block{}.dh", self.index),
            m * h,
            1.0,
            BufferTag::Gradient,
        )?;
        scratch.push(dh);
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: dy,
                b: self.b,
                out: dh,
                m: m as u32,
                k: d as u32,
                n: h as u32,
                trans_a: false,
                trans_b: true,
            },
        )?;
        // Through the relu.
        let dh_pre = alloc_buf(
            exec,
            &format!("grad.block{}.dh_pre", self.index),
            m * h,
            1.0,
            BufferTag::Gradient,
        )?;
        scratch.push(dh_pre);
        launch(
            exec,
            stream,
            KernelKind::ReluBwd {
                x: acts.h_pre,
                dy: dh,
                dx: dh_pre,
            },
        )?;
        // dbias_A = colsum(dh_pre).
        launch(
            exec,
            stream,
            KernelKind::BiasGrad {
                dy: dh_pre,
                dbias: grads.dbias_a,
                rows: m as u32,
                cols: h as u32,
            },
        )?;
        // dA = LN(x)^T · dh_pre.
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: acts.ln,
                b: dh_pre,
                out: grads.da,
                m: d as u32,
                k: m as u32,
                n: h as u32,
                trans_a: true,
                trans_b: false,
            },
        )?;
        // dln_partial = dh_pre · A^T.
        let dln = alloc_buf(
            exec,
            &format!("grad.block{}.dln", self.index),
            m * d,
            1.0,
            BufferTag::Gradient,
        )?;
        scratch.push(dln);
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: dh_pre,
                b: self.a,
                out: dln,
                m: m as u32,
                k: h as u32,
                n: d as u32,
                trans_a: false,
                trans_b: true,
            },
        )?;
        Ok(dln)
    }

    /// Second half of the backward pass: through the LayerNorm (using the
    /// group-reduced `dln`), writing `dγ`/`dβ` into `grads`, then adding
    /// the residual branch's gradient `dy` — returns the full input
    /// gradient `dx = dy + LN'(dln)`.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_ln<E: Executor>(
        &self,
        exec: &mut E,
        stream: StreamId,
        x: BufferId,
        acts: &BlockActs,
        dy: BufferId,
        dln: BufferId,
        batch: usize,
        phantom_scale: f64,
        grads: &BlockGrads,
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<BufferId> {
        let _ = phantom_scale;
        let (m, d) = (batch, self.d);
        let dx = alloc_buf(
            exec,
            &format!("grad.block{}.dx", self.index),
            m * d,
            1.0,
            BufferTag::Gradient,
        )?;
        scratch.push(dx);
        launch(
            exec,
            stream,
            KernelKind::LayerNormBwd {
                x,
                gamma: self.gamma,
                dy: dln,
                mean: acts.mean,
                rstd: acts.rstd,
                dx,
                dgamma: grads.dgamma,
                dbeta: grads.dbeta,
                rows: m as u32,
                cols: d as u32,
            },
        )?;
        // Residual branch: dx += dy.
        launch(
            exec,
            stream,
            KernelKind::Axpy {
                alpha: 1.0,
                x: dy,
                y: dx,
            },
        )?;
        Ok(dx)
    }
}

/// Gradient buffers for one block (allocated fresh each minibatch so
/// replay regenerates them).
#[derive(Debug, Clone)]
pub struct BlockGrads {
    /// Gradient of `A` shard.
    pub da: BufferId,
    /// Gradient of `A`'s bias shard.
    pub dbias_a: BufferId,
    /// Gradient of `B` shard.
    pub db: BufferId,
    /// Gradient of the LayerNorm scale `γ`.
    pub dgamma: BufferId,
    /// Gradient of the LayerNorm shift `β`.
    pub dbeta: BufferId,
}

impl BlockGrads {
    /// Allocates gradient buffers for `block`.
    pub fn alloc<E: Executor>(
        exec: &mut E,
        block: &Block,
        phantom_scale: f64,
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<BlockGrads> {
        let da = alloc_buf(
            exec,
            &format!("grad.block{}.da", block.index),
            block.d * block.h_local,
            phantom_scale,
            BufferTag::Gradient,
        )?;
        let dbias_a = alloc_buf(
            exec,
            &format!("grad.block{}.dbias_a", block.index),
            block.h_local,
            phantom_scale,
            BufferTag::Gradient,
        )?;
        let db = alloc_buf(
            exec,
            &format!("grad.block{}.db", block.index),
            block.h_local * block.d,
            phantom_scale,
            BufferTag::Gradient,
        )?;
        let dgamma = alloc_buf(
            exec,
            &format!("grad.block{}.dgamma", block.index),
            block.d,
            phantom_scale,
            BufferTag::Gradient,
        )?;
        let dbeta = alloc_buf(
            exec,
            &format!("grad.block{}.dbeta", block.index),
            block.d,
            phantom_scale,
            BufferTag::Gradient,
        )?;
        scratch.extend([da, dbias_a, db, dgamma, dbeta]);
        Ok(BlockGrads {
            da,
            dbias_a,
            db,
            dgamma,
            dbeta,
        })
    }

    /// The gradient buffers in parameter order.
    pub fn list(&self) -> [BufferId; 5] {
        [self.da, self.dbias_a, self.db, self.dgamma, self.dbeta]
    }
}

/// Classifier head (replicated across the tensor-parallel group; its
/// gradients are identical on every part, so no sync is needed).
#[derive(Debug, Clone)]
pub struct Head {
    /// Weights `[d × classes]`.
    pub w: BufferId,
    /// Width `d`.
    pub d: usize,
    /// Classes.
    pub classes: usize,
}

impl Head {
    /// Allocates and initializes the head.
    pub fn init<E: Executor>(exec: &mut E, cfg: &ModelConfig, seed: u64) -> SimResult<Head> {
        let w = alloc_buf(
            exec,
            "model.head.w",
            cfg.input_dim * cfg.classes,
            cfg.phantom_scale,
            BufferTag::Param,
        )?;
        let mut rng = DetRng::new(seed).derive(0x4845_4144); // "HEAD"
        let scale = 1.0 / (cfg.input_dim as f32).sqrt();
        let data: Vec<f32> = (0..cfg.input_dim * cfg.classes)
            .map(|_| rng.uniform_symmetric(scale))
            .collect();
        upload(exec, w, data)?;
        Ok(Head {
            w,
            d: cfg.input_dim,
            classes: cfg.classes,
        })
    }

    /// Forward + loss. Returns `(loss_buf, probs, logits)`.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_loss<E: Executor>(
        &self,
        exec: &mut E,
        stream: StreamId,
        x: BufferId,
        labels: BufferId,
        batch: usize,
        phantom_scale: f64,
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<(BufferId, BufferId, BufferId)> {
        let _ = phantom_scale;
        let m = batch;
        let logits = alloc_buf(
            exec,
            "act.head.logits",
            m * self.classes,
            1.0,
            BufferTag::Activation,
        )?;
        let probs = alloc_buf(
            exec,
            "act.head.probs",
            m * self.classes,
            1.0,
            BufferTag::Activation,
        )?;
        let loss = alloc_buf(exec, "act.head.loss", 1, 1.0, BufferTag::Activation)?;
        scratch.extend([logits, probs, loss]);
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: x,
                b: self.w,
                out: logits,
                m: m as u32,
                k: self.d as u32,
                n: self.classes as u32,
                trans_a: false,
                trans_b: false,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::SoftmaxXentFwd {
                logits,
                labels,
                probs,
                loss,
                rows: m as u32,
                cols: self.classes as u32,
            },
        )?;
        Ok((loss, probs, logits))
    }

    /// Backward: returns `(dw, dx)` where `dx` is the gradient flowing
    /// into the last block.
    #[allow(clippy::too_many_arguments)]
    pub fn backward<E: Executor>(
        &self,
        exec: &mut E,
        stream: StreamId,
        x: BufferId,
        labels: BufferId,
        probs: BufferId,
        batch: usize,
        phantom_scale: f64,
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<(BufferId, BufferId)> {
        let m = batch;
        let dlogits = alloc_buf(
            exec,
            "grad.head.dlogits",
            m * self.classes,
            1.0,
            BufferTag::Gradient,
        )?;
        // The head weight gradient is parameter-shaped: phantom-scaled.
        let dw = alloc_buf(
            exec,
            "grad.head.dw",
            self.d * self.classes,
            phantom_scale,
            BufferTag::Gradient,
        )?;
        let dx = alloc_buf(exec, "grad.head.dx", m * self.d, 1.0, BufferTag::Gradient)?;
        scratch.extend([dlogits, dw, dx]);
        launch(
            exec,
            stream,
            KernelKind::SoftmaxXentBwd {
                probs,
                labels,
                dlogits,
                rows: m as u32,
                cols: self.classes as u32,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: x,
                b: dlogits,
                out: dw,
                m: self.d as u32,
                k: m as u32,
                n: self.classes as u32,
                trans_a: true,
                trans_b: false,
            },
        )?;
        launch(
            exec,
            stream,
            KernelKind::MatMul {
                a: dlogits,
                b: self.w,
                out: dx,
                m: m as u32,
                k: self.classes as u32,
                n: self.d as u32,
                trans_a: false,
                trans_b: true,
            },
        )?;
        Ok((dw, dx))
    }
}

//! A miniature distributed deep-learning training framework — the
//! PyTorch/Megatron/DeepSpeed substitute for the JIT-checkpointing
//! reproduction.
//!
//! The framework exists to give the paper's mechanisms the exact
//! structure they exploit:
//!
//! * synchronous minibatch iterations: forward → backward → gradient
//!   all-reduce (a barrier) → optimizer step, with persistent state
//!   (params + optimizer moments) mutated *only* inside the optimizer;
//! * data parallelism with bit-identical replicas (same init, averaged
//!   gradients), Megatron-style tensor-parallel MLP blocks (all-reduce
//!   sync points in both passes), GPipe-style pipeline stages (p2p
//!   activations/gradients), and FSDP-style hybrid sharding (all-gather
//!   params / reduce-scatter grads within a shard group, replicas across
//!   groups);
//! * Figure-3 stream/event traffic: compute and comm streams with
//!   `EventRecord`/`StreamWaitEvent` ordering around bucketed gradient
//!   all-reduces — the calls the user-level interception layer watches;
//! * full determinism: seeded init, stateless-deterministic data loading,
//!   fixed reduction order — so loss trajectories are bit-comparable with
//!   and without failure recovery (§6.2).
//!
//! Everything runs against the [`proxy::Executor`] seam, so the same
//! training code runs direct (user-level JIT / baselines) or intercepted
//! (transparent JIT) — no application change, as the paper requires.

pub mod data;
pub mod model;
pub mod optim;
pub mod setup;
pub mod trainer;

pub use data::DataLoader;
pub use model::{Block, Head, ModelConfig};
pub use optim::{OptimizerKind, RankOptimizer};
pub use setup::{build_comms, JobComms, JobSetup};
pub use trainer::{run_ranks, RankTokens, RankTrainer, TrainConfig, TrainHooks, TrainState};

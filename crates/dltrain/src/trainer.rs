//! The per-rank training loop.
//!
//! [`RankTrainer`] drives one rank of a (dp × pp × tp) job: deterministic
//! data loading, forward/backward through this rank's pipeline stage of
//! tensor-parallel blocks, bucketed data-parallel gradient all-reduces
//! overlapped Figure-3 style (event record on the comm stream, stream-wait
//! on the compute stream), and the optimizer step bracketed by the
//! pre/post-optimizer hooks of §4.2.2.
//!
//! Failure injection is polled at every phase boundary — exactly the
//! coordinates (`iteration`, [`Phase`], rank) the paper's case analysis
//! distinguishes — and applies the fault to this rank's device or
//! communicator, after which it manifests at the next device/NCCL call
//! like a real fault would.

use crate::data::DataLoader;
use crate::model::{
    alloc_buf, download, launch, upload, Block, BlockActs, BlockGrads, Head, ModelConfig,
};
use crate::optim::{OptimizerKind, RankOptimizer};
use crate::setup::JobComms;
use cluster::FailureInjector;
use collectives::{Communicator, GradLedger, LedgerConfig, ReduceOp};
use proxy::{CommToken, Executor};
use simcore::failure::{FailureKind, Phase};
use simcore::layout::{GridCoord, ParallelLayout};
use simcore::{RankId, SimError, SimResult};
use simgpu::{BufferId, BufferTag, DeviceCall, StreamId};
use std::sync::Arc;

/// Per-job training configuration (identical on every rank).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Parallelism layout.
    pub layout: ParallelLayout,
    /// Model hyperparameters.
    pub model: ModelConfig,
    /// Per-replica batch size.
    pub batch: usize,
    /// Optimizer settings.
    pub optimizer: OptimizerKind,
    /// Global seed (init + data).
    pub seed: u64,
    /// GPUs per node (p2p routing).
    pub ranks_per_node: usize,
    /// Treat the `tp` dimension as an FSDP hybrid-shard group instead of
    /// Megatron tensor parallelism.
    pub fsdp: bool,
}

impl TrainConfig {
    /// Small pure-data-parallel config for tests.
    pub fn tiny_dp(dp: usize) -> Self {
        TrainConfig {
            layout: ParallelLayout::data_parallel(dp),
            model: ModelConfig::tiny(),
            batch: 4,
            optimizer: OptimizerKind::sgd(0.05),
            seed: 1234,
            ranks_per_node: 8,
            fsdp: false,
        }
    }
}

/// Reserved p2p tags: activations flow forward, gradients backward.
const TAG_ACT: u64 = 1;
const TAG_GRAD: u64 = 2;

/// Default gradient-bucket capacity in logical bytes. Backward-pass
/// gradients accumulate until this much is pending, then the bucket's
/// fused all-reduce launches on the comm stream — DDP-style overlap of
/// communication with the rest of backward (Figure 3). Setting the
/// trainer's bucket size to 0 restores the eager per-buffer reference
/// path.
pub const DEFAULT_BUCKET_BYTES: u64 = 4 << 20;

/// Pending data-parallel gradients for one backward pass: buffers in
/// parameter-completion order plus their accumulated logical size.
#[derive(Debug, Default)]
struct GradBucket {
    bufs: Vec<BufferId>,
    bytes: u64,
}

/// Registered communicator tokens for one rank.
#[derive(Debug, Clone, Copy)]
pub struct RankTokens {
    /// World group.
    pub global: CommToken,
    /// Data-parallel group.
    pub dp: Option<CommToken>,
    /// Tensor-parallel / FSDP shard group.
    pub tp: Option<CommToken>,
    /// Pipeline column group (all stages of this replica/partition).
    pub pp: Option<CommToken>,
}

/// Hook points reserved for policy layers (periodic checkpointing
/// baselines drive the trainer externally instead).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainHooks;

/// One FSDP-sharded parameter: the rank's persistent flat shard plus the
/// full-tensor dimensions needed to materialize it each minibatch.
#[derive(Debug, Clone)]
struct FsdpParam {
    /// Persistent shard buffer (`full_elems / shard_group` elements).
    shard: BufferId,
    /// Elements of the full (gathered) tensor.
    full_elems: usize,
    /// Stable name for temp-buffer allocation sites.
    name: String,
}

/// One rank's trainer.
pub struct RankTrainer<E: Executor> {
    /// The executor (public so harnesses can reach the device layer).
    pub exec: E,
    cfg: TrainConfig,
    coord: GridCoord,
    tokens: RankTokens,
    prev: Option<RankId>,
    next: Option<RankId>,
    prev_same_node: bool,
    next_same_node: bool,
    blocks: Vec<Block>,
    head: Option<Head>,
    /// FSDP hybrid sharding: per-parameter shards in registration order
    /// (empty when FSDP is off).
    fsdp_params: Vec<FsdpParam>,
    opt: RankOptimizer,
    loader: DataLoader,
    compute: StreamId,
    comm_stream: StreamId,
    /// Gradient-bucket fill threshold in logical bytes (`0` selects the
    /// eager per-buffer reference path).
    bucket_bytes: u64,
    iteration: u64,
    /// Per-iteration losses observed by this rank (`NaN` on stages that
    /// never see the loss).
    pub losses: Vec<f32>,
    injector: Arc<FailureInjector>,
    /// In-network gradient ledger attached to the data-parallel group
    /// ([`RankTrainer::attach_grad_ledger`]); the trainer only advances
    /// its epoch at minibatch boundaries — recording happens passively
    /// in the collective data plane.
    ledger: Option<Arc<GradLedger>>,
}

impl<E: Executor> RankTrainer<E> {
    /// Builds a trainer for `exec.rank()` and registers its communicators.
    pub fn new(
        mut exec: E,
        cfg: TrainConfig,
        comms: &JobComms,
        injector: Arc<FailureInjector>,
    ) -> SimResult<Self> {
        let rank = exec.rank();
        let coord = cfg.layout.coord(rank);
        let global = exec.register_comm(comms.global.clone());
        let dp = comms.dp.as_ref().map(|c| exec.register_comm(c.clone()));
        let tp = comms.tp.as_ref().map(|c| exec.register_comm(c.clone()));
        let pp = comms.pp.as_ref().map(|c| exec.register_comm(c.clone()));
        // Framework extras participate in recovery teardown/rendezvous
        // even though the training loop never issues collectives on them.
        for extra in &comms.extras {
            exec.register_comm(extra.clone());
        }
        let tokens = RankTokens { global, dp, tp, pp };
        let compute = exec.call(DeviceCall::StreamCreate)?.stream()?;
        let comm_stream = exec.call(DeviceCall::StreamCreate)?.stream()?;
        // This stage's block range.
        assert!(
            cfg.model.blocks.is_multiple_of(cfg.layout.pp),
            "blocks must divide by pp"
        );
        let bps = cfg.model.blocks / cfg.layout.pp;
        let tp_degree = if cfg.fsdp { 1 } else { cfg.layout.tp };
        let part = if cfg.fsdp { 0 } else { coord.part };
        let mut blocks = Vec::with_capacity(bps);
        for b in 0..bps {
            let index = coord.stage * bps + b;
            blocks.push(Block::init(
                &mut exec, &cfg.model, index, part, tp_degree, cfg.seed,
            )?);
        }
        let head = (coord.stage + 1 == cfg.layout.pp)
            .then(|| Head::init(&mut exec, &cfg.model, cfg.seed))
            .transpose()?;
        // Register parameters with the optimizer in forward order.
        let mut params: Vec<(BufferId, usize, String)> = Vec::new();
        for blk in &blocks {
            params.push((blk.a, blk.d * blk.h_local, format!("block{}.a", blk.index)));
            params.push((
                blk.bias_a,
                blk.h_local,
                format!("block{}.bias_a", blk.index),
            ));
            params.push((blk.b, blk.h_local * blk.d, format!("block{}.b", blk.index)));
            params.push((blk.gamma, blk.d, format!("block{}.gamma", blk.index)));
            params.push((blk.beta, blk.d, format!("block{}.beta", blk.index)));
        }
        if let Some(h) = &head {
            params.push((h.w, h.d * h.classes, "head.w".to_string()));
        }
        // FSDP hybrid sharding: convert each full parameter into this
        // rank's flat shard (the persistent, checkpointable state); the
        // full tensors become per-minibatch temporaries re-gathered from
        // the shard group.
        let fsdp_group = if cfg.fsdp { cfg.layout.tp } else { 1 };
        let mut fsdp_params: Vec<FsdpParam> = Vec::new();
        if fsdp_group > 1 {
            let g = coord.part;
            for (full, elems, name) in &params {
                assert!(
                    elems % fsdp_group == 0,
                    "FSDP shard size must divide parameter {name}"
                );
                let shard_elems = elems / fsdp_group;
                let data = download(&mut exec, *full)?;
                let shard = alloc_buf(
                    &mut exec,
                    &format!("fsdp.{name}.shard"),
                    shard_elems,
                    cfg.model.phantom_scale,
                    BufferTag::Param,
                )?;
                upload(
                    &mut exec,
                    shard,
                    data[g * shard_elems..(g + 1) * shard_elems].to_vec(),
                )?;
                exec.call(DeviceCall::Free { buf: *full })?;
                fsdp_params.push(FsdpParam {
                    shard,
                    full_elems: *elems,
                    name: name.clone(),
                });
            }
            // The optimizer steps on the shards.
            params = fsdp_params
                .iter()
                .map(|p| (p.shard, p.full_elems / fsdp_group, p.name.clone()))
                .collect();
        }
        let opt = RankOptimizer::init(&mut exec, cfg.optimizer, &params, cfg.model.phantom_scale)?;
        // Under hybrid sharding the shard group is also a data-parallel
        // dimension: every rank reads a distinct data shard.
        let data_replica = if cfg.fsdp {
            coord.dp * cfg.layout.tp + coord.part
        } else {
            coord.dp
        };
        let loader = DataLoader::new(
            cfg.seed,
            data_replica,
            cfg.batch,
            cfg.model.input_dim,
            cfg.model.classes,
        );
        let rpn = cfg.ranks_per_node;
        let same_node = |a: RankId, b: RankId| a.index() / rpn == b.index() / rpn;
        let prev_same_node = comms.prev.map(|p| same_node(rank, p)).unwrap_or(true);
        let next_same_node = comms.next.map(|p| same_node(rank, p)).unwrap_or(true);
        Ok(RankTrainer {
            exec,
            cfg,
            coord,
            tokens,
            prev: comms.prev,
            next: comms.next,
            prev_same_node,
            next_same_node,
            blocks,
            head,
            fsdp_params,
            opt,
            loader,
            compute,
            comm_stream,
            bucket_bytes: DEFAULT_BUCKET_BYTES,
            iteration: 0,
            losses: Vec::new(),
            injector,
            ledger: None,
        })
    }

    /// Current iteration number.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Optimizer timestep (checkpointed CPU state).
    pub fn opt_t(&self) -> u32 {
        self.opt.t
    }

    /// Grid coordinates of this rank.
    pub fn coord(&self) -> GridCoord {
        self.coord
    }

    /// Registered communicator tokens.
    pub fn tokens(&self) -> RankTokens {
        self.tokens
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    fn poll_inject(&mut self, phase: Phase) -> SimResult<()> {
        if let Some(kind) = self.injector.poll(self.exec.rank(), self.iteration, phase) {
            match kind {
                FailureKind::TransientNetwork => {
                    // A link fault: fail the next collective on the group
                    // this rank synchronizes through.
                    let token = self
                        .tokens
                        .dp
                        .or(self.tokens.tp)
                        .unwrap_or(self.tokens.global);
                    self.exec.inject_transient(token)?;
                }
                other => self.exec.inject(other),
            }
        }
        Ok(())
    }

    /// Figure-3 ordering traffic around one bucket all-reduce: event on
    /// the comm stream, stream-wait on the compute stream. These are the
    /// calls the user-level watch-list intercepts.
    fn bucket_sync_events(&mut self) -> SimResult<()> {
        let ev = self.exec.call(DeviceCall::EventCreate)?.event()?;
        self.exec.call(DeviceCall::EventRecord {
            stream: self.comm_stream,
            event: ev,
        })?;
        self.exec.call(DeviceCall::StreamWaitEvent {
            stream: self.compute,
            event: ev,
        })?;
        self.exec.call(DeviceCall::EventDestroy { event: ev })?;
        Ok(())
    }

    /// FSDP prologue: all-gather every parameter shard into a fresh full
    /// temporary on the shard group and point the blocks/head at the
    /// gathered tensors for this minibatch.
    fn materialize_fsdp(&mut self, scratch: &mut Vec<BufferId>) -> SimResult<()> {
        let tp = self.tokens.tp.expect("FSDP requires a shard group");
        let ps = self.cfg.model.phantom_scale;
        let params = self.fsdp_params.clone();
        let mut temps = Vec::with_capacity(params.len());
        for p in &params {
            let temp = alloc_buf(
                &mut self.exec,
                &format!("fsdp.{}.full", p.name),
                p.full_elems,
                ps,
                BufferTag::Workspace,
            )?;
            self.exec.all_gather_into(tp, p.shard, temp)?;
            scratch.push(temp);
            temps.push(temp);
        }
        // Rebind the model views onto the gathered tensors.
        let d = self.cfg.model.input_dim;
        let h = self.cfg.model.hidden;
        for (i, blk) in self.blocks.iter_mut().enumerate() {
            blk.a = temps[5 * i];
            blk.bias_a = temps[5 * i + 1];
            blk.b = temps[5 * i + 2];
            blk.gamma = temps[5 * i + 3];
            blk.beta = temps[5 * i + 4];
            blk.d = d;
            blk.h_local = h;
        }
        if let Some(head) = &mut self.head {
            head.w = *temps.last().expect("head param gathered");
        }
        Ok(())
    }

    /// FSDP epilogue: reduce-scatter every full gradient to this rank's
    /// shard (averaging over the shard group, which is also a data
    /// dimension under hybrid sharding), returning the shard gradients in
    /// registration order.
    fn fsdp_shard_grads(
        &mut self,
        full_grads: &[BufferId],
        scratch: &mut Vec<BufferId>,
    ) -> SimResult<Vec<BufferId>> {
        let tp = self.tokens.tp.expect("FSDP requires a shard group");
        let g = self.cfg.layout.tp;
        let ps = self.cfg.model.phantom_scale;
        let params = self.fsdp_params.clone();
        let mut shard_grads = Vec::with_capacity(params.len());
        for (p, full) in params.iter().zip(full_grads) {
            let shard_g = alloc_buf(
                &mut self.exec,
                &format!("fsdp.{}.grad_shard", p.name),
                p.full_elems / g,
                ps,
                BufferTag::Gradient,
            )?;
            self.exec
                .reduce_scatter_into(tp, *full, shard_g, ReduceOp::Avg)?;
            scratch.push(shard_g);
            shard_grads.push(shard_g);
        }
        Ok(shard_grads)
    }

    /// Sets the gradient-bucket fill threshold in logical bytes. `0`
    /// disables bucketing and restores the eager per-buffer all-reduce
    /// path (the bit-identity reference).
    pub fn set_bucket_bytes(&mut self, bytes: u64) {
        self.bucket_bytes = bytes;
    }

    /// Attaches an in-network gradient ledger for this rank to `comm`
    /// (normally the data-parallel group): completed reduce generations
    /// are recorded passively by the data plane, and this trainer
    /// advances the ledger's epoch at every minibatch boundary.
    pub fn attach_grad_ledger(
        &mut self,
        comm: &Arc<Communicator>,
        cfg: LedgerConfig,
    ) -> SimResult<Arc<GradLedger>> {
        let ledger = GradLedger::new(cfg);
        ledger.begin_epoch(self.iteration);
        comm.attach_ledger(self.exec.rank(), ledger.clone())?;
        self.ledger = Some(ledger.clone());
        Ok(ledger)
    }

    /// This rank's attached gradient ledger, if any.
    pub fn grad_ledger(&self) -> Option<Arc<GradLedger>> {
        self.ledger.clone()
    }

    /// Per-parameter payload lengths in registration order (forward
    /// block order, then the head; FSDP shards when hybrid sharding is
    /// on) — the shapes the optimizer steps over.
    fn param_elems(&self) -> Vec<usize> {
        if !self.fsdp_params.is_empty() {
            let g = self.cfg.layout.tp;
            return self.fsdp_params.iter().map(|p| p.full_elems / g).collect();
        }
        let mut out = Vec::new();
        for blk in &self.blocks {
            out.extend_from_slice(&[
                blk.d * blk.h_local,
                blk.h_local,
                blk.h_local * blk.d,
                blk.d,
                blk.d,
            ]);
        }
        if let Some(h) = &self.head {
            out.push(h.d * h.classes);
        }
        out
    }

    /// The data-parallel reduction schedule of one minibatch: for each
    /// fused collective (ledger generation), the registration-order
    /// parameter indices it carries, in fused concatenation order. This
    /// is a pure function of the configuration — the deterministic map
    /// that lets a replacement rank scatter ledgered reduced vectors
    /// back onto parameters during replay. Empty without a dp group.
    pub fn reduction_plan(&self) -> Vec<Vec<usize>> {
        if self.tokens.dp.is_none() {
            return Vec::new();
        }
        let shapes = self.param_elems();
        let n = shapes.len();
        let fsdp_mode = !self.fsdp_params.is_empty();
        // Issue order mirrors `train_step`: backward through blocks in
        // reverse with the five grads of each block together, then the
        // head; FSDP issues every shard grad in one call, in
        // registration order.
        let groups: Vec<Vec<usize>> = if fsdp_mode {
            vec![(0..n).collect()]
        } else {
            let nb = self.blocks.len();
            let mut gs: Vec<Vec<usize>> = (0..nb)
                .rev()
                .map(|b| (5 * b..5 * b + 5).collect())
                .collect();
            if self.head.is_some() {
                gs.push(vec![n - 1]);
            }
            gs
        };
        if self.bucket_bytes == 0 {
            // Eager path: one generation per buffer, in issue order.
            return groups.into_iter().flatten().map(|i| vec![i]).collect();
        }
        let ps = self.cfg.model.phantom_scale;
        let mut plan: Vec<Vec<usize>> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut bytes = 0u64;
        for g in groups {
            let elems: usize = g.iter().map(|&i| shapes[i]).sum();
            cur.extend(g);
            bytes += ((elems * 4) as f64 * ps).ceil() as u64;
            if bytes >= self.bucket_bytes {
                plan.push(std::mem::take(&mut cur));
                bytes = 0;
            }
        }
        if !cur.is_empty() {
            plan.push(cur);
        }
        plan
    }

    /// Optimizer-only replay of one minibatch from ledgered reduced
    /// gradients: `fused[k]` must be the full reduced vector of the
    /// k-th collective in [`RankTrainer::reduction_plan`] order. The
    /// uploaded values are exactly what the all-reduce delivered on the
    /// healthy ranks, so stepping the (deterministic) optimizer on them
    /// reproduces the dead rank's post-iteration state bit-for-bit —
    /// with no forward, no backward, and no collectives.
    pub fn replay_reduced_step(&mut self, fused: &[Vec<f32>]) -> SimResult<()> {
        let plan = self.reduction_plan();
        if fused.len() != plan.len() {
            return Err(SimError::Protocol(format!(
                "replay expected {} fused gradient vectors, got {}",
                plan.len(),
                fused.len()
            )));
        }
        let shapes = self.param_elems();
        let ps = self.cfg.model.phantom_scale;
        let it = self.iteration;
        self.exec.begin_minibatch(it)?;
        let mut grad_bufs: Vec<Option<BufferId>> = vec![None; shapes.len()];
        let mut scratch: Vec<BufferId> = Vec::new();
        for (vec, group) in fused.iter().zip(&plan) {
            let mut off = 0usize;
            for &pi in group {
                let elems = shapes[pi];
                let end = off + elems;
                if end > vec.len() {
                    return Err(SimError::Protocol(format!(
                        "replayed fused vector too short: {} < {end}",
                        vec.len()
                    )));
                }
                let buf = alloc_buf(
                    &mut self.exec,
                    &format!("replay.grad{pi}"),
                    elems,
                    ps,
                    BufferTag::Gradient,
                )?;
                scratch.push(buf);
                upload(&mut self.exec, buf, vec[off..end].to_vec())?;
                grad_bufs[pi] = Some(buf);
                off = end;
            }
            if off != vec.len() {
                return Err(SimError::Protocol(format!(
                    "replayed fused vector carries {} elements, plan expects {off}",
                    vec.len()
                )));
            }
        }
        let grad_list: Vec<BufferId> = grad_bufs
            .into_iter()
            .map(|b| b.ok_or_else(|| SimError::Protocol("replay plan missed a parameter".into())))
            .collect::<SimResult<_>>()?;
        self.exec.pre_optimizer()?;
        self.opt.step(&mut self.exec, self.compute, &grad_list)?;
        self.exec.post_optimizer()?;
        for b in scratch {
            self.exec.call(DeviceCall::Free { buf: b })?;
        }
        self.iteration += 1;
        self.losses.push(f32::NAN);
        Ok(())
    }

    /// Replays a whole ledgered history: `epochs[i]` holds iteration
    /// `start + i`'s fused reduced vectors in generation order.
    pub fn replay_reduced_history(&mut self, epochs: &[Vec<Vec<f32>>]) -> SimResult<()> {
        for fused in epochs {
            self.replay_reduced_step(fused)?;
        }
        Ok(())
    }

    /// Data-parallel gradient all-reduce for one bucket (averaging), with
    /// the Figure-3 event pattern — the eager per-buffer reference path
    /// used when bucketing is disabled.
    fn dp_all_reduce_bucket(&mut self, grads: &[BufferId]) -> SimResult<()> {
        if let Some(dp) = self.tokens.dp {
            for g in grads {
                self.exec.all_reduce(dp, *g, ReduceOp::Avg)?;
            }
            self.bucket_sync_events()?;
        }
        Ok(())
    }

    /// Queues one gradient group (`elems` logical elements) on the
    /// data-parallel bucket, launching the fused bucket all-reduce as
    /// soon as the bucket fills. Accumulation order is the caller's
    /// issue order, so the fused reduction is bit-identical to the eager
    /// path (each buffer reduces independently either way).
    fn bucket_grads(
        &mut self,
        bucket: &mut GradBucket,
        grads: &[BufferId],
        elems: usize,
    ) -> SimResult<()> {
        if self.tokens.dp.is_none() {
            return Ok(());
        }
        if self.bucket_bytes == 0 {
            return self.dp_all_reduce_bucket(grads);
        }
        bucket.bufs.extend_from_slice(grads);
        bucket.bytes += ((elems * 4) as f64 * self.cfg.model.phantom_scale).ceil() as u64;
        if bucket.bytes >= self.bucket_bytes {
            self.flush_bucket(bucket)?;
        }
        Ok(())
    }

    /// Launches the pending bucket's fused all-reduce (no-op when
    /// empty). The final flush runs immediately before `pre_optimizer`,
    /// so a bucketed minibatch still ends at the single observable
    /// optimizer-step barrier the JIT watchdog keys on.
    fn flush_bucket(&mut self, bucket: &mut GradBucket) -> SimResult<()> {
        if bucket.bufs.is_empty() {
            return Ok(());
        }
        let dp = self.tokens.dp.expect("bucket only fills with a dp group");
        self.exec
            .all_reduce_bucket(dp, &bucket.bufs, ReduceOp::Avg)?;
        self.bucket_sync_events()?;
        bucket.bufs.clear();
        bucket.bytes = 0;
        Ok(())
    }

    /// Runs one minibatch iteration. Returns the loss on ranks that
    /// compute it (last pipeline stage), `None` elsewhere.
    pub fn train_step(&mut self) -> SimResult<Option<f32>> {
        let it = self.iteration;
        let m = self.cfg.batch;
        let d = self.cfg.model.input_dim;
        let ps = self.cfg.model.phantom_scale;
        self.exec.begin_minibatch(it)?;
        if let Some(ledger) = &self.ledger {
            // Epoch boundary of the in-network tap: evict generations
            // that fell out of the retention window before this
            // minibatch's reductions are recorded.
            ledger.begin_epoch(it);
        }
        self.poll_inject(Phase::Forward)?;
        let mut scratch: Vec<BufferId> = Vec::new();
        let fsdp_mode = !self.fsdp_params.is_empty();
        if fsdp_mode {
            self.materialize_fsdp(&mut scratch)?;
        }
        let mb = self.loader.minibatch(it);
        // Input activations: loaded on stage 0, received on later stages.
        // Inputs and cross-stage activation gradients are batch-sized.
        let x0 = alloc_buf(&mut self.exec, "act.input", m * d, 1.0, BufferTag::Input)?;
        scratch.push(x0);
        if self.coord.stage == 0 {
            upload(&mut self.exec, x0, mb.inputs.clone())?;
        } else {
            let prev = self.prev.expect("non-first stage has prev");
            self.exec.recv_into(prev, TAG_ACT, it, x0)?;
        }
        // Forward through this stage's blocks.
        let mut cur = x0;
        let mut acts: Vec<(BufferId, BlockActs)> = Vec::new();
        let blocks = self.blocks.clone();
        for blk in &blocks {
            let a = blk.forward(&mut self.exec, self.compute, cur, m, ps, &mut scratch)?;
            if let (false, Some(tp)) = (self.cfg.fsdp, self.tokens.tp) {
                self.exec.all_reduce(tp, a.y, ReduceOp::Sum)?;
            }
            // Residual: y ← y + x (applied after the group reduction so
            // it is added exactly once on every rank).
            launch(
                &mut self.exec,
                self.compute,
                simgpu::KernelKind::Axpy {
                    alpha: 1.0,
                    x: cur,
                    y: a.y,
                },
            )?;
            acts.push((cur, a.clone()));
            cur = a.y;
        }
        // Stage boundary / head.
        let mut bucket = GradBucket::default();
        let mut grads_rev: Vec<[BufferId; 5]> = Vec::new();
        let mut head_grad: Option<BufferId> = None;
        let mut loss_val: Option<f32> = None;
        if let Some(head) = self.head.clone() {
            // Last stage: loss + start of backward.
            let labels = alloc_buf(&mut self.exec, "act.labels", m, 1.0, BufferTag::Input)?;
            scratch.push(labels);
            upload(&mut self.exec, labels, mb.labels.clone())?;
            let (loss_buf, probs, _logits) = head.forward_loss(
                &mut self.exec,
                self.compute,
                cur,
                labels,
                m,
                ps,
                &mut scratch,
            )?;
            self.poll_inject(Phase::Backward)?;
            let (dw, mut dy) = head.backward(
                &mut self.exec,
                self.compute,
                cur,
                labels,
                probs,
                m,
                ps,
                &mut scratch,
            )?;
            head_grad = Some(dw);
            // Backward through blocks (reverse), overlapping dp bucket
            // all-reduces per block as its gradients complete (Figure 3).
            for (blk, (x_in, a)) in blocks.iter().rev().zip(acts.iter().rev()) {
                let g = BlockGrads::alloc(&mut self.exec, blk, ps, &mut scratch)?;
                let dln =
                    blk.backward_mlp(&mut self.exec, self.compute, a, dy, m, ps, &g, &mut scratch)?;
                if let (false, Some(tp)) = (self.cfg.fsdp, self.tokens.tp) {
                    // Reduce the pre-LN gradient across the group; the
                    // LayerNorm backward then derives identical dγ/dβ on
                    // every part without extra synchronization.
                    self.exec.all_reduce(tp, dln, ReduceOp::Sum)?;
                }
                let dx = blk.backward_ln(
                    &mut self.exec,
                    self.compute,
                    *x_in,
                    a,
                    dy,
                    dln,
                    m,
                    ps,
                    &g,
                    &mut scratch,
                )?;
                self.poll_inject(Phase::AllReduce)?;
                if !fsdp_mode {
                    let elems = 2 * blk.d * blk.h_local + blk.h_local + 2 * blk.d;
                    self.bucket_grads(&mut bucket, &g.list(), elems)?;
                }
                grads_rev.push(g.list());
                dy = dx;
            }
            if !fsdp_mode {
                self.bucket_grads(&mut bucket, &[dw], head.d * head.classes)?;
            }
            if let Some(prev) = self.prev {
                self.exec
                    .send(prev, TAG_GRAD, it, dy, self.prev_same_node)?;
            }
            loss_val = Some(download(&mut self.exec, loss_buf)?[0]);
        } else {
            // Middle/first stage: ship activations forward, then wait for
            // the gradient from the next stage.
            let next = self.next.expect("non-last stage has next");
            self.exec
                .send(next, TAG_ACT, it, cur, self.next_same_node)?;
            self.poll_inject(Phase::Backward)?;
            let dy_in = alloc_buf(
                &mut self.exec,
                "grad.stage_in",
                m * d,
                1.0,
                BufferTag::Gradient,
            )?;
            scratch.push(dy_in);
            self.exec.recv_into(next, TAG_GRAD, it, dy_in)?;
            let mut dy = dy_in;
            for (blk, (x_in, a)) in blocks.iter().rev().zip(acts.iter().rev()) {
                let g = BlockGrads::alloc(&mut self.exec, blk, ps, &mut scratch)?;
                let dln =
                    blk.backward_mlp(&mut self.exec, self.compute, a, dy, m, ps, &g, &mut scratch)?;
                if let (false, Some(tp)) = (self.cfg.fsdp, self.tokens.tp) {
                    // Reduce the pre-LN gradient across the group; the
                    // LayerNorm backward then derives identical dγ/dβ on
                    // every part without extra synchronization.
                    self.exec.all_reduce(tp, dln, ReduceOp::Sum)?;
                }
                let dx = blk.backward_ln(
                    &mut self.exec,
                    self.compute,
                    *x_in,
                    a,
                    dy,
                    dln,
                    m,
                    ps,
                    &g,
                    &mut scratch,
                )?;
                self.poll_inject(Phase::AllReduce)?;
                if !fsdp_mode {
                    let elems = 2 * blk.d * blk.h_local + blk.h_local + 2 * blk.d;
                    self.bucket_grads(&mut bucket, &g.list(), elems)?;
                }
                grads_rev.push(g.list());
                dy = dx;
            }
            if let Some(prev) = self.prev {
                self.exec
                    .send(prev, TAG_GRAD, it, dy, self.prev_same_node)?;
            }
        }
        // Optimizer step: assemble gradients in parameter registration
        // order (forward block order, then head).
        let mut grad_list: Vec<BufferId> = Vec::new();
        for g in grads_rev.iter().rev() {
            grad_list.extend_from_slice(g);
        }
        if let Some(dw) = head_grad {
            grad_list.push(dw);
        }
        if fsdp_mode {
            // Hybrid sharding: reduce-scatter within the shard group,
            // then average shard gradients across the replica groups.
            let shard_grads = self.fsdp_shard_grads(&grad_list, &mut scratch)?;
            self.poll_inject(Phase::AllReduce)?;
            let g = self.cfg.layout.tp;
            let elems: usize = self.fsdp_params.iter().map(|p| p.full_elems / g).sum();
            self.bucket_grads(&mut bucket, &shard_grads, elems)?;
            grad_list = shard_grads;
        }
        // Drain any straggler gradients before the optimizer barrier.
        self.flush_bucket(&mut bucket)?;
        self.exec.pre_optimizer()?;
        self.poll_inject(Phase::OptimizerStep)?;
        self.opt.step(&mut self.exec, self.compute, &grad_list)?;
        self.exec.post_optimizer()?;
        // Release per-minibatch buffers (deferred until the next
        // minibatch commits, so resets can resurrect them).
        for b in scratch {
            self.exec.call(DeviceCall::Free { buf: b })?;
        }
        self.poll_inject(Phase::BetweenIterations)?;
        self.iteration += 1;
        self.losses.push(loss_val.unwrap_or(f32::NAN));
        Ok(loss_val)
    }

    /// Runs `n` iterations, returning the per-iteration losses seen by
    /// this rank.
    pub fn train(&mut self, n: u64) -> SimResult<Vec<f32>> {
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.train_step()?.unwrap_or(f32::NAN));
        }
        Ok(out)
    }

    /// Snapshot of this rank's training state — iteration, optimizer
    /// timestep, and all persistent device buffers — the payload of a
    /// (JIT or periodic) checkpoint.
    pub fn state_snapshot(&mut self) -> SimResult<TrainState> {
        let (buffers, logical_bytes) = self.exec.persistent_snapshot()?;
        Ok(TrainState {
            iteration: self.iteration,
            opt_t: self.opt.t,
            buffers,
            logical_bytes,
        })
    }

    /// Restores this rank from a snapshot (resume-from-checkpoint path).
    pub fn restore(&mut self, state: &TrainState) -> SimResult<()> {
        self.exec.restore_persistent(&state.buffers)?;
        self.iteration = state.iteration;
        self.opt.t = state.opt_t;
        Ok(())
    }
}

/// A rank's checkpointable training state.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Next iteration to execute.
    pub iteration: u64,
    /// Optimizer timestep.
    pub opt_t: u32,
    /// Persistent buffers: (storage key, tag, payload).
    pub buffers: Vec<(String, BufferTag, Vec<f32>)>,
    /// Logical checkpoint size in bytes (cost accounting).
    pub logical_bytes: u64,
}

impl simcore::codec::Encode for TrainState {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.iteration.encode(buf);
        self.opt_t.encode(buf);
        self.logical_bytes.encode(buf);
        (self.buffers.len() as u64).encode(buf);
        for (key, tag, data) in &self.buffers {
            key.encode(buf);
            tag.encode(buf);
            // Buffer payloads dominate the stream; the bulk path emits
            // the same bytes as `data.encode(buf)` without per-element
            // call overhead.
            simcore::codec::encode_f32_slice(data, buf);
        }
    }
}

impl simcore::codec::Decode for TrainState {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        let iteration = u64::decode(buf)?;
        let opt_t = u32::decode(buf)?;
        let logical_bytes = u64::decode(buf)?;
        let n = u64::decode(buf)? as usize;
        let mut buffers = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let key = String::decode(buf)?;
            let tag = BufferTag::decode(buf)?;
            let data = simcore::codec::decode_f32_slice(buf)?;
            buffers.push((key, tag, data));
        }
        Ok(TrainState {
            iteration,
            opt_t,
            buffers,
            logical_bytes,
        })
    }
}

impl TrainState {
    /// Checksum over the full state (metadata integrity field).
    pub fn checksum(&self) -> u64 {
        let framed = simcore::codec::encode_framed(self);
        simcore::codec::crc64(&framed)
    }

    /// Exact number of bytes `encode` will produce, so writers can size
    /// the staging buffer once instead of growing it through a realloc
    /// chain while tens of MiB stream in.
    pub fn encoded_len(&self) -> usize {
        let mut n = 8 + 4 + 8 + 8; // iteration, opt_t, logical_bytes, count
        for (key, _tag, data) in &self.buffers {
            n += 8 + key.len(); // length-prefixed key
            n += 1; // BufferTag discriminant byte
            n += simcore::codec::f32_slice_encoded_len(data);
        }
        n
    }

    /// Number of fixed-size shards a checkpoint of this state will
    /// occupy at `shard_bytes` per shard. Shard-worker auto-sizing keys
    /// off this so pool width tracks actual parallelism available.
    pub fn shard_count(&self, shard_bytes: usize) -> usize {
        self.encoded_len().div_ceil(shard_bytes.max(1)).max(1)
    }
}

/// Spawns one thread per rank, each building a trainer via `make` and
/// running `body`. Returns each rank's result in rank order. The harness
/// used by tests, examples, and benches.
pub fn run_ranks<T, F>(n: usize, f: F) -> Vec<SimResult<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> SimResult<T> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let f = f.clone();
            std::thread::Builder::new()
                .name(format!("rank{i}"))
                .spawn(move || f(i))
                .expect("spawn rank thread")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(r) => r,
            Err(_) => Err(SimError::Protocol("rank thread panicked".into())),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::JobSetup;
    use proxy::DirectExecutor;
    use simcore::cost::CostModel;
    use simcore::GpuId;
    use simgpu::Gpu;

    /// Runs an n-rank job to completion and returns each rank's losses.
    fn run_job(cfg: TrainConfig, iters: u64) -> Vec<Vec<f32>> {
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let results = run_ranks(cfg.layout.world_size(), move |i| {
            let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
            tr.train(iters)
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn single_rank_loss_decreases() {
        let mut cfg = TrainConfig::tiny_dp(1);
        cfg.optimizer = OptimizerKind::adam(0.01);
        let losses = run_job(cfg, 30).remove(0);
        let head: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[25..].iter().sum::<f32>() / 5.0;
        assert!(
            tail < head,
            "loss should decrease: head {head}, tail {tail}"
        );
    }

    #[test]
    fn training_is_deterministic_across_runs() {
        let cfg = TrainConfig::tiny_dp(2);
        let a = run_job(cfg.clone(), 8);
        let b = run_job(cfg, 8);
        assert_eq!(a, b, "bit-identical reruns");
    }

    #[test]
    fn dp_replicas_share_parameters_after_steps() {
        // After averaging gradients, replicas must hold identical params.
        let cfg = TrainConfig::tiny_dp(2);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let results = run_ranks(2, move |i| {
            let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
            tr.train(5)?;
            tr.state_snapshot()
        });
        let snaps: Vec<TrainState> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(snaps[0].iteration, snaps[1].iteration);
        assert_eq!(snaps[0].buffers.len(), snaps[1].buffers.len());
        for (a, b) in snaps[0].buffers.iter().zip(&snaps[1].buffers) {
            assert_eq!(a.0, b.0, "storage keys match across replicas");
            assert_eq!(a.2, b.2, "replica state bit-identical for {}", a.0);
        }
    }

    #[test]
    fn tp_matches_single_rank_numerics() {
        // A 2-way tensor-parallel run computes the same math as the
        // single-rank run; partial sums associate differently, so the
        // comparison is up-to-f32-rounding across layouts, and bit-exact
        // between the two parts (identical reductions).
        let mut single = TrainConfig::tiny_dp(1);
        single.optimizer = OptimizerKind::sgd(0.05);
        let base = run_job(single, 6).remove(0);
        let mut tp = TrainConfig::tiny_dp(1);
        tp.layout = ParallelLayout::three_d(1, 1, 2);
        tp.optimizer = OptimizerKind::sgd(0.05);
        let tp_losses = run_job(tp, 6);
        assert_eq!(tp_losses[0], tp_losses[1], "parts must agree bit-for-bit");
        for (a, b) in base.iter().zip(&tp_losses[0]) {
            assert!((a - b).abs() <= a.abs().max(1.0) * 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn pp_matches_single_rank_numerics() {
        let mut single = TrainConfig::tiny_dp(1);
        single.optimizer = OptimizerKind::sgd(0.05);
        let base = run_job(single, 6).remove(0);
        let mut pp = TrainConfig::tiny_dp(1);
        pp.layout = ParallelLayout::three_d(1, 2, 1);
        pp.optimizer = OptimizerKind::sgd(0.05);
        let pp_losses = run_job(pp, 6);
        // Last stage (rank 1) sees the loss; first stage sees NaN.
        assert!(pp_losses[0].iter().all(|l| l.is_nan()));
        assert_eq!(base, pp_losses[1]);
    }

    #[test]
    fn full_3d_job_runs_and_replicas_agree() {
        let mut cfg = TrainConfig::tiny_dp(1);
        cfg.layout = ParallelLayout::three_d(2, 2, 2);
        let losses = run_job(cfg, 4);
        assert_eq!(losses.len(), 8);
        // Loss-bearing ranks: stage 1 cells → ranks with coord.stage==1.
        let layout = ParallelLayout::three_d(2, 2, 2);
        for (r, rank_losses) in losses.iter().enumerate() {
            let c = layout.coord(RankId(r as u32));
            if c.stage == 1 {
                assert!(rank_losses.iter().all(|l| l.is_finite()), "rank {r}");
            } else {
                assert!(rank_losses.iter().all(|l| l.is_nan()), "rank {r}");
            }
        }
        // TP parts of the same replica see identical losses.
        let a = layout.rank_at(GridCoord {
            dp: 0,
            stage: 1,
            part: 0,
        });
        let b = layout.rank_at(GridCoord {
            dp: 0,
            stage: 1,
            part: 1,
        });
        assert_eq!(losses[a.index()], losses[b.index()]);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Train 3, snapshot, train 3 more; vs restore into a fresh job and
        // train the same 3 — trajectories must match bit-for-bit.
        let cfg = TrainConfig::tiny_dp(1);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let gpu = Gpu::new(GpuId(0), CostModel::v100());
        let exec = DirectExecutor::new(RankId(0), 0, gpu, setup.world.clone());
        let mut tr = RankTrainer::new(
            exec,
            cfg.clone(),
            &setup.per_rank[0],
            FailureInjector::none(),
        )
        .unwrap();
        tr.train(3).unwrap();
        let snap = tr.state_snapshot().unwrap();
        let ahead = tr.train(3).unwrap();

        let setup2 = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let gpu2 = Gpu::new(GpuId(0), CostModel::v100());
        let exec2 = DirectExecutor::new(RankId(0), 0, gpu2, setup2.world.clone());
        let mut tr2 = RankTrainer::new(
            exec2,
            cfg.clone(),
            &setup2.per_rank[0],
            FailureInjector::none(),
        )
        .unwrap();
        tr2.restore(&snap).unwrap();
        let resumed = tr2.train(3).unwrap();
        assert_eq!(ahead, resumed);
    }

    #[test]
    fn train_state_codec_round_trip() {
        let state = TrainState {
            iteration: 42,
            opt_t: 42,
            buffers: vec![
                ("w".into(), BufferTag::Param, vec![1.0, -2.0]),
                ("m".into(), BufferTag::OptimState, vec![0.5]),
            ],
            logical_bytes: 12,
        };
        let framed = simcore::codec::encode_framed(&state);
        let back: TrainState = simcore::codec::decode_framed(&framed).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.checksum(), state.checksum());
    }

    #[test]
    fn injected_hardware_fault_surfaces_on_direct_executor() {
        let cfg = TrainConfig::tiny_dp(1);
        let inj = FailureInjector::with_specs(vec![simcore::failure::FailureSpec::new(
            2,
            Phase::Forward,
            RankId(0),
            FailureKind::GpuHardware,
        )]);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let gpu = Gpu::new(GpuId(0), CostModel::v100());
        let exec = DirectExecutor::new(RankId(0), 0, gpu, setup.world.clone());
        let mut tr = RankTrainer::new(exec, cfg, &setup.per_rank[0], inj).unwrap();
        assert!(tr.train_step().is_ok());
        assert!(tr.train_step().is_ok());
        let err = tr.train_step().unwrap_err();
        assert!(matches!(err, SimError::GpuHardware(_)), "{err}");
    }

    #[test]
    fn minibatch_time_accumulates_on_virtual_clock() {
        let cfg = TrainConfig::tiny_dp(1);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let gpu = Gpu::new(GpuId(0), CostModel::v100());
        let exec = DirectExecutor::new(RankId(0), 0, gpu, setup.world.clone());
        let clock = setup.clock.clone();
        let mut tr =
            RankTrainer::new(exec, cfg, &setup.per_rank[0], FailureInjector::none()).unwrap();
        let t0 = clock.now(0);
        tr.train_step().unwrap();
        let t1 = clock.now(0);
        assert!(t1 > t0, "a minibatch must take virtual time");
    }
}

#[cfg(test)]
mod fsdp_tests {
    use super::*;
    use crate::setup::JobSetup;
    use proxy::DirectExecutor;
    use simcore::cost::CostModel;
    use simcore::GpuId;
    use simgpu::Gpu;

    fn run_job(cfg: TrainConfig, iters: u64) -> Vec<Vec<f32>> {
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let results = run_ranks(cfg.layout.world_size(), move |i| {
            let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
            tr.train(iters)
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn fsdp_matches_plain_data_parallel_numerics() {
        // Hybrid sharding over a 2-rank shard group must produce exactly
        // the losses of plain 2-way data parallelism: same data shards,
        // same averaged gradients, same updates.
        let dp = TrainConfig::tiny_dp(2);
        let dp_losses = run_job(dp, 6);
        let mut fsdp = TrainConfig::tiny_dp(1);
        fsdp.layout = ParallelLayout::three_d(1, 1, 2);
        fsdp.fsdp = true;
        let fsdp_losses = run_job(fsdp, 6);
        assert_eq!(dp_losses[0], fsdp_losses[0]);
        assert_eq!(dp_losses[1], fsdp_losses[1]);
    }

    #[test]
    fn hybrid_shard_replicas_hold_identical_shards() {
        // dp=2 replica groups × shard group of 2: replicas of the same
        // partition must hold bit-identical shard state (the redundancy
        // JIT recovery uses), and different partitions distinct state.
        let mut cfg = TrainConfig::tiny_dp(1);
        cfg.layout = ParallelLayout::three_d(2, 1, 2);
        cfg.fsdp = true;
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let results = run_ranks(4, move |i| {
            let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
            tr.train(4)?;
            tr.state_snapshot()
        });
        let snaps: Vec<TrainState> = results.into_iter().map(|r| r.unwrap()).collect();
        // Layout 2D-1P-2T: rank = dp*2 + part. Replicas of part 0: ranks
        // 0 and 2; of part 1: ranks 1 and 3.
        assert_eq!(snaps[0].buffers, snaps[2].buffers, "part-0 replicas match");
        assert_eq!(snaps[1].buffers, snaps[3].buffers, "part-1 replicas match");
        assert_ne!(snaps[0].buffers, snaps[1].buffers, "partitions differ");
    }

    #[test]
    fn fsdp_training_reduces_loss() {
        let mut cfg = TrainConfig::tiny_dp(1);
        cfg.layout = ParallelLayout::three_d(2, 1, 2);
        cfg.fsdp = true;
        cfg.optimizer = OptimizerKind::adam(0.01);
        let losses = run_job(cfg, 25);
        let head: f32 = losses[0][..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[0][20..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "head {head} tail {tail}");
    }

    /// Bitwise view of a state's buffers (f32 `PartialEq` would accept
    /// `-0.0 == 0.0`; reconstruction must be exact).
    fn state_bits(s: &TrainState) -> Vec<(String, Vec<u32>)> {
        s.buffers
            .iter()
            .map(|(k, _, d)| (k.clone(), d.iter().map(|f| f.to_bits()).collect()))
            .collect()
    }

    /// Trains `n` ranks with ledgers attached to the dp group, returning
    /// each rank's final state and its ledger.
    fn run_with_ledgers(
        cfg: &TrainConfig,
        iters: u64,
        bucket: u64,
        ledger_cfg: LedgerConfig,
    ) -> Vec<(TrainState, Arc<GradLedger>, usize)> {
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let cfg = cfg.clone();
        let n = cfg.layout.world_size();
        let results = run_ranks(n, move |i| {
            let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
            tr.set_bucket_bytes(bucket);
            let dp = per_rank[i].dp.as_ref().expect("dp group").clone();
            let ledger = tr.attach_grad_ledger(&dp, ledger_cfg)?;
            tr.train(iters)?;
            let plan_len = tr.reduction_plan().len();
            Ok((tr.state_snapshot()?, ledger, plan_len))
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn ledger_replay_reconstructs_failed_rank_state_bitwise() {
        // Eager, small-bucket (multiple fused generations per epoch),
        // and default-bucket (single generation) reduction schedules.
        for bucket in [0u64, 1 << 10, DEFAULT_BUCKET_BYTES] {
            let cfg = TrainConfig::tiny_dp(4);
            let iters = 4u64;
            let ran = run_with_ledgers(&cfg, iters, bucket, LedgerConfig::unbounded());
            let failed = 0usize;
            let truth = ran[failed].0.clone();
            let plan_len = ran[failed].2;
            let mut ledgers: Vec<Option<Arc<GradLedger>>> =
                ran.iter().map(|(_, l, _)| Some(l.clone())).collect();
            ledgers[failed] = None;
            // Reassemble the failed rank's reduced-gradient history from
            // the survivors' retained shard slices.
            let manifest = ran[1].1.manifest();
            let mut history: Vec<Vec<Vec<f32>>> = vec![Vec::new(); iters as usize];
            for m in &manifest {
                history[m.epoch as usize].push(
                    collectives::ledger::reconstruct_result(m.gen, &ledgers)
                        .expect("single failure is always covered"),
                );
            }
            for epoch in &history {
                assert_eq!(epoch.len(), plan_len, "one generation per planned fuse");
            }
            // Replacement process: deterministic re-init plus
            // optimizer-only replay — no store, no replica stream.
            let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
            let gpu = Gpu::new(GpuId(failed as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(failed as u32), failed, gpu, setup.world.clone());
            let mut tr = RankTrainer::new(
                exec,
                cfg.clone(),
                &setup.per_rank[failed],
                FailureInjector::none(),
            )
            .unwrap();
            tr.set_bucket_bytes(bucket);
            tr.replay_reduced_history(&history).unwrap();
            let got = tr.state_snapshot().unwrap();
            assert_eq!(got.iteration, truth.iteration, "bucket {bucket}");
            assert_eq!(got.opt_t, truth.opt_t, "bucket {bucket}");
            assert_eq!(
                state_bits(&got),
                state_bits(&truth),
                "replayed state must be bit-identical (bucket {bucket})"
            );
        }
    }

    #[test]
    fn attached_ledger_does_not_perturb_training() {
        let cfg = TrainConfig::tiny_dp(2);
        let tapped = run_with_ledgers(&cfg, 6, DEFAULT_BUCKET_BYTES, LedgerConfig::default());
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let cfg2 = cfg.clone();
        let plain = run_ranks(2, move |i| {
            let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg2.clone(), &per_rank[i], FailureInjector::none())?;
            tr.train(6)?;
            tr.state_snapshot()
        });
        for (i, p) in plain.into_iter().enumerate() {
            assert_eq!(
                state_bits(&p.unwrap()),
                state_bits(&tapped[i].0),
                "tap must be invisible to the training computation"
            );
        }
    }

    #[test]
    fn bounded_ledger_keeps_only_the_epoch_window() {
        let cfg = TrainConfig::tiny_dp(2);
        let ledger_cfg = LedgerConfig {
            cap_bytes: usize::MAX,
            epoch_window: 2,
        };
        let ran = run_with_ledgers(&cfg, 6, DEFAULT_BUCKET_BYTES, ledger_cfg);
        for (_, ledger, plan_len) in &ran {
            let epochs: Vec<u64> = ledger.manifest().iter().map(|m| m.epoch).collect();
            // `begin_epoch(5)` ran before iteration 5's reductions, so
            // epochs {4, 5} remain.
            assert!(epochs.iter().all(|&e| e >= 4), "epochs kept: {epochs:?}");
            assert_eq!(epochs.len(), 2 * plan_len);
        }
    }
}

//! Deterministic synthetic data loading.
//!
//! The loader is *stateless-deterministic*: the minibatch for
//! `(seed, iteration, dp_replica)` is a pure function, so resuming from a
//! checkpointed iteration number reproduces exactly the data stream a
//! failure-free run would have seen — the data-side half of the paper's
//! semantics-preservation guarantee. Each data-parallel replica reads a
//! disjoint shard (different samples per replica, identical across reruns).

use simcore::rng::DetRng;

/// A synthetic classification minibatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Minibatch {
    /// Inputs, row-major `[batch × input_dim]`.
    pub inputs: Vec<f32>,
    /// Class labels as `f32` indices, `[batch]`.
    pub labels: Vec<f32>,
}

/// Deterministic synthetic data loader for one data-parallel replica.
#[derive(Debug, Clone)]
pub struct DataLoader {
    seed: u64,
    dp_replica: u64,
    batch: usize,
    input_dim: usize,
    classes: usize,
}

impl DataLoader {
    /// Creates a loader for one replica.
    pub fn new(
        seed: u64,
        dp_replica: usize,
        batch: usize,
        input_dim: usize,
        classes: usize,
    ) -> Self {
        DataLoader {
            seed,
            dp_replica: dp_replica as u64,
            batch,
            input_dim,
            classes,
        }
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The minibatch for `iteration` — a pure function of
    /// `(seed, iteration, replica)`.
    pub fn minibatch(&self, iteration: u64) -> Minibatch {
        // Separable stream per (replica, iteration).
        let root = DetRng::new(self.seed);
        let mut rng = root.derive(self.dp_replica.wrapping_mul(0x9E37_79B9) ^ iteration);
        let mut inputs = Vec::with_capacity(self.batch * self.input_dim);
        let mut labels = Vec::with_capacity(self.batch);
        for _ in 0..self.batch {
            // Inputs carry a weak class signal so training actually
            // reduces the loss (useful for "loss goes down" sanity tests).
            let label = rng.below(self.classes as u64) as usize;
            for d in 0..self.input_dim {
                let noise = rng.uniform_symmetric(1.0);
                let signal = if d % self.classes == label { 0.75 } else { 0.0 };
                inputs.push(noise + signal);
            }
            labels.push(label as f32);
        }
        Minibatch { inputs, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_coordinates_same_batch() {
        let l = DataLoader::new(7, 0, 4, 8, 3);
        assert_eq!(l.minibatch(5), l.minibatch(5));
    }

    #[test]
    fn different_iterations_differ() {
        let l = DataLoader::new(7, 0, 4, 8, 3);
        assert_ne!(l.minibatch(5), l.minibatch(6));
    }

    #[test]
    fn replicas_read_disjoint_shards() {
        let a = DataLoader::new(7, 0, 4, 8, 3);
        let b = DataLoader::new(7, 1, 4, 8, 3);
        assert_ne!(a.minibatch(0), b.minibatch(0));
    }

    #[test]
    fn shapes_are_correct() {
        let l = DataLoader::new(1, 0, 6, 10, 4);
        let mb = l.minibatch(0);
        assert_eq!(mb.inputs.len(), 60);
        assert_eq!(mb.labels.len(), 6);
        assert!(mb.labels.iter().all(|y| (0.0..4.0).contains(y)));
    }

    #[test]
    fn resume_reproduces_future_batches() {
        // Checkpoint semantics: knowing only (seed, iteration) reproduces
        // the stream.
        let l1 = DataLoader::new(42, 2, 4, 8, 3);
        let ahead: Vec<Minibatch> = (10..15).map(|i| l1.minibatch(i)).collect();
        let l2 = DataLoader::new(42, 2, 4, 8, 3);
        let resumed: Vec<Minibatch> = (10..15).map(|i| l2.minibatch(i)).collect();
        assert_eq!(ahead, resumed);
    }
}

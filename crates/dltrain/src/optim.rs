//! Optimizers: SGD with momentum, and Adam.
//!
//! Optimizer state (momentum / first and second moments) lives in
//! [`BufferTag::OptimState`] device buffers, making it part of the
//! persistent set that JIT checkpointing captures and replicas can
//! supply. The step launches one fused kernel per parameter — the short
//! mutation window at the end of the minibatch that the whole recovery
//! design is built around.

use crate::model::{alloc_buf, launch};
use proxy::Executor;
use simcore::SimResult;
use simgpu::{BufferId, BufferTag, KernelKind, StreamId};

/// Optimizer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
        /// Weight decay.
        weight_decay: f32,
    },
    /// Adam (decoupled weight decay).
    Adam {
        /// Learning rate.
        lr: f32,
        /// β₁.
        beta1: f32,
        /// β₂.
        beta2: f32,
        /// ε.
        eps: f32,
        /// Weight decay.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// Default SGD settings used in tests.
    pub fn sgd(lr: f32) -> Self {
        OptimizerKind::Sgd {
            lr,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }

    /// Default Adam settings used in tests.
    pub fn adam(lr: f32) -> Self {
        OptimizerKind::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }

    /// Bytes of optimizer state per parameter byte (1 slot for SGD, 2 for
    /// Adam) — used when sizing checkpoints analytically.
    pub fn state_slots(&self) -> usize {
        match self {
            OptimizerKind::Sgd { .. } => 1,
            OptimizerKind::Adam { .. } => 2,
        }
    }
}

#[derive(Debug, Clone)]
struct ParamState {
    param: BufferId,
    s1: BufferId,
    s2: Option<BufferId>,
}

/// Per-rank optimizer: one state entry per local parameter shard.
#[derive(Debug, Clone)]
pub struct RankOptimizer {
    kind: OptimizerKind,
    states: Vec<ParamState>,
    /// 1-based Adam timestep (part of checkpointed CPU state).
    pub t: u32,
}

impl RankOptimizer {
    /// Allocates optimizer state for `params` (`(buffer, elems, name)`).
    pub fn init<E: Executor>(
        exec: &mut E,
        kind: OptimizerKind,
        params: &[(BufferId, usize, String)],
        phantom_scale: f64,
    ) -> SimResult<RankOptimizer> {
        let mut states = Vec::with_capacity(params.len());
        for (param, elems, name) in params {
            let s1 = alloc_buf(
                exec,
                &format!("optim.{name}.s1"),
                *elems,
                phantom_scale,
                BufferTag::OptimState,
            )?;
            let s2 = match kind {
                OptimizerKind::Adam { .. } => Some(alloc_buf(
                    exec,
                    &format!("optim.{name}.s2"),
                    *elems,
                    phantom_scale,
                    BufferTag::OptimState,
                )?),
                OptimizerKind::Sgd { .. } => None,
            };
            states.push(ParamState {
                param: *param,
                s1,
                s2,
            });
        }
        Ok(RankOptimizer { kind, states, t: 0 })
    }

    /// Number of parameters managed.
    pub fn param_count(&self) -> usize {
        self.states.len()
    }

    /// Applies one optimizer step. `grads[i]` must be the gradient of the
    /// i-th registered parameter.
    pub fn step<E: Executor>(
        &mut self,
        exec: &mut E,
        stream: StreamId,
        grads: &[BufferId],
    ) -> SimResult<()> {
        if grads.len() != self.states.len() {
            return Err(simcore::SimError::Protocol(format!(
                "optimizer got {} grads for {} params",
                grads.len(),
                self.states.len()
            )));
        }
        self.t += 1;
        for (st, g) in self.states.iter().zip(grads) {
            let kernel = match self.kind {
                OptimizerKind::Sgd {
                    lr,
                    momentum,
                    weight_decay,
                } => KernelKind::SgdStep {
                    param: st.param,
                    grad: *g,
                    momentum: st.s1,
                    lr,
                    mu: momentum,
                    weight_decay,
                },
                OptimizerKind::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                    weight_decay,
                } => KernelKind::AdamStep {
                    param: st.param,
                    grad: *g,
                    m: st.s1,
                    v: st.s2.expect("adam state allocated"),
                    lr,
                    beta1,
                    beta2,
                    eps,
                    t: self.t,
                    weight_decay,
                },
            };
            launch(exec, stream, kernel)?;
        }
        Ok(())
    }
}

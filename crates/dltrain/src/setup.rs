//! Job setup: building the communicator structure for a parallel layout.
//!
//! The orchestrator (job launcher) derives every process group from the
//! world communicator with NCCL-style color/key splits
//! (`CommWorld::split_comm`) — one data-parallel group per
//! (stage, partition) cell, one tensor-parallel group per
//! (replica, stage), one pipeline group per (replica, partition) column —
//! and hands each rank its bundle. Splitting (rather than creating each
//! group from scratch) keeps the groups attached to their parent: abort
//! and fault injection propagate world→group, topology installed on the
//! world flows into every slice, and one world rendezvous bootstraps all
//! of them. The number of groups a rank participates in is what recovery
//! must tear down and rebuild (the dominant cost in Table 7).

use collectives::{CommWorld, Communicator, SplitKey};
use simcore::cost::CostModel;
use simcore::layout::{GridCoord, ParallelLayout};
use simcore::time::ClockBoard;
use simcore::RankId;
use std::sync::Arc;

/// The communicator bundle for one rank.
#[derive(Clone)]
pub struct JobComms {
    /// World group (all ranks): used for job-wide barriers.
    pub global: Arc<Communicator>,
    /// Additional framework process groups (Megatron/DeepSpeed create
    /// many specialized groups — embedding, grad-norm, … — that recovery
    /// must also tear down and re-create; they dominate Table 7).
    pub extras: Vec<Arc<Communicator>>,
    /// Data-parallel group of this rank's (stage, partition) cell, when
    /// `dp > 1`.
    pub dp: Option<Arc<Communicator>>,
    /// Tensor-parallel (or FSDP shard) group, when `tp > 1`.
    pub tp: Option<Arc<Communicator>>,
    /// Pipeline group — all stages of this rank's (replica, partition)
    /// column, in stage order — when `pp > 1` (stage-wide barriers,
    /// pipeline-flush coordination).
    pub pp: Option<Arc<Communicator>>,
    /// Previous pipeline stage peer (same replica & partition).
    pub prev: Option<RankId>,
    /// Next pipeline stage peer.
    pub next: Option<RankId>,
}

/// Everything the launcher builds before spawning rank threads.
pub struct JobSetup {
    /// The parallelism layout.
    pub layout: ParallelLayout,
    /// Shared clock board (one slot per rank).
    pub clock: Arc<ClockBoard>,
    /// The communication world.
    pub world: Arc<CommWorld>,
    /// Per-rank communicator bundles, indexed by rank.
    pub per_rank: Vec<JobComms>,
    /// GPUs per node (for same-node routing of p2p transfers).
    pub ranks_per_node: usize,
}

impl JobSetup {
    /// Builds the communicator structure for `layout`.
    pub fn build(layout: ParallelLayout, cost: CostModel, ranks_per_node: usize) -> JobSetup {
        Self::build_with_extras(layout, cost, ranks_per_node, 0)
    }

    /// Builds the communicator structure with `extras` additional
    /// framework process groups per rank (spanning the world group).
    pub fn build_with_extras(
        layout: ParallelLayout,
        cost: CostModel,
        ranks_per_node: usize,
        extras: usize,
    ) -> JobSetup {
        let n = layout.world_size();
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock.clone(), cost, ranks_per_node);
        let mut per_rank = build_comms(&layout, &world);
        let all: Vec<RankId> = (0..n).map(RankId::from).collect();
        let idx: Vec<usize> = (0..n).collect();
        for _ in 0..extras {
            let c = world.create_comm(all.clone(), idx.clone());
            for bundle in &mut per_rank {
                bundle.extras.push(c.clone());
            }
        }
        JobSetup {
            layout,
            clock,
            world,
            per_rank,
            ranks_per_node,
        }
    }

    /// True when two ranks share a node under contiguous rank→GPU
    /// placement.
    pub fn same_node(&self, a: RankId, b: RankId) -> bool {
        a.index() / self.ranks_per_node == b.index() / self.ranks_per_node
    }

    /// Total number of communicators a single rank participates in
    /// (world + dp + tp + pp) — the per-rank "recreate NCCL
    /// communicators" multiplier.
    pub fn comms_per_rank(&self, rank: RankId) -> usize {
        let c = &self.per_rank[rank.index()];
        1 + c.dp.is_some() as usize + c.tp.is_some() as usize + c.pp.is_some() as usize
    }
}

/// (Re)builds all communicators for `layout` on `world` and returns the
/// per-rank bundles. Also used by the recovery engine when rebuilding the
/// communication layer after `CommWorld::reset`.
///
/// Every group is an NCCL-style split of the world communicator: the
/// color names the group (which cell/slice it is), the key is the rank's
/// coordinate along the split axis, so member order inside each group is
/// the grid's canonical order.
pub fn build_comms(layout: &ParallelLayout, world: &Arc<CommWorld>) -> Vec<JobComms> {
    let n = layout.world_size();
    let all: Vec<RankId> = (0..n).map(RankId::from).collect();
    let idx: Vec<usize> = (0..n).collect();
    let global = world.create_comm(all, idx);
    let coords: Vec<GridCoord> = (0..n).map(|r| layout.coord(RankId::from(r))).collect();
    let split = |to_key: &dyn Fn(&GridCoord) -> (usize, usize)| {
        let keys: Vec<SplitKey> = coords
            .iter()
            .map(|c| {
                let (color, key) = to_key(c);
                SplitKey::new(color as i64, key)
            })
            .collect();
        world
            .split_comm(&global, &keys)
            .expect("one SplitKey per world member on a live parent")
    };
    // One dp group per (stage, part) cell, members ordered by replica.
    let dp_of = if layout.dp > 1 {
        split(&|c| (c.stage * layout.tp + c.part, c.dp))
    } else {
        vec![None; n]
    };
    // One tp group per (replica, stage), members ordered by partition.
    let tp_of = if layout.tp > 1 {
        split(&|c| (c.dp * layout.pp + c.stage, c.part))
    } else {
        vec![None; n]
    };
    // One pipeline group per (replica, part) column, members in stage
    // order.
    let pp_of = if layout.pp > 1 {
        split(&|c| (c.dp * layout.tp + c.part, c.stage))
    } else {
        vec![None; n]
    };
    (0..n)
        .map(|r| {
            let rank = RankId::from(r);
            let c = layout.coord(rank);
            let prev = (c.stage > 0).then(|| {
                layout.rank_at(simcore::layout::GridCoord {
                    dp: c.dp,
                    stage: c.stage - 1,
                    part: c.part,
                })
            });
            let next = (c.stage + 1 < layout.pp).then(|| {
                layout.rank_at(simcore::layout::GridCoord {
                    dp: c.dp,
                    stage: c.stage + 1,
                    part: c.part,
                })
            });
            JobComms {
                global: global.clone(),
                extras: Vec::new(),
                dp: dp_of[r].clone(),
                tp: tp_of[r].clone(),
                pp: pp_of[r].clone(),
                prev,
                next,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_dp_has_one_dp_group_no_tp() {
        let s = JobSetup::build(ParallelLayout::data_parallel(4), CostModel::v100(), 8);
        assert_eq!(s.world.live_comms(), 2); // world + 1 dp group
        for r in 0..4 {
            let c = &s.per_rank[r];
            assert!(c.dp.is_some());
            assert!(c.tp.is_none());
            assert!(c.prev.is_none() && c.next.is_none());
            assert_eq!(s.comms_per_rank(RankId(r as u32)), 2);
        }
    }

    #[test]
    fn three_d_builds_cells_and_chains() {
        let layout = ParallelLayout::three_d(2, 2, 2);
        let s = JobSetup::build(layout, CostModel::v100(), 8);
        // world + 4 dp cells + 4 tp groups + 4 pipeline columns.
        assert_eq!(s.world.live_comms(), 13);
        // Rank 0: dp=0, stage=0, part=0.
        let c = &s.per_rank[0];
        assert!(c.dp.is_some() && c.tp.is_some() && c.pp.is_some());
        assert_eq!(s.comms_per_rank(RankId(0)), 4);
        assert!(c.prev.is_none());
        assert_eq!(c.next, Some(RankId(2))); // stage 1, part 0, dp 0
                                             // Rank 2 (stage 1) has prev and no next.
        let c2 = &s.per_rank[2];
        assert_eq!(c2.prev, Some(RankId(0)));
        assert!(c2.next.is_none());
    }

    #[test]
    fn pp_groups_are_stage_ordered_columns() {
        let layout = ParallelLayout::three_d(2, 2, 2);
        let s = JobSetup::build(layout, CostModel::v100(), 8);
        // Rank 0 (dp=0, part=0): its pipeline column is stages 0 and 1 —
        // ranks 0 and 2 — in stage order.
        let pp = s.per_rank[0].pp.as_ref().unwrap();
        assert_eq!(pp.ranks(), &[RankId(0), RankId(2)]);
        // Both stages of the column share the same group instance.
        assert!(Arc::ptr_eq(pp, s.per_rank[2].pp.as_ref().unwrap()));
        // Pure-dp layouts have no pipeline groups.
        let flat = JobSetup::build(ParallelLayout::data_parallel(4), CostModel::v100(), 8);
        assert!(flat.per_rank[0].pp.is_none());
    }

    #[test]
    fn groups_are_children_of_the_world_comm() {
        // Splits (not fresh comms): aborting the world communicator must
        // take every derived group down with it.
        let layout = ParallelLayout::three_d(2, 2, 2);
        let s = JobSetup::build(layout, CostModel::v100(), 8);
        let c = &s.per_rank[0];
        c.global.abort();
        assert!(c.dp.as_ref().unwrap().is_aborted());
        assert!(c.tp.as_ref().unwrap().is_aborted());
        assert!(c.pp.as_ref().unwrap().is_aborted());
    }

    #[test]
    fn dp_groups_contain_exactly_the_cell_replicas() {
        let layout = ParallelLayout::three_d(2, 2, 1);
        let s = JobSetup::build(layout, CostModel::v100(), 8);
        let dp = s.per_rank[0].dp.as_ref().unwrap();
        assert_eq!(dp.ranks(), &[RankId(0), RankId(2)]);
    }

    #[test]
    fn same_node_uses_contiguous_placement() {
        let s = JobSetup::build(ParallelLayout::data_parallel(16), CostModel::v100(), 8);
        assert!(s.same_node(RankId(0), RankId(7)));
        assert!(!s.same_node(RankId(7), RankId(8)));
    }
}

//! Property-based tests for the training framework: determinism,
//! parallelism equivalences, and snapshot/resume exactness over
//! randomized configurations.

use cluster::FailureInjector;
use dltrain::{JobSetup, ModelConfig, OptimizerKind, RankTrainer, TrainConfig};
use proptest::prelude::*;
use proxy::DirectExecutor;
use simcore::cost::CostModel;
use simcore::layout::ParallelLayout;
use simcore::{GpuId, RankId};
use simgpu::Gpu;

fn run_job(cfg: TrainConfig, iters: u64) -> Vec<Vec<f32>> {
    run_job_bucketed(cfg, iters, None)
}

/// Like [`run_job`], but overriding the gradient-bucket threshold
/// (`Some(0)` selects the eager per-buffer reference path).
fn run_job_bucketed(cfg: TrainConfig, iters: u64, bucket_bytes: Option<u64>) -> Vec<Vec<f32>> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let results = dltrain::run_ranks(cfg.layout.world_size(), move |i| {
        let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
        let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
        let mut tr = RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
        if let Some(bytes) = bucket_bytes {
            tr.set_bucket_bytes(bytes);
        }
        tr.train(iters)
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

fn cfg_with(seed: u64, hidden: usize, blocks: usize, batch: usize, sgd: bool) -> TrainConfig {
    TrainConfig {
        layout: ParallelLayout::data_parallel(1),
        model: ModelConfig {
            input_dim: 8,
            hidden,
            blocks,
            classes: 4,
            phantom_scale: 1.0,
        },
        batch,
        optimizer: if sgd {
            OptimizerKind::sgd(0.05)
        } else {
            OptimizerKind::adam(0.005)
        },
        seed,
        ranks_per_node: 8,
        fsdp: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn training_is_bitwise_deterministic(
        seed in any::<u64>(),
        hidden in (1usize..4).prop_map(|k| k * 8),
        blocks in 1usize..3,
        batch in 2usize..6,
        sgd in any::<bool>(),
    ) {
        let cfg = cfg_with(seed, hidden, blocks, batch, sgd);
        let a = run_job(cfg.clone(), 4);
        let b = run_job(cfg, 4);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tensor_parallel_matches_single_rank(
        seed in any::<u64>(),
        tp in prop::sample::select(vec![2usize, 4]),
        sgd in any::<bool>(),
    ) {
        // Tensor-parallel partial sums associate differently from the
        // single-rank dot product, so cross-layout equality holds only up
        // to f32 rounding; *within* a layout all parts must agree
        // bit-for-bit (they perform identical reductions — this is the
        // redundancy recovery relies on).
        let base = cfg_with(seed, 16, 2, 4, sgd);
        let single = run_job(base.clone(), 4);
        let mut cfg = base;
        cfg.layout = ParallelLayout::three_d(1, 1, tp);
        let sharded = run_job(cfg, 4);
        for r in 1..tp {
            prop_assert_eq!(&sharded[r], &sharded[0], "part {} diverged from part 0", r);
        }
        for (a, b) in single[0].iter().zip(&sharded[0]) {
            prop_assert!(
                (a - b).abs() <= a.abs().max(1.0) * 1e-4,
                "cross-layout drift beyond rounding: {a} vs {b}"
            );
        }
    }

    #[test]
    fn fsdp_equals_plain_data_parallel(seed in any::<u64>(), shard in prop::sample::select(vec![2usize, 4])) {
        let mut dp = cfg_with(seed, 16, 2, 4, true);
        dp.layout = ParallelLayout::data_parallel(shard);
        let plain = run_job(dp.clone(), 4);
        let mut fsdp = cfg_with(seed, 16, 2, 4, true);
        fsdp.layout = ParallelLayout::three_d(1, 1, shard);
        fsdp.fsdp = true;
        let sharded = run_job(fsdp, 4);
        prop_assert_eq!(plain, sharded);
    }

    #[test]
    fn bucketed_overlap_matches_unbucketed(
        seed in any::<u64>(),
        dp in prop::sample::select(vec![2usize, 4]),
        sgd in any::<bool>(),
        fsdp in any::<bool>(),
        // From flush-per-gradient (1 byte) through partial fusion to
        // everything-in-one-bucket (well past this model's total bytes).
        bucket in prop::sample::select(vec![1u64, 512, 4 << 20]),
    ) {
        // Bucketing only changes *when* all-reduces launch, never the
        // rank-order summation inside each gradient — so model losses
        // must stay bit-identical to the eager per-buffer path.
        let mut cfg = cfg_with(seed, 16, 2, 4, sgd);
        if fsdp {
            cfg.layout = ParallelLayout::three_d(1, 1, dp);
            cfg.fsdp = true;
        } else {
            cfg.layout = ParallelLayout::data_parallel(dp);
        }
        let eager = run_job_bucketed(cfg.clone(), 4, Some(0));
        let bucketed = run_job_bucketed(cfg, 4, Some(bucket));
        prop_assert_eq!(eager, bucketed);
    }

    #[test]
    fn snapshot_resume_is_exact(seed in any::<u64>(), split in 1u64..5) {
        let cfg = cfg_with(seed, 16, 2, 4, false);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let exec = DirectExecutor::new(
            RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), setup.world.clone(),
        );
        let mut tr =
            RankTrainer::new(exec, cfg.clone(), &setup.per_rank[0], FailureInjector::none())
                .unwrap();
        tr.train(split).unwrap();
        let snap = tr.state_snapshot().unwrap();
        let ahead = tr.train(3).unwrap();

        let setup2 = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let exec2 = DirectExecutor::new(
            RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), setup2.world.clone(),
        );
        let mut tr2 =
            RankTrainer::new(exec2, cfg, &setup2.per_rank[0], FailureInjector::none()).unwrap();
        tr2.restore(&snap).unwrap();
        let resumed = tr2.train(3).unwrap();
        prop_assert_eq!(ahead, resumed);
    }
}

proptest! {
    #[test]
    fn dataloader_is_pure_and_sharded(
        seed in any::<u64>(),
        replica in 0usize..8,
        iteration in any::<u64>(),
    ) {
        let l = dltrain::DataLoader::new(seed, replica, 4, 8, 4);
        prop_assert_eq!(l.minibatch(iteration), l.minibatch(iteration));
        if replica > 0 {
            let other = dltrain::DataLoader::new(seed, replica - 1, 4, 8, 4);
            prop_assert_ne!(other.minibatch(iteration), l.minibatch(iteration));
        }
    }
}

//! A simulated GPU device layer — the CUDA substitute for the JIT
//! checkpointing reproduction.
//!
//! The paper's mechanisms live entirely at the device-API boundary:
//! interception of `cudaStreamWaitEvent`/`cudaEventRecord`, replay of
//! logged API calls, freeing of non-parameter buffers, re-creation of
//! streams/events, and error codes that poison a context. None of that
//! requires silicon — it requires *faithful API semantics*. This crate
//! provides them:
//!
//! * [`buffer`] — device memory with a real allocator, allocation-site
//!   identity (§4.3's call-stack-hash naming scheme), and buffer tags;
//! * [`stream`] — streams and events with per-stream virtual timelines and
//!   `stream_wait_event` ordering semantics;
//! * [`kernel`] — executable compute kernels (matmul, bias, relu, softmax
//!   cross-entropy, SGD/Adam, …) that really compute on `f32` data, plus
//!   FLOP counts feeding the cost model;
//! * [`device`] — the [`device::Gpu`] object tying it together, with an
//!   injectable [`health::GpuHealth`] state machine that reproduces
//!   transient, sticky, driver-corruption, and hard failure behaviours;
//! * [`api`] — the serializable [`api::DeviceCall`] surface that the device
//!   proxy logs and replays.

pub mod api;
pub mod buffer;
pub mod device;
pub mod health;
pub mod kernel;
pub mod stream;

pub use api::{CallResult, DeviceCall};
pub use buffer::{AllocSite, BufferId, BufferTag};
pub use device::Gpu;
pub use health::GpuHealth;
pub use kernel::KernelKind;
pub use stream::{EventId, StreamId};

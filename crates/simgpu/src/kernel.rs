//! Executable compute kernels.
//!
//! Kernels really compute on `f32` device buffers, which is what makes the
//! reproduction's correctness claims checkable: after any failure/recovery
//! sequence the training loss trajectory must match the failure-free run
//! bit-for-bit (§6.2 of the paper validates "exact floating point match").
//! Every kernel is deterministic (fixed iteration order, no atomics).
//!
//! Each kernel also reports a FLOP count so the cost model can time it at
//! the *logical* (paper-scale) size independent of the actual payload.

use crate::buffer::BufferId;
use simcore::codec::{Decode, Encode};
use simcore::{SimError, SimResult};

/// A compute kernel launch, as recorded in the device-API replay log.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelKind {
    /// `out[m×n] = op(a)[m×k] · op(b)[k×n]`, with optional transposes.
    MatMul {
        /// Left operand.
        a: BufferId,
        /// Right operand.
        b: BufferId,
        /// Output buffer.
        out: BufferId,
        /// Rows of the output.
        m: u32,
        /// Inner dimension.
        k: u32,
        /// Columns of the output.
        n: u32,
        /// Interpret `a` as transposed (stored `k×m`).
        trans_a: bool,
        /// Interpret `b` as transposed (stored `n×k`).
        trans_b: bool,
    },
    /// `x[r×c] += bias[c]` broadcast over rows, in place.
    BiasAdd {
        /// Activations, modified in place.
        x: BufferId,
        /// Bias vector.
        bias: BufferId,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// `dbias[c] = Σ_r dy[r×c]` (bias gradient; overwrites).
    BiasGrad {
        /// Upstream gradient.
        dy: BufferId,
        /// Output bias gradient.
        dbias: BufferId,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// `out = max(x, 0)`.
    Relu {
        /// Input.
        x: BufferId,
        /// Output.
        out: BufferId,
    },
    /// `dx = dy ⊙ (x > 0)`.
    ReluBwd {
        /// Forward input.
        x: BufferId,
        /// Upstream gradient.
        dy: BufferId,
        /// Output gradient.
        dx: BufferId,
    },
    /// Fused softmax + cross-entropy forward: writes per-row probabilities
    /// and the scalar mean loss.
    SoftmaxXentFwd {
        /// Logits `[rows × cols]`.
        logits: BufferId,
        /// Labels as class indices stored in `f32` (`[rows]`).
        labels: BufferId,
        /// Output probabilities `[rows × cols]`.
        probs: BufferId,
        /// Output scalar mean loss (`[1]`).
        loss: BufferId,
        /// Rows (batch).
        rows: u32,
        /// Columns (classes).
        cols: u32,
    },
    /// Softmax cross-entropy backward: `dlogits = (probs − onehot) / rows`.
    SoftmaxXentBwd {
        /// Probabilities from the forward pass.
        probs: BufferId,
        /// Labels.
        labels: BufferId,
        /// Output logit gradients.
        dlogits: BufferId,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// Layer normalization forward (per row): saves the row means and
    /// reciprocal standard deviations for the backward pass.
    LayerNormFwd {
        /// Input `[rows × cols]`.
        x: BufferId,
        /// Scale `γ` `[cols]`.
        gamma: BufferId,
        /// Shift `β` `[cols]`.
        beta: BufferId,
        /// Output `[rows × cols]`.
        out: BufferId,
        /// Saved row means `[rows]`.
        mean: BufferId,
        /// Saved row reciprocal standard deviations `[rows]`.
        rstd: BufferId,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// Layer normalization backward: writes `dx`, `dγ`, `dβ`.
    LayerNormBwd {
        /// Forward input.
        x: BufferId,
        /// Scale `γ`.
        gamma: BufferId,
        /// Upstream gradient.
        dy: BufferId,
        /// Saved row means.
        mean: BufferId,
        /// Saved row reciprocal standard deviations.
        rstd: BufferId,
        /// Output input-gradient.
        dx: BufferId,
        /// Output `γ` gradient (overwrites).
        dgamma: BufferId,
        /// Output `β` gradient (overwrites).
        dbeta: BufferId,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// `buf = 0`.
    Zero {
        /// Buffer to clear.
        buf: BufferId,
    },
    /// `buf = value` elementwise.
    Fill {
        /// Buffer to fill.
        buf: BufferId,
        /// Fill value.
        value: f32,
    },
    /// `y += alpha · x`.
    Axpy {
        /// Scale factor.
        alpha: f32,
        /// Source.
        x: BufferId,
        /// Destination (accumulated in place).
        y: BufferId,
    },
    /// `x *= alpha`.
    Scale {
        /// Scale factor.
        alpha: f32,
        /// Buffer scaled in place.
        x: BufferId,
    },
    /// SGD with momentum:
    /// `mom = mu·mom + grad + wd·param; param −= lr·mom`.
    SgdStep {
        /// Parameters (updated in place).
        param: BufferId,
        /// Gradients.
        grad: BufferId,
        /// Momentum state (updated in place).
        momentum: BufferId,
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        mu: f32,
        /// Weight decay.
        weight_decay: f32,
    },
    /// Adam step with bias correction (`t` is the 1-based step count).
    AdamStep {
        /// Parameters (updated in place).
        param: BufferId,
        /// Gradients.
        grad: BufferId,
        /// First-moment state.
        m: BufferId,
        /// Second-moment state.
        v: BufferId,
        /// Learning rate.
        lr: f32,
        /// β₁.
        beta1: f32,
        /// β₂.
        beta2: f32,
        /// ε.
        eps: f32,
        /// 1-based timestep for bias correction.
        t: u32,
        /// Weight decay (decoupled, AdamW-style).
        weight_decay: f32,
    },
}

impl KernelKind {
    /// FLOP count for the cost model, computed at logical scale via
    /// `scale`: the ratio of logical elements to actual payload elements
    /// (1.0 for unscaled buffers).
    pub fn flops(&self, scale: f64) -> f64 {
        let raw = match self {
            KernelKind::MatMul { m, k, n, .. } => 2.0 * *m as f64 * *k as f64 * *n as f64,
            KernelKind::BiasAdd { rows, cols, .. } => (*rows as f64) * (*cols as f64),
            KernelKind::BiasGrad { rows, cols, .. } => (*rows as f64) * (*cols as f64),
            KernelKind::Relu { .. } | KernelKind::ReluBwd { .. } => 1.0,
            KernelKind::SoftmaxXentFwd { rows, cols, .. } => 5.0 * (*rows as f64) * (*cols as f64),
            KernelKind::SoftmaxXentBwd { rows, cols, .. } => 2.0 * (*rows as f64) * (*cols as f64),
            KernelKind::LayerNormFwd { rows, cols, .. } => 8.0 * (*rows as f64) * (*cols as f64),
            KernelKind::LayerNormBwd { rows, cols, .. } => 14.0 * (*rows as f64) * (*cols as f64),
            KernelKind::Zero { .. } | KernelKind::Fill { .. } => 1.0,
            KernelKind::Axpy { .. } | KernelKind::Scale { .. } => 2.0,
            KernelKind::SgdStep { .. } => 6.0,
            KernelKind::AdamStep { .. } => 12.0,
        };
        raw * scale
    }

    /// All buffers this kernel reads or writes (used by replay validation
    /// and by tests asserting the log captures complete inputs).
    pub fn buffers(&self) -> Vec<BufferId> {
        match *self {
            KernelKind::MatMul { a, b, out, .. } => vec![a, b, out],
            KernelKind::BiasAdd { x, bias, .. } => vec![x, bias],
            KernelKind::BiasGrad { dy, dbias, .. } => vec![dy, dbias],
            KernelKind::Relu { x, out } => vec![x, out],
            KernelKind::ReluBwd { x, dy, dx } => vec![x, dy, dx],
            KernelKind::SoftmaxXentFwd {
                logits,
                labels,
                probs,
                loss,
                ..
            } => vec![logits, labels, probs, loss],
            KernelKind::SoftmaxXentBwd {
                probs,
                labels,
                dlogits,
                ..
            } => vec![probs, labels, dlogits],
            KernelKind::LayerNormFwd {
                x,
                gamma,
                beta,
                out,
                mean,
                rstd,
                ..
            } => vec![x, gamma, beta, out, mean, rstd],
            KernelKind::LayerNormBwd {
                x,
                gamma,
                dy,
                mean,
                rstd,
                dx,
                dgamma,
                dbeta,
                ..
            } => vec![x, gamma, dy, mean, rstd, dx, dgamma, dbeta],
            KernelKind::Zero { buf } | KernelKind::Fill { buf, .. } => vec![buf],
            KernelKind::Axpy { x, y, .. } => vec![x, y],
            KernelKind::Scale { x, .. } => vec![x],
            KernelKind::SgdStep {
                param,
                grad,
                momentum,
                ..
            } => vec![param, grad, momentum],
            KernelKind::AdamStep {
                param, grad, m, v, ..
            } => vec![param, grad, m, v],
        }
    }

    /// Buffers whose *contents* influence this kernel's outputs.
    ///
    /// `Zero` and `Fill` fetch their target only for its length, so the
    /// target is not a read: the stored result is independent of what the
    /// buffer held before. The log compactor relies on this split — an op
    /// may be dropped only when nothing downstream reads what it wrote.
    pub fn reads(&self) -> Vec<BufferId> {
        match *self {
            KernelKind::MatMul { a, b, .. } => vec![a, b],
            KernelKind::BiasAdd { x, bias, .. } => vec![x, bias],
            KernelKind::BiasGrad { dy, .. } => vec![dy],
            KernelKind::Relu { x, .. } => vec![x],
            KernelKind::ReluBwd { x, dy, .. } => vec![x, dy],
            KernelKind::SoftmaxXentFwd { logits, labels, .. } => vec![logits, labels],
            KernelKind::SoftmaxXentBwd { probs, labels, .. } => vec![probs, labels],
            KernelKind::LayerNormFwd { x, gamma, beta, .. } => vec![x, gamma, beta],
            KernelKind::LayerNormBwd {
                x,
                gamma,
                dy,
                mean,
                rstd,
                ..
            } => vec![x, gamma, dy, mean, rstd],
            KernelKind::Zero { .. } | KernelKind::Fill { .. } => vec![],
            KernelKind::Axpy { x, y, .. } => vec![x, y],
            KernelKind::Scale { x, .. } => vec![x],
            KernelKind::SgdStep {
                param,
                grad,
                momentum,
                ..
            } => vec![param, grad, momentum],
            KernelKind::AdamStep {
                param, grad, m, v, ..
            } => vec![param, grad, m, v],
        }
    }

    /// Buffers this kernel stores into. A written buffer whose id is not
    /// also in [`KernelKind::reads`] is fully determined by the kernel's
    /// inputs — the compactor treats it as an overwrite.
    pub fn writes(&self) -> Vec<BufferId> {
        match *self {
            KernelKind::MatMul { out, .. } => vec![out],
            KernelKind::BiasAdd { x, .. } => vec![x],
            KernelKind::BiasGrad { dbias, .. } => vec![dbias],
            KernelKind::Relu { out, .. } => vec![out],
            KernelKind::ReluBwd { dx, .. } => vec![dx],
            KernelKind::SoftmaxXentFwd { probs, loss, .. } => vec![probs, loss],
            KernelKind::SoftmaxXentBwd { dlogits, .. } => vec![dlogits],
            KernelKind::LayerNormFwd {
                out, mean, rstd, ..
            } => vec![out, mean, rstd],
            KernelKind::LayerNormBwd {
                dx, dgamma, dbeta, ..
            } => vec![dx, dgamma, dbeta],
            KernelKind::Zero { buf } | KernelKind::Fill { buf, .. } => vec![buf],
            KernelKind::Axpy { y, .. } => vec![y],
            KernelKind::Scale { x, .. } => vec![x],
            KernelKind::SgdStep {
                param, momentum, ..
            } => vec![param, momentum],
            KernelKind::AdamStep { param, m, v, .. } => vec![param, m, v],
        }
    }

    /// Executes the kernel against device memory.
    ///
    /// `fetch` clones a buffer's payload; `store` writes one back. The
    /// clone-based protocol keeps borrow handling trivial; payloads are
    /// laptop-sized by design (phantom scaling handles paper-scale sizes).
    pub fn execute(
        &self,
        fetch: &mut dyn FnMut(BufferId) -> SimResult<Vec<f32>>,
        store: &mut dyn FnMut(BufferId, Vec<f32>) -> SimResult<()>,
    ) -> SimResult<()> {
        match *self {
            KernelKind::MatMul {
                a,
                b,
                out,
                m,
                k,
                n,
                trans_a,
                trans_b,
            } => {
                let (m, k, n) = (m as usize, k as usize, n as usize);
                let av = fetch(a)?;
                let bv = fetch(b)?;
                if av.len() != m * k || bv.len() != k * n {
                    return Err(SimError::Protocol(format!(
                        "matmul shape mismatch: a={} (want {}), b={} (want {})",
                        av.len(),
                        m * k,
                        bv.len(),
                        k * n
                    )));
                }
                let mut o = vec![0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = 0f32;
                        for p in 0..k {
                            let x = if trans_a {
                                av[p * m + i]
                            } else {
                                av[i * k + p]
                            };
                            let y = if trans_b {
                                bv[j * k + p]
                            } else {
                                bv[p * n + j]
                            };
                            acc += x * y;
                        }
                        o[i * n + j] = acc;
                    }
                }
                store(out, o)
            }
            KernelKind::BiasAdd {
                x,
                bias,
                rows,
                cols,
            } => {
                let mut xv = fetch(x)?;
                let bv = fetch(bias)?;
                let (rows, cols) = (rows as usize, cols as usize);
                if xv.len() != rows * cols || bv.len() != cols {
                    return Err(SimError::Protocol("bias_add shape mismatch".into()));
                }
                for r in 0..rows {
                    for c in 0..cols {
                        xv[r * cols + c] += bv[c];
                    }
                }
                store(x, xv)
            }
            KernelKind::BiasGrad {
                dy,
                dbias,
                rows,
                cols,
            } => {
                let dyv = fetch(dy)?;
                let (rows, cols) = (rows as usize, cols as usize);
                if dyv.len() != rows * cols {
                    return Err(SimError::Protocol("bias_grad shape mismatch".into()));
                }
                let mut db = vec![0f32; cols];
                for r in 0..rows {
                    for c in 0..cols {
                        db[c] += dyv[r * cols + c];
                    }
                }
                store(dbias, db)
            }
            KernelKind::Relu { x, out } => {
                let xv = fetch(x)?;
                let o: Vec<f32> = xv.iter().map(|&v| v.max(0.0)).collect();
                store(out, o)
            }
            KernelKind::ReluBwd { x, dy, dx } => {
                let xv = fetch(x)?;
                let dyv = fetch(dy)?;
                if xv.len() != dyv.len() {
                    return Err(SimError::Protocol("relu_bwd shape mismatch".into()));
                }
                let o: Vec<f32> = xv
                    .iter()
                    .zip(&dyv)
                    .map(|(&xi, &gi)| if xi > 0.0 { gi } else { 0.0 })
                    .collect();
                store(dx, o)
            }
            KernelKind::SoftmaxXentFwd {
                logits,
                labels,
                probs,
                loss,
                rows,
                cols,
            } => {
                let lv = fetch(logits)?;
                let yv = fetch(labels)?;
                let (rows, cols) = (rows as usize, cols as usize);
                if lv.len() != rows * cols || yv.len() != rows {
                    return Err(SimError::Protocol("softmax_xent shape mismatch".into()));
                }
                let mut pv = vec![0f32; rows * cols];
                let mut total = 0f32;
                for r in 0..rows {
                    let row = &lv[r * cols..(r + 1) * cols];
                    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut denom = 0f32;
                    for c in 0..cols {
                        let e = (row[c] - mx).exp();
                        pv[r * cols + c] = e;
                        denom += e;
                    }
                    for c in 0..cols {
                        pv[r * cols + c] /= denom;
                    }
                    let label = yv[r] as usize;
                    if label >= cols {
                        return Err(SimError::Protocol(format!("label {label} out of range")));
                    }
                    total += -(pv[r * cols + label].max(1e-30)).ln();
                }
                store(probs, pv)?;
                store(loss, vec![total / rows as f32])
            }
            KernelKind::SoftmaxXentBwd {
                probs,
                labels,
                dlogits,
                rows,
                cols,
            } => {
                let pv = fetch(probs)?;
                let yv = fetch(labels)?;
                let (rows, cols) = (rows as usize, cols as usize);
                let mut dv = pv.clone();
                for r in 0..rows {
                    let label = yv[r] as usize;
                    dv[r * cols + label] -= 1.0;
                }
                let inv = 1.0 / rows as f32;
                for v in &mut dv {
                    *v *= inv;
                }
                store(dlogits, dv)
            }
            KernelKind::LayerNormFwd {
                x,
                gamma,
                beta,
                out,
                mean,
                rstd,
                rows,
                cols,
            } => {
                let xv = fetch(x)?;
                let g = fetch(gamma)?;
                let b = fetch(beta)?;
                let (rows, cols) = (rows as usize, cols as usize);
                if xv.len() != rows * cols || g.len() != cols || b.len() != cols {
                    return Err(SimError::Protocol("layernorm shape mismatch".into()));
                }
                const EPS: f32 = 1e-5;
                let mut o = vec![0f32; rows * cols];
                let mut mu = vec![0f32; rows];
                let mut rs = vec![0f32; rows];
                for r in 0..rows {
                    let row = &xv[r * cols..(r + 1) * cols];
                    let m = row.iter().sum::<f32>() / cols as f32;
                    let var = row.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / cols as f32;
                    let inv = 1.0 / (var + EPS).sqrt();
                    mu[r] = m;
                    rs[r] = inv;
                    for c in 0..cols {
                        o[r * cols + c] = (row[c] - m) * inv * g[c] + b[c];
                    }
                }
                store(out, o)?;
                store(mean, mu)?;
                store(rstd, rs)
            }
            KernelKind::LayerNormBwd {
                x,
                gamma,
                dy,
                mean,
                rstd,
                dx,
                dgamma,
                dbeta,
                rows,
                cols,
            } => {
                let xv = fetch(x)?;
                let g = fetch(gamma)?;
                let dyv = fetch(dy)?;
                let mu = fetch(mean)?;
                let rs = fetch(rstd)?;
                let (rows, cols) = (rows as usize, cols as usize);
                if xv.len() != rows * cols || dyv.len() != rows * cols {
                    return Err(SimError::Protocol("layernorm bwd shape mismatch".into()));
                }
                let mut dxv = vec![0f32; rows * cols];
                let mut dg = vec![0f32; cols];
                let mut db = vec![0f32; cols];
                for r in 0..rows {
                    let row = &xv[r * cols..(r + 1) * cols];
                    let dyr = &dyv[r * cols..(r + 1) * cols];
                    let inv = rs[r];
                    let m = mu[r];
                    // x̂ and dx̂ = dy ⊙ γ.
                    let mut sum_dxhat = 0f32;
                    let mut sum_dxhat_xhat = 0f32;
                    for c in 0..cols {
                        let xhat = (row[c] - m) * inv;
                        let dxhat = dyr[c] * g[c];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                        dg[c] += dyr[c] * xhat;
                        db[c] += dyr[c];
                    }
                    let n = cols as f32;
                    for c in 0..cols {
                        let xhat = (row[c] - m) * inv;
                        let dxhat = dyr[c] * g[c];
                        dxv[r * cols + c] =
                            inv * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
                    }
                }
                store(dx, dxv)?;
                store(dgamma, dg)?;
                store(dbeta, db)
            }
            KernelKind::Zero { buf } => {
                let len = fetch(buf)?.len();
                store(buf, vec![0f32; len])
            }
            KernelKind::Fill { buf, value } => {
                let len = fetch(buf)?.len();
                store(buf, vec![value; len])
            }
            KernelKind::Axpy { alpha, x, y } => {
                let xv = fetch(x)?;
                let mut yv = fetch(y)?;
                if xv.len() != yv.len() {
                    return Err(SimError::Protocol("axpy shape mismatch".into()));
                }
                for (yi, xi) in yv.iter_mut().zip(&xv) {
                    *yi += alpha * xi;
                }
                store(y, yv)
            }
            KernelKind::Scale { alpha, x } => {
                let mut xv = fetch(x)?;
                for v in &mut xv {
                    *v *= alpha;
                }
                store(x, xv)
            }
            KernelKind::SgdStep {
                param,
                grad,
                momentum,
                lr,
                mu,
                weight_decay,
            } => {
                let mut p = fetch(param)?;
                let g = fetch(grad)?;
                let mut mom = fetch(momentum)?;
                if p.len() != g.len() || p.len() != mom.len() {
                    return Err(SimError::Protocol("sgd shape mismatch".into()));
                }
                for i in 0..p.len() {
                    mom[i] = mu * mom[i] + g[i] + weight_decay * p[i];
                    p[i] -= lr * mom[i];
                }
                store(param, p)?;
                store(momentum, mom)
            }
            KernelKind::AdamStep {
                param,
                grad,
                m,
                v,
                lr,
                beta1,
                beta2,
                eps,
                t,
                weight_decay,
            } => {
                let mut p = fetch(param)?;
                let g = fetch(grad)?;
                let mut mv = fetch(m)?;
                let mut vv = fetch(v)?;
                if p.len() != g.len() || p.len() != mv.len() || p.len() != vv.len() {
                    return Err(SimError::Protocol("adam shape mismatch".into()));
                }
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for i in 0..p.len() {
                    mv[i] = beta1 * mv[i] + (1.0 - beta1) * g[i];
                    vv[i] = beta2 * vv[i] + (1.0 - beta2) * g[i] * g[i];
                    let mhat = mv[i] / bc1;
                    let vhat = vv[i] / bc2;
                    p[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * p[i]);
                }
                store(param, p)?;
                store(m, mv)?;
                store(v, vv)
            }
        }
    }
}

impl Encode for KernelKind {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match *self {
            KernelKind::MatMul {
                a,
                b,
                out,
                m,
                k,
                n,
                trans_a,
                trans_b,
            } => {
                0u8.encode(buf);
                a.encode(buf);
                b.encode(buf);
                out.encode(buf);
                m.encode(buf);
                k.encode(buf);
                n.encode(buf);
                trans_a.encode(buf);
                trans_b.encode(buf);
            }
            KernelKind::BiasAdd {
                x,
                bias,
                rows,
                cols,
            } => {
                1u8.encode(buf);
                x.encode(buf);
                bias.encode(buf);
                rows.encode(buf);
                cols.encode(buf);
            }
            KernelKind::BiasGrad {
                dy,
                dbias,
                rows,
                cols,
            } => {
                2u8.encode(buf);
                dy.encode(buf);
                dbias.encode(buf);
                rows.encode(buf);
                cols.encode(buf);
            }
            KernelKind::Relu { x, out } => {
                3u8.encode(buf);
                x.encode(buf);
                out.encode(buf);
            }
            KernelKind::ReluBwd { x, dy, dx } => {
                4u8.encode(buf);
                x.encode(buf);
                dy.encode(buf);
                dx.encode(buf);
            }
            KernelKind::SoftmaxXentFwd {
                logits,
                labels,
                probs,
                loss,
                rows,
                cols,
            } => {
                5u8.encode(buf);
                logits.encode(buf);
                labels.encode(buf);
                probs.encode(buf);
                loss.encode(buf);
                rows.encode(buf);
                cols.encode(buf);
            }
            KernelKind::SoftmaxXentBwd {
                probs,
                labels,
                dlogits,
                rows,
                cols,
            } => {
                6u8.encode(buf);
                probs.encode(buf);
                labels.encode(buf);
                dlogits.encode(buf);
                rows.encode(buf);
                cols.encode(buf);
            }
            KernelKind::Zero { buf: b } => {
                7u8.encode(buf);
                b.encode(buf);
            }
            KernelKind::LayerNormFwd {
                x,
                gamma,
                beta,
                out,
                mean,
                rstd,
                rows,
                cols,
            } => {
                13u8.encode(buf);
                x.encode(buf);
                gamma.encode(buf);
                beta.encode(buf);
                out.encode(buf);
                mean.encode(buf);
                rstd.encode(buf);
                rows.encode(buf);
                cols.encode(buf);
            }
            KernelKind::LayerNormBwd {
                x,
                gamma,
                dy,
                mean,
                rstd,
                dx,
                dgamma,
                dbeta,
                rows,
                cols,
            } => {
                14u8.encode(buf);
                x.encode(buf);
                gamma.encode(buf);
                dy.encode(buf);
                mean.encode(buf);
                rstd.encode(buf);
                dx.encode(buf);
                dgamma.encode(buf);
                dbeta.encode(buf);
                rows.encode(buf);
                cols.encode(buf);
            }
            KernelKind::Fill { buf: b, value } => {
                8u8.encode(buf);
                b.encode(buf);
                value.encode(buf);
            }
            KernelKind::Axpy { alpha, x, y } => {
                9u8.encode(buf);
                alpha.encode(buf);
                x.encode(buf);
                y.encode(buf);
            }
            KernelKind::Scale { alpha, x } => {
                10u8.encode(buf);
                alpha.encode(buf);
                x.encode(buf);
            }
            KernelKind::SgdStep {
                param,
                grad,
                momentum,
                lr,
                mu,
                weight_decay,
            } => {
                11u8.encode(buf);
                param.encode(buf);
                grad.encode(buf);
                momentum.encode(buf);
                lr.encode(buf);
                mu.encode(buf);
                weight_decay.encode(buf);
            }
            KernelKind::AdamStep {
                param,
                grad,
                m,
                v,
                lr,
                beta1,
                beta2,
                eps,
                t,
                weight_decay,
            } => {
                12u8.encode(buf);
                param.encode(buf);
                grad.encode(buf);
                m.encode(buf);
                v.encode(buf);
                lr.encode(buf);
                beta1.encode(buf);
                beta2.encode(buf);
                eps.encode(buf);
                t.encode(buf);
                weight_decay.encode(buf);
            }
        }
    }
}

impl Decode for KernelKind {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            0 => KernelKind::MatMul {
                a: BufferId::decode(buf)?,
                b: BufferId::decode(buf)?,
                out: BufferId::decode(buf)?,
                m: u32::decode(buf)?,
                k: u32::decode(buf)?,
                n: u32::decode(buf)?,
                trans_a: bool::decode(buf)?,
                trans_b: bool::decode(buf)?,
            },
            1 => KernelKind::BiasAdd {
                x: BufferId::decode(buf)?,
                bias: BufferId::decode(buf)?,
                rows: u32::decode(buf)?,
                cols: u32::decode(buf)?,
            },
            2 => KernelKind::BiasGrad {
                dy: BufferId::decode(buf)?,
                dbias: BufferId::decode(buf)?,
                rows: u32::decode(buf)?,
                cols: u32::decode(buf)?,
            },
            3 => KernelKind::Relu {
                x: BufferId::decode(buf)?,
                out: BufferId::decode(buf)?,
            },
            4 => KernelKind::ReluBwd {
                x: BufferId::decode(buf)?,
                dy: BufferId::decode(buf)?,
                dx: BufferId::decode(buf)?,
            },
            5 => KernelKind::SoftmaxXentFwd {
                logits: BufferId::decode(buf)?,
                labels: BufferId::decode(buf)?,
                probs: BufferId::decode(buf)?,
                loss: BufferId::decode(buf)?,
                rows: u32::decode(buf)?,
                cols: u32::decode(buf)?,
            },
            6 => KernelKind::SoftmaxXentBwd {
                probs: BufferId::decode(buf)?,
                labels: BufferId::decode(buf)?,
                dlogits: BufferId::decode(buf)?,
                rows: u32::decode(buf)?,
                cols: u32::decode(buf)?,
            },
            7 => KernelKind::Zero {
                buf: BufferId::decode(buf)?,
            },
            8 => KernelKind::Fill {
                buf: BufferId::decode(buf)?,
                value: f32::decode(buf)?,
            },
            9 => KernelKind::Axpy {
                alpha: f32::decode(buf)?,
                x: BufferId::decode(buf)?,
                y: BufferId::decode(buf)?,
            },
            10 => KernelKind::Scale {
                alpha: f32::decode(buf)?,
                x: BufferId::decode(buf)?,
            },
            11 => KernelKind::SgdStep {
                param: BufferId::decode(buf)?,
                grad: BufferId::decode(buf)?,
                momentum: BufferId::decode(buf)?,
                lr: f32::decode(buf)?,
                mu: f32::decode(buf)?,
                weight_decay: f32::decode(buf)?,
            },
            12 => KernelKind::AdamStep {
                param: BufferId::decode(buf)?,
                grad: BufferId::decode(buf)?,
                m: BufferId::decode(buf)?,
                v: BufferId::decode(buf)?,
                lr: f32::decode(buf)?,
                beta1: f32::decode(buf)?,
                beta2: f32::decode(buf)?,
                eps: f32::decode(buf)?,
                t: u32::decode(buf)?,
                weight_decay: f32::decode(buf)?,
            },
            13 => KernelKind::LayerNormFwd {
                x: BufferId::decode(buf)?,
                gamma: BufferId::decode(buf)?,
                beta: BufferId::decode(buf)?,
                out: BufferId::decode(buf)?,
                mean: BufferId::decode(buf)?,
                rstd: BufferId::decode(buf)?,
                rows: u32::decode(buf)?,
                cols: u32::decode(buf)?,
            },
            14 => KernelKind::LayerNormBwd {
                x: BufferId::decode(buf)?,
                gamma: BufferId::decode(buf)?,
                dy: BufferId::decode(buf)?,
                mean: BufferId::decode(buf)?,
                rstd: BufferId::decode(buf)?,
                dx: BufferId::decode(buf)?,
                dgamma: BufferId::decode(buf)?,
                dbeta: BufferId::decode(buf)?,
                rows: u32::decode(buf)?,
                cols: u32::decode(buf)?,
            },
            other => return Err(SimError::Codec(format!("bad kernel tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run(kernel: &KernelKind, mem: &mut HashMap<BufferId, Vec<f32>>) {
        let mem_ptr = std::cell::RefCell::new(mem);
        let mut fetch = |id: BufferId| {
            mem_ptr
                .borrow()
                .get(&id)
                .cloned()
                .ok_or_else(|| SimError::InvalidHandle(id.to_string()))
        };
        let mut store = |id: BufferId, data: Vec<f32>| {
            mem_ptr.borrow_mut().insert(id, data);
            Ok(())
        };
        kernel.execute(&mut fetch, &mut store).unwrap();
    }

    #[test]
    fn matmul_basic() {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), vec![1.0, 2.0, 3.0, 4.0]); // 2x2
        mem.insert(BufferId(1), vec![5.0, 6.0, 7.0, 8.0]); // 2x2
        mem.insert(BufferId(2), vec![0.0; 4]);
        run(
            &KernelKind::MatMul {
                a: BufferId(0),
                b: BufferId(1),
                out: BufferId(2),
                m: 2,
                k: 2,
                n: 2,
                trans_a: false,
                trans_b: false,
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(2)], vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposes() {
        let mut mem = HashMap::new();
        // a stored as k×m = 2×2: logical a = [[1,3],[2,4]].
        mem.insert(BufferId(0), vec![1.0, 2.0, 3.0, 4.0]);
        mem.insert(BufferId(1), vec![1.0, 0.0, 0.0, 1.0]);
        mem.insert(BufferId(2), vec![0.0; 4]);
        run(
            &KernelKind::MatMul {
                a: BufferId(0),
                b: BufferId(1),
                out: BufferId(2),
                m: 2,
                k: 2,
                n: 2,
                trans_a: true,
                trans_b: false,
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(2)], vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn softmax_xent_gradient_sums_to_zero_per_row() {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), vec![1.0, 2.0, 3.0, 0.5, 0.5, 0.5]); // 2x3 logits
        mem.insert(BufferId(1), vec![2.0, 0.0]); // labels
        mem.insert(BufferId(2), vec![0.0; 6]); // probs
        mem.insert(BufferId(3), vec![0.0]); // loss
        run(
            &KernelKind::SoftmaxXentFwd {
                logits: BufferId(0),
                labels: BufferId(1),
                probs: BufferId(2),
                loss: BufferId(3),
                rows: 2,
                cols: 3,
            },
            &mut mem,
        );
        let loss = mem[&BufferId(3)][0];
        assert!(loss > 0.0);
        // Row probabilities sum to 1.
        let p = mem[&BufferId(2)].clone();
        for r in 0..2 {
            let s: f32 = p[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        mem.insert(BufferId(4), vec![0.0; 6]);
        run(
            &KernelKind::SoftmaxXentBwd {
                probs: BufferId(2),
                labels: BufferId(1),
                dlogits: BufferId(4),
                rows: 2,
                cols: 3,
            },
            &mut mem,
        );
        let d = mem[&BufferId(4)].clone();
        for r in 0..2 {
            let s: f32 = d[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row grad sum {s}");
        }
    }

    #[test]
    fn adam_moves_params_against_gradient() {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), vec![1.0, -1.0]); // param
        mem.insert(BufferId(1), vec![0.5, -0.5]); // grad
        mem.insert(BufferId(2), vec![0.0, 0.0]); // m
        mem.insert(BufferId(3), vec![0.0, 0.0]); // v
        run(
            &KernelKind::AdamStep {
                param: BufferId(0),
                grad: BufferId(1),
                m: BufferId(2),
                v: BufferId(3),
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 1,
                weight_decay: 0.0,
            },
            &mut mem,
        );
        let p = mem[&BufferId(0)].clone();
        assert!(p[0] < 1.0);
        assert!(p[1] > -1.0);
        // Optimizer state must have been updated (JIT checkpointing cares
        // that this state is part of the persistent set).
        assert!(mem[&BufferId(2)][0] != 0.0);
        assert!(mem[&BufferId(3)][0] != 0.0);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), vec![0.0]);
        mem.insert(BufferId(1), vec![1.0]);
        mem.insert(BufferId(2), vec![0.0]);
        let k = KernelKind::SgdStep {
            param: BufferId(0),
            grad: BufferId(1),
            momentum: BufferId(2),
            lr: 0.1,
            mu: 0.9,
            weight_decay: 0.0,
        };
        run(&k, &mut mem);
        let p1 = mem[&BufferId(0)][0];
        run(&k, &mut mem);
        let p2 = mem[&BufferId(0)][0];
        // Second step moves further due to momentum.
        assert!((p2 - p1).abs() > p1.abs());
    }

    #[test]
    fn relu_roundtrip_gradients() {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), vec![-1.0, 2.0, -3.0, 4.0]);
        mem.insert(BufferId(1), vec![0.0; 4]);
        run(
            &KernelKind::Relu {
                x: BufferId(0),
                out: BufferId(1),
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(1)], vec![0.0, 2.0, 0.0, 4.0]);
        mem.insert(BufferId(2), vec![1.0; 4]);
        mem.insert(BufferId(3), vec![0.0; 4]);
        run(
            &KernelKind::ReluBwd {
                x: BufferId(0),
                dy: BufferId(2),
                dx: BufferId(3),
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(3)], vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_fill_axpy_scale() {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), vec![1.0, 2.0]);
        mem.insert(BufferId(1), vec![10.0, 20.0]);
        run(
            &KernelKind::Axpy {
                alpha: 2.0,
                x: BufferId(0),
                y: BufferId(1),
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(1)], vec![12.0, 24.0]);
        run(
            &KernelKind::Scale {
                alpha: 0.5,
                x: BufferId(1),
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(1)], vec![6.0, 12.0]);
        run(&KernelKind::Zero { buf: BufferId(1) }, &mut mem);
        assert_eq!(mem[&BufferId(1)], vec![0.0, 0.0]);
        run(
            &KernelKind::Fill {
                buf: BufferId(1),
                value: 3.0,
            },
            &mut mem,
        );
        assert_eq!(mem[&BufferId(1)], vec![3.0, 3.0]);
    }

    #[test]
    fn kernel_codec_round_trip() {
        use simcore::codec::{decode_framed, encode_framed};
        let kernels = vec![
            KernelKind::MatMul {
                a: BufferId(1),
                b: BufferId(2),
                out: BufferId(3),
                m: 4,
                k: 5,
                n: 6,
                trans_a: true,
                trans_b: false,
            },
            KernelKind::AdamStep {
                param: BufferId(1),
                grad: BufferId(2),
                m: BufferId(3),
                v: BufferId(4),
                lr: 1e-3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 7,
                weight_decay: 0.01,
            },
            KernelKind::Zero { buf: BufferId(9) },
        ];
        for k in kernels {
            let framed = encode_framed(&k);
            let back: KernelKind = decode_framed(&framed).unwrap();
            assert_eq!(back, k);
        }
    }

    #[test]
    fn reads_writes_partition_buffers() {
        let b = BufferId;
        let all = vec![
            KernelKind::MatMul {
                a: b(1),
                b: b(2),
                out: b(3),
                m: 2,
                k: 2,
                n: 2,
                trans_a: false,
                trans_b: false,
            },
            KernelKind::BiasAdd {
                x: b(1),
                bias: b(2),
                rows: 1,
                cols: 1,
            },
            KernelKind::BiasGrad {
                dy: b(1),
                dbias: b(2),
                rows: 1,
                cols: 1,
            },
            KernelKind::Relu { x: b(1), out: b(2) },
            KernelKind::ReluBwd {
                x: b(1),
                dy: b(2),
                dx: b(3),
            },
            KernelKind::SoftmaxXentFwd {
                logits: b(1),
                labels: b(2),
                probs: b(3),
                loss: b(4),
                rows: 1,
                cols: 1,
            },
            KernelKind::SoftmaxXentBwd {
                probs: b(1),
                labels: b(2),
                dlogits: b(3),
                rows: 1,
                cols: 1,
            },
            KernelKind::LayerNormFwd {
                x: b(1),
                gamma: b(2),
                beta: b(3),
                out: b(4),
                mean: b(5),
                rstd: b(6),
                rows: 1,
                cols: 1,
            },
            KernelKind::LayerNormBwd {
                x: b(1),
                gamma: b(2),
                dy: b(3),
                mean: b(4),
                rstd: b(5),
                dx: b(6),
                dgamma: b(7),
                dbeta: b(8),
                rows: 1,
                cols: 1,
            },
            KernelKind::Zero { buf: b(1) },
            KernelKind::Fill {
                buf: b(1),
                value: 1.0,
            },
            KernelKind::Axpy {
                alpha: 1.0,
                x: b(1),
                y: b(2),
            },
            KernelKind::Scale {
                alpha: 1.0,
                x: b(1),
            },
            KernelKind::SgdStep {
                param: b(1),
                grad: b(2),
                momentum: b(3),
                lr: 0.1,
                mu: 0.9,
                weight_decay: 0.0,
            },
            KernelKind::AdamStep {
                param: b(1),
                grad: b(2),
                m: b(3),
                v: b(4),
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.99,
                eps: 1e-8,
                t: 1,
                weight_decay: 0.0,
            },
        ];
        for k in &all {
            let mut union: Vec<BufferId> = k.reads();
            union.extend(k.writes());
            union.sort_by_key(|id| id.0);
            union.dedup();
            let mut declared = k.buffers();
            declared.sort_by_key(|id| id.0);
            declared.dedup();
            assert_eq!(union, declared, "reads ∪ writes ≠ buffers for {k:?}");
            assert!(!k.writes().is_empty(), "every kernel writes: {k:?}");
        }
    }

    #[test]
    fn flops_scale_with_phantom_factor() {
        let k = KernelKind::MatMul {
            a: BufferId(0),
            b: BufferId(1),
            out: BufferId(2),
            m: 10,
            k: 10,
            n: 10,
            trans_a: false,
            trans_b: false,
        };
        assert!((k.flops(1.0) - 2000.0).abs() < 1e-9);
        assert!((k.flops(100.0) - 200_000.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod layernorm_tests {
    use super::*;
    use std::collections::HashMap;

    fn run(kernel: &KernelKind, mem: &mut HashMap<BufferId, Vec<f32>>) {
        let mem_ptr = std::cell::RefCell::new(mem);
        let mut fetch = |id: BufferId| {
            mem_ptr
                .borrow()
                .get(&id)
                .cloned()
                .ok_or_else(|| SimError::InvalidHandle(id.to_string()))
        };
        let mut store = |id: BufferId, data: Vec<f32>| {
            mem_ptr.borrow_mut().insert(id, data);
            Ok(())
        };
        kernel.execute(&mut fetch, &mut store).unwrap();
    }

    fn ln_forward(x: &[f32], g: &[f32], b: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), x.to_vec());
        mem.insert(BufferId(1), g.to_vec());
        mem.insert(BufferId(2), b.to_vec());
        mem.insert(BufferId(3), vec![0.0; rows * cols]);
        mem.insert(BufferId(4), vec![0.0; rows]);
        mem.insert(BufferId(5), vec![0.0; rows]);
        run(
            &KernelKind::LayerNormFwd {
                x: BufferId(0),
                gamma: BufferId(1),
                beta: BufferId(2),
                out: BufferId(3),
                mean: BufferId(4),
                rstd: BufferId(5),
                rows: rows as u32,
                cols: cols as u32,
            },
            &mut mem,
        );
        mem[&BufferId(3)].clone()
    }

    #[test]
    fn layernorm_output_has_zero_mean_unit_variance() {
        let x = vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 4.0];
        let out = ln_forward(&x, &[1.0; 4], &[0.0; 4], 2, 4);
        for r in 0..2 {
            let row = &out[r * 4..(r + 1) * 4];
            let m: f32 = row.iter().sum::<f32>() / 4.0;
            let v: f32 = row.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn layernorm_gamma_beta_apply_affine() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let plain = ln_forward(&x, &[1.0; 4], &[0.0; 4], 1, 4);
        let scaled = ln_forward(&x, &[2.0; 4], &[0.5; 4], 1, 4);
        for (p, s) in plain.iter().zip(&scaled) {
            assert!((s - (2.0 * p + 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_backward_matches_finite_differences() {
        // Scalar objective L = Σ w ⊙ LN(x); check dL/dx, dL/dγ, dL/dβ
        // against central differences.
        let rows = 2usize;
        let cols = 4usize;
        let x: Vec<f32> = vec![0.5, -1.0, 2.0, 0.25, 1.5, 0.0, -0.75, 1.0];
        let g: Vec<f32> = vec![1.2, 0.8, -0.5, 1.0];
        let b: Vec<f32> = vec![0.1, -0.2, 0.3, 0.0];
        let w: Vec<f32> = vec![1.0, -2.0, 0.5, 1.5, -1.0, 2.0, 0.25, -0.5];
        let loss = |x: &[f32], g: &[f32], b: &[f32]| -> f64 {
            ln_forward(x, g, b, rows, cols)
                .iter()
                .zip(&w)
                .map(|(o, wi)| (*o as f64) * (*wi as f64))
                .sum()
        };
        // Analytic gradients.
        let mut mem = HashMap::new();
        mem.insert(BufferId(0), x.clone());
        mem.insert(BufferId(1), g.clone());
        mem.insert(BufferId(2), b.clone());
        mem.insert(BufferId(3), vec![0.0; rows * cols]);
        mem.insert(BufferId(4), vec![0.0; rows]);
        mem.insert(BufferId(5), vec![0.0; rows]);
        run(
            &KernelKind::LayerNormFwd {
                x: BufferId(0),
                gamma: BufferId(1),
                beta: BufferId(2),
                out: BufferId(3),
                mean: BufferId(4),
                rstd: BufferId(5),
                rows: rows as u32,
                cols: cols as u32,
            },
            &mut mem,
        );
        mem.insert(BufferId(6), w.clone()); // dy = w
        mem.insert(BufferId(7), vec![0.0; rows * cols]);
        mem.insert(BufferId(8), vec![0.0; cols]);
        mem.insert(BufferId(9), vec![0.0; cols]);
        run(
            &KernelKind::LayerNormBwd {
                x: BufferId(0),
                gamma: BufferId(1),
                dy: BufferId(6),
                mean: BufferId(4),
                rstd: BufferId(5),
                dx: BufferId(7),
                dgamma: BufferId(8),
                dbeta: BufferId(9),
                rows: rows as u32,
                cols: cols as u32,
            },
            &mut mem,
        );
        let eps = 1e-3f32;
        let check = |analytic: &[f32], mut perturb: Box<dyn FnMut(usize, f32) -> f64>| {
            for (i, a) in analytic.iter().enumerate() {
                let plus = perturb(i, eps);
                let minus = perturb(i, -eps);
                let numeric = (plus - minus) / (2.0 * eps as f64);
                assert!(
                    (numeric - *a as f64).abs() < 2e-2_f64.max(numeric.abs() * 0.02),
                    "idx {i}: analytic {a} vs numeric {numeric}"
                );
            }
        };
        let dx = mem[&BufferId(7)].clone();
        let (x2, g2, b2) = (x.clone(), g.clone(), b.clone());
        check(
            &dx,
            Box::new(move |i, d| {
                let mut xp = x2.clone();
                xp[i] += d;
                loss(&xp, &g2, &b2)
            }),
        );
        let dg = mem[&BufferId(8)].clone();
        let (x3, g3, b3) = (x.clone(), g.clone(), b.clone());
        check(
            &dg,
            Box::new(move |i, d| {
                let mut gp = g3.clone();
                gp[i] += d;
                loss(&x3, &gp, &b3)
            }),
        );
        let db = mem[&BufferId(9)].clone();
        check(
            &db,
            Box::new(move |i, d| {
                let mut bp = b.clone();
                bp[i] += d;
                loss(&x, &g, &bp)
            }),
        );
    }

    #[test]
    fn layernorm_codec_round_trip() {
        use simcore::codec::{decode_framed, encode_framed};
        let k = KernelKind::LayerNormBwd {
            x: BufferId(1),
            gamma: BufferId(2),
            dy: BufferId(3),
            mean: BufferId(4),
            rstd: BufferId(5),
            dx: BufferId(6),
            dgamma: BufferId(7),
            dbeta: BufferId(8),
            rows: 3,
            cols: 9,
        };
        let framed = encode_framed(&k);
        let back: KernelKind = decode_framed(&framed).unwrap();
        assert_eq!(back, k);
    }
}

//! Streams and events with virtual timelines.
//!
//! Deep learning frameworks overlap computation and communication by
//! scheduling kernels on separate streams and ordering them with
//! `cudaEventRecord` / `cudaStreamWaitEvent` (Figure 3 of the paper). The
//! hang-detection watch-list is built exactly from those two calls, so the
//! simulated device reproduces their semantics:
//!
//! * each stream carries a `ready_at` virtual time — when its last
//!   enqueued operation completes;
//! * recording an event stamps it with the stream's `ready_at`;
//! * `stream_wait_event` raises the waiting stream's timeline to the
//!   event's stamp (device-side ordering without blocking the CPU).

use serde::{Deserialize, Serialize};
use simcore::codec::{Decode, Encode};
use simcore::{SimResult, SimTime};
use std::fmt;

/// Handle to a device stream (virtualized by the proxy layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub u64);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Handle to a device event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event{}", self.0)
    }
}

impl Encode for StreamId {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.0.encode(buf);
    }
}

impl Decode for StreamId {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        Ok(StreamId(u64::decode(buf)?))
    }
}

impl Encode for EventId {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.0.encode(buf);
    }
}

impl Decode for EventId {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        Ok(EventId(u64::decode(buf)?))
    }
}

/// A device stream: an ordered virtual timeline of enqueued work.
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// Handle.
    pub id: StreamId,
    /// Virtual completion time of the last enqueued operation.
    pub ready_at: SimTime,
    /// Number of operations enqueued so far (diagnostics / tests).
    pub ops_enqueued: u64,
}

impl Stream {
    /// Creates an idle stream.
    pub fn new(id: StreamId) -> Self {
        Stream {
            id,
            ready_at: SimTime::ZERO,
            ops_enqueued: 0,
        }
    }

    /// Enqueues work of duration `cost` starting no earlier than `now`,
    /// returning the operation's completion time.
    pub fn enqueue(&mut self, now: SimTime, cost: SimTime) -> SimTime {
        self.ready_at = self.ready_at.max(now) + cost;
        self.ops_enqueued += 1;
        self.ready_at
    }

    /// Makes this stream wait for `event_time` (the `cudaStreamWaitEvent`
    /// semantic): its timeline cannot progress past work ordered before
    /// the event completes.
    pub fn wait_event(&mut self, event_time: SimTime) {
        self.ready_at = self.ready_at.max(event_time);
    }
}

/// A device event: unrecorded, or stamped with a completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Handle.
    pub id: EventId,
    /// Completion time of the work preceding the record, if recorded.
    pub recorded_at: Option<SimTime>,
}

impl Event {
    /// Creates an unrecorded event.
    pub fn new(id: EventId) -> Self {
        Event {
            id,
            recorded_at: None,
        }
    }

    /// True once recorded (the simulated device completes enqueued work
    /// eagerly, so a recorded event has always "fired"; hangs are modelled
    /// at the collective layer where they actually happen).
    pub fn is_complete(&self) -> bool {
        self.recorded_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_serializes_work_on_a_stream() {
        let mut s = Stream::new(StreamId(0));
        let t1 = s.enqueue(SimTime::ZERO, SimTime::from_millis(10.0));
        let t2 = s.enqueue(SimTime::ZERO, SimTime::from_millis(5.0));
        assert!((t1.as_millis() - 10.0).abs() < 1e-9);
        assert!((t2.as_millis() - 15.0).abs() < 1e-9);
        assert_eq!(s.ops_enqueued, 2);
    }

    #[test]
    fn enqueue_cannot_start_before_now() {
        let mut s = Stream::new(StreamId(0));
        let t = s.enqueue(SimTime::from_secs(2.0), SimTime::from_secs(1.0));
        assert!((t.as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wait_event_raises_timeline() {
        let mut compute = Stream::new(StreamId(0));
        let mut comm = Stream::new(StreamId(1));
        // Figure 3 pattern: all-reduce on comm stream, optimizer on compute
        // stream must wait for it.
        comm.enqueue(SimTime::ZERO, SimTime::from_millis(50.0));
        let mut ev = Event::new(EventId(0));
        ev.recorded_at = Some(comm.ready_at);
        compute.enqueue(SimTime::ZERO, SimTime::from_millis(10.0));
        compute.wait_event(ev.recorded_at.unwrap());
        let opt_done = compute.enqueue(SimTime::ZERO, SimTime::from_millis(5.0));
        assert!((opt_done.as_millis() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn unrecorded_event_is_incomplete() {
        let ev = Event::new(EventId(3));
        assert!(!ev.is_complete());
    }
}

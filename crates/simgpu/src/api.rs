//! The device API surface — the simulated equivalent of the CUDA runtime
//! API that the device proxy intercepts, logs, and replays.
//!
//! Every call is serializable with the workspace codec because the
//! transparent JIT design (§4.1) *logs all device APIs along with their
//! input values* into the replay log; checkpointing that log (and the CRIU
//! image containing it) requires a stable wire format.

use crate::buffer::{AllocSite, BufferId, BufferTag};
use crate::kernel::KernelKind;
use crate::stream::{EventId, StreamId};
use simcore::codec::{Decode, Encode};
use simcore::{SimError, SimResult};

/// One device API call (CUDA-runtime equivalent).
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceCall {
    /// `cudaMalloc`: allocate `elems` floats with a logical byte size for
    /// the cost model and an allocation-site identity.
    Malloc {
        /// Allocation-site identity (stable across replicas).
        site: AllocSite,
        /// Actual payload element count.
        elems: u64,
        /// Logical size in bytes for timing (phantom scaling).
        logical_bytes: u64,
        /// Buffer class.
        tag: BufferTag,
    },
    /// `cudaFree`. The device defers reclamation to the next minibatch
    /// commit so that a reset-to-minibatch-start can resurrect the buffer.
    Free {
        /// Buffer to free.
        buf: BufferId,
    },
    /// Host→device copy carrying the payload (logged with its input data,
    /// which is how replay re-supplies minibatch inputs).
    Upload {
        /// Destination buffer.
        buf: BufferId,
        /// Payload.
        data: Vec<f32>,
    },
    /// Device→host copy; returns the payload.
    Download {
        /// Source buffer.
        buf: BufferId,
    },
    /// Device→device copy.
    CopyD2D {
        /// Source.
        src: BufferId,
        /// Destination.
        dst: BufferId,
    },
    /// Kernel launch on a stream.
    Launch {
        /// Target stream.
        stream: StreamId,
        /// Kernel and arguments.
        kernel: KernelKind,
    },
    /// `cudaStreamCreate`.
    StreamCreate,
    /// `cudaStreamDestroy`.
    StreamDestroy {
        /// Stream to destroy.
        stream: StreamId,
    },
    /// `cudaEventCreate`.
    EventCreate,
    /// `cudaEventDestroy`.
    EventDestroy {
        /// Event to destroy.
        event: EventId,
    },
    /// `cudaEventRecord`.
    EventRecord {
        /// Stream whose timeline stamps the event.
        stream: StreamId,
        /// Event to record.
        event: EventId,
    },
    /// `cudaStreamWaitEvent` — the call the user-level interception layer
    /// watches to build its hang-detection watch-list (§3.1).
    StreamWaitEvent {
        /// Waiting stream.
        stream: StreamId,
        /// Event waited on.
        event: EventId,
    },
    /// `cudaEventQuery`.
    EventQuery {
        /// Event queried.
        event: EventId,
    },
    /// `cudaStreamSynchronize`.
    StreamSync {
        /// Stream to drain.
        stream: StreamId,
    },
    /// `cudaDeviceSynchronize`.
    DeviceSync,
}

impl DeviceCall {
    /// True for calls that create a device object whose handle is returned
    /// to the application — these are the calls recovery must *re-execute*
    /// to recreate GPU objects, remapping virtual handles (§4.2.1).
    pub fn creates_object(&self) -> bool {
        matches!(
            self,
            DeviceCall::Malloc { .. } | DeviceCall::StreamCreate | DeviceCall::EventCreate
        )
    }

    /// True for calls that mutate device *memory contents* (must be part
    /// of the replay log for state reconstruction).
    pub fn mutates_memory(&self) -> bool {
        matches!(
            self,
            DeviceCall::Upload { .. } | DeviceCall::CopyD2D { .. } | DeviceCall::Launch { .. }
        )
    }

    /// Short name for diagnostics and recovery reports.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceCall::Malloc { .. } => "Malloc",
            DeviceCall::Free { .. } => "Free",
            DeviceCall::Upload { .. } => "Upload",
            DeviceCall::Download { .. } => "Download",
            DeviceCall::CopyD2D { .. } => "CopyD2D",
            DeviceCall::Launch { .. } => "Launch",
            DeviceCall::StreamCreate => "StreamCreate",
            DeviceCall::StreamDestroy { .. } => "StreamDestroy",
            DeviceCall::EventCreate => "EventCreate",
            DeviceCall::EventDestroy { .. } => "EventDestroy",
            DeviceCall::EventRecord { .. } => "EventRecord",
            DeviceCall::StreamWaitEvent { .. } => "StreamWaitEvent",
            DeviceCall::EventQuery { .. } => "EventQuery",
            DeviceCall::StreamSync { .. } => "StreamSync",
            DeviceCall::DeviceSync => "DeviceSync",
        }
    }
}

/// Result of a device API call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallResult {
    /// No payload.
    None,
    /// A newly allocated buffer handle.
    Buffer(BufferId),
    /// A newly created stream handle.
    Stream(StreamId),
    /// A newly created event handle.
    Event(EventId),
    /// Downloaded data.
    Data(Vec<f32>),
    /// Boolean (event query).
    Bool(bool),
}

impl CallResult {
    /// Extracts a buffer handle or errors.
    pub fn buffer(self) -> SimResult<BufferId> {
        match self {
            CallResult::Buffer(b) => Ok(b),
            other => Err(SimError::Protocol(format!(
                "expected buffer, got {other:?}"
            ))),
        }
    }

    /// Extracts a stream handle or errors.
    pub fn stream(self) -> SimResult<StreamId> {
        match self {
            CallResult::Stream(s) => Ok(s),
            other => Err(SimError::Protocol(format!(
                "expected stream, got {other:?}"
            ))),
        }
    }

    /// Extracts an event handle or errors.
    pub fn event(self) -> SimResult<EventId> {
        match self {
            CallResult::Event(e) => Ok(e),
            other => Err(SimError::Protocol(format!("expected event, got {other:?}"))),
        }
    }

    /// Extracts downloaded data or errors.
    pub fn data(self) -> SimResult<Vec<f32>> {
        match self {
            CallResult::Data(d) => Ok(d),
            other => Err(SimError::Protocol(format!("expected data, got {other:?}"))),
        }
    }
}

impl Encode for DeviceCall {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            DeviceCall::Malloc {
                site,
                elems,
                logical_bytes,
                tag,
            } => {
                0u8.encode(buf);
                site.encode(buf);
                elems.encode(buf);
                logical_bytes.encode(buf);
                tag.encode(buf);
            }
            DeviceCall::Free { buf: b } => {
                1u8.encode(buf);
                b.encode(buf);
            }
            DeviceCall::Upload { buf: b, data } => {
                2u8.encode(buf);
                b.encode(buf);
                data.encode(buf);
            }
            DeviceCall::Download { buf: b } => {
                3u8.encode(buf);
                b.encode(buf);
            }
            DeviceCall::CopyD2D { src, dst } => {
                4u8.encode(buf);
                src.encode(buf);
                dst.encode(buf);
            }
            DeviceCall::Launch { stream, kernel } => {
                5u8.encode(buf);
                stream.encode(buf);
                kernel.encode(buf);
            }
            DeviceCall::StreamCreate => 6u8.encode(buf),
            DeviceCall::StreamDestroy { stream } => {
                7u8.encode(buf);
                stream.encode(buf);
            }
            DeviceCall::EventCreate => 8u8.encode(buf),
            DeviceCall::EventDestroy { event } => {
                9u8.encode(buf);
                event.encode(buf);
            }
            DeviceCall::EventRecord { stream, event } => {
                10u8.encode(buf);
                stream.encode(buf);
                event.encode(buf);
            }
            DeviceCall::StreamWaitEvent { stream, event } => {
                11u8.encode(buf);
                stream.encode(buf);
                event.encode(buf);
            }
            DeviceCall::EventQuery { event } => {
                12u8.encode(buf);
                event.encode(buf);
            }
            DeviceCall::StreamSync { stream } => {
                13u8.encode(buf);
                stream.encode(buf);
            }
            DeviceCall::DeviceSync => 14u8.encode(buf),
        }
    }
}

impl Decode for DeviceCall {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            0 => DeviceCall::Malloc {
                site: AllocSite::decode(buf)?,
                elems: u64::decode(buf)?,
                logical_bytes: u64::decode(buf)?,
                tag: BufferTag::decode(buf)?,
            },
            1 => DeviceCall::Free {
                buf: BufferId::decode(buf)?,
            },
            2 => DeviceCall::Upload {
                buf: BufferId::decode(buf)?,
                data: Vec::<f32>::decode(buf)?,
            },
            3 => DeviceCall::Download {
                buf: BufferId::decode(buf)?,
            },
            4 => DeviceCall::CopyD2D {
                src: BufferId::decode(buf)?,
                dst: BufferId::decode(buf)?,
            },
            5 => DeviceCall::Launch {
                stream: StreamId::decode(buf)?,
                kernel: KernelKind::decode(buf)?,
            },
            6 => DeviceCall::StreamCreate,
            7 => DeviceCall::StreamDestroy {
                stream: StreamId::decode(buf)?,
            },
            8 => DeviceCall::EventCreate,
            9 => DeviceCall::EventDestroy {
                event: EventId::decode(buf)?,
            },
            10 => DeviceCall::EventRecord {
                stream: StreamId::decode(buf)?,
                event: EventId::decode(buf)?,
            },
            11 => DeviceCall::StreamWaitEvent {
                stream: StreamId::decode(buf)?,
                event: EventId::decode(buf)?,
            },
            12 => DeviceCall::EventQuery {
                event: EventId::decode(buf)?,
            },
            13 => DeviceCall::StreamSync {
                stream: StreamId::decode(buf)?,
            },
            14 => DeviceCall::DeviceSync,
            other => return Err(SimError::Codec(format!("bad DeviceCall tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::codec::{decode_framed, encode_framed};

    #[test]
    fn call_codec_round_trip() {
        let calls = vec![
            DeviceCall::Malloc {
                site: AllocSite::new("w0", 16),
                elems: 16,
                logical_bytes: 64,
                tag: BufferTag::Param,
            },
            DeviceCall::Upload {
                buf: BufferId(3),
                data: vec![1.0, -2.0],
            },
            DeviceCall::Launch {
                stream: StreamId(0),
                kernel: KernelKind::Zero { buf: BufferId(3) },
            },
            DeviceCall::StreamWaitEvent {
                stream: StreamId(0),
                event: EventId(1),
            },
            DeviceCall::DeviceSync,
        ];
        for c in calls {
            let framed = encode_framed(&c);
            let back: DeviceCall = decode_framed(&framed).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn object_creation_classification() {
        assert!(DeviceCall::StreamCreate.creates_object());
        assert!(DeviceCall::EventCreate.creates_object());
        assert!(!DeviceCall::DeviceSync.creates_object());
        assert!(DeviceCall::Upload {
            buf: BufferId(0),
            data: vec![]
        }
        .mutates_memory());
        assert!(!DeviceCall::Download { buf: BufferId(0) }.mutates_memory());
    }

    #[test]
    fn result_extractors() {
        assert_eq!(
            CallResult::Buffer(BufferId(5)).buffer().unwrap(),
            BufferId(5)
        );
        assert!(CallResult::None.buffer().is_err());
        assert_eq!(CallResult::Data(vec![1.0]).data().unwrap(), vec![1.0]);
        assert!(CallResult::Bool(true).data().is_err());
    }
}

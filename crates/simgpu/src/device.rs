//! The simulated GPU device.
//!
//! [`Gpu`] executes [`DeviceCall`]s eagerly against real memory while
//! maintaining per-stream virtual timelines for ordering semantics and
//! returning the virtual duration of each call so the caller (the device
//! proxy or a direct executor) can advance the rank's clock.
//!
//! Recovery-relevant behaviours:
//!
//! * `Free` is **deferred**: the buffer moves to a graveyard and is only
//!   reclaimed at the next minibatch commit, so a reset-to-minibatch-start
//!   can resurrect it (§4.1's "undoing the creation or destruction" of
//!   objects after minibatch start).
//! * Health is checked on every call; a sticky error poisons all
//!   subsequent calls until [`Gpu::reset_context`].
//! * [`Gpu::free_non_persistent`] implements the state reset that keeps
//!   only parameters and optimizer state (§4.2.1).

use crate::api::{CallResult, DeviceCall};
use crate::buffer::{AllocSite, BufferId, BufferTag, DeviceBuffer};
use crate::health::GpuHealth;
use crate::stream::{Event, EventId, Stream, StreamId};
use simcore::cost::CostModel;
use simcore::failure::FailureKind;
use simcore::{GpuId, SimError, SimResult, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide physical handle space: physical ids are unique across all
/// simulated devices, so a stale handle can never alias an object on a
/// replacement GPU after migration.
static NEXT_PHYSICAL_HANDLE: AtomicU64 = AtomicU64::new(1);

fn fresh_handle_base(count: u64) -> u64 {
    NEXT_PHYSICAL_HANDLE.fetch_add(count, Ordering::Relaxed)
}

/// A simulated GPU device.
#[derive(Debug)]
pub struct Gpu {
    /// Device identity in the cluster inventory.
    pub id: GpuId,
    /// Memory capacity in (logical) bytes.
    capacity: u64,
    used_logical: u64,
    next_handle: u64,
    buffers: HashMap<BufferId, DeviceBuffer>,
    graveyard: HashMap<BufferId, DeviceBuffer>,
    streams: HashMap<StreamId, Stream>,
    events: HashMap<EventId, Event>,
    site_seq: HashMap<String, u32>,
    health: GpuHealth,
    cost: CostModel,
    /// Device-local submission cursor (virtual time of last submitted op).
    now: SimTime,
}

impl Gpu {
    /// Creates a healthy device with the generation's memory capacity.
    pub fn new(id: GpuId, cost: CostModel) -> Self {
        let capacity = cost.gpu.memory_bytes();
        Gpu {
            id,
            capacity,
            used_logical: 0,
            next_handle: fresh_handle_base(1 << 20),
            buffers: HashMap::new(),
            graveyard: HashMap::new(),
            streams: HashMap::new(),
            events: HashMap::new(),
            site_seq: HashMap::new(),
            health: GpuHealth::Healthy,
            cost,
            now: SimTime::ZERO,
        }
    }

    /// Current health.
    pub fn health(&self) -> GpuHealth {
        self.health
    }

    /// Injects a fault (from the failure injector).
    pub fn inject(&mut self, kind: FailureKind) {
        self.health = self.health.inject(kind);
    }

    /// Resets the device context (the effect of restarting the device
    /// proxy server): clears sticky/driver-suspect state, drops all
    /// volatile objects (streams, events) and — matching a real context
    /// teardown — all buffers. Returns an error if the hardware is dead.
    pub fn reset_context(&mut self) -> SimResult<()> {
        if !self.health.reset_recovers() {
            return Err(SimError::GpuHardware(self.id));
        }
        self.health = GpuHealth::Healthy;
        self.buffers.clear();
        self.graveyard.clear();
        self.streams.clear();
        self.events.clear();
        self.site_seq.clear();
        self.used_logical = 0;
        Ok(())
    }

    /// Cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Logical bytes currently allocated (excluding graveyard).
    pub fn used_bytes(&self) -> u64 {
        self.used_logical
    }

    /// Memory capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of live buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Immutable view of a live buffer.
    pub fn buffer(&self, id: BufferId) -> SimResult<&DeviceBuffer> {
        self.buffers
            .get(&id)
            .ok_or_else(|| SimError::InvalidHandle(format!("{id} (gpu {})", self.id)))
    }

    /// All live buffer ids, sorted for determinism.
    pub fn buffer_ids(&self) -> Vec<BufferId> {
        let mut ids: Vec<BufferId> = self.buffers.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Executes one device API call. Returns the result and the virtual
    /// duration the caller should charge to the rank's clock.
    pub fn exec(&mut self, call: &DeviceCall) -> SimResult<(CallResult, SimTime)> {
        self.health.check_api(self.id)?;
        match call {
            DeviceCall::Malloc {
                site,
                elems,
                logical_bytes,
                tag,
            } => {
                let id = self.malloc(site.clone(), *elems, *logical_bytes, *tag)?;
                Ok((CallResult::Buffer(id), SimTime::from_micros(10.0)))
            }
            DeviceCall::Free { buf } => {
                self.free(*buf)?;
                Ok((CallResult::None, SimTime::from_micros(5.0)))
            }
            DeviceCall::Upload { buf, data } => {
                let logical = {
                    let b = self.buffer_mut(*buf)?;
                    if b.data.len() != data.len() {
                        return Err(SimError::Protocol(format!(
                            "upload size mismatch: buffer {} has {} elems, payload {}",
                            buf,
                            b.data.len(),
                            data.len()
                        )));
                    }
                    b.data.copy_from_slice(data);
                    b.logical_bytes
                };
                Ok((CallResult::None, self.cost.memcpy(logical)))
            }
            DeviceCall::Download { buf } => {
                let b = self.buffer(*buf)?;
                let data = b.data.clone();
                let t = self.cost.memcpy(b.logical_bytes);
                Ok((CallResult::Data(data), t))
            }
            DeviceCall::CopyD2D { src, dst } => {
                let (data, logical) = {
                    let s = self.buffer(*src)?;
                    (s.data.clone(), s.logical_bytes)
                };
                let d = self.buffer_mut(*dst)?;
                if d.data.len() != data.len() {
                    return Err(SimError::Protocol("d2d size mismatch".into()));
                }
                d.data.copy_from_slice(&data);
                Ok((
                    CallResult::None,
                    SimTime::from_secs(logical as f64 / self.cost.nvlink_bw),
                ))
            }
            DeviceCall::Launch { stream, kernel } => {
                // Compute the phantom-scaling factor: the max ratio of
                // logical to actual size over the kernel's buffers.
                let mut scale = 1.0f64;
                for b in kernel.buffers() {
                    let buf = self.buffer(b)?;
                    if !buf.data.is_empty() {
                        let s = buf.logical_bytes as f64 / (4.0 * buf.data.len() as f64);
                        scale = scale.max(s);
                    }
                }
                let cost = self.cost.kernel(kernel.flops(scale));
                // Execute for real.
                let kernel = kernel.clone();
                let mut fetch_err: Option<SimError> = None;
                {
                    // Split-borrow protocol: clone inputs out, write outputs
                    // back, via raw access to the buffers map.
                    let buffers = &mut self.buffers;
                    let mut fetch = |id: BufferId| -> SimResult<Vec<f32>> {
                        buffers
                            .get(&id)
                            .map(|b| b.data.clone())
                            .ok_or_else(|| SimError::InvalidHandle(id.to_string()))
                    };
                    // First gather all reads, then apply writes, to keep
                    // the two-closure protocol borrow-safe.
                    let mut writes: Vec<(BufferId, Vec<f32>)> = Vec::new();
                    {
                        let mut store = |id: BufferId, data: Vec<f32>| -> SimResult<()> {
                            writes.push((id, data));
                            Ok(())
                        };
                        if let Err(e) = kernel.execute(&mut fetch, &mut store) {
                            fetch_err = Some(e);
                        }
                    }
                    if fetch_err.is_none() {
                        for (id, data) in writes {
                            match buffers.get_mut(&id) {
                                Some(b) => b.data = data,
                                None => {
                                    fetch_err = Some(SimError::InvalidHandle(id.to_string()));
                                    break;
                                }
                            }
                        }
                    }
                }
                if let Some(e) = fetch_err {
                    return Err(e);
                }
                let now = self.now;
                let s = self.stream_mut(*stream)?;
                s.enqueue(now, cost);
                self.now += cost;
                Ok((CallResult::None, cost))
            }
            DeviceCall::StreamCreate => {
                let id = StreamId(self.next_handle);
                self.next_handle += 1;
                self.streams.insert(id, Stream::new(id));
                Ok((CallResult::Stream(id), self.cost.handle_create))
            }
            DeviceCall::StreamDestroy { stream } => {
                self.streams
                    .remove(stream)
                    .ok_or_else(|| SimError::InvalidHandle(stream.to_string()))?;
                Ok((CallResult::None, SimTime::from_micros(20.0)))
            }
            DeviceCall::EventCreate => {
                let id = EventId(self.next_handle);
                self.next_handle += 1;
                self.events.insert(id, Event::new(id));
                Ok((CallResult::Event(id), self.cost.handle_create))
            }
            DeviceCall::EventDestroy { event } => {
                self.events
                    .remove(event)
                    .ok_or_else(|| SimError::InvalidHandle(event.to_string()))?;
                Ok((CallResult::None, SimTime::from_micros(20.0)))
            }
            DeviceCall::EventRecord { stream, event } => {
                let t = self.stream_mut(*stream)?.ready_at;
                let e = self
                    .events
                    .get_mut(event)
                    .ok_or_else(|| SimError::InvalidHandle(event.to_string()))?;
                e.recorded_at = Some(t);
                Ok((CallResult::None, SimTime::from_micros(4.0)))
            }
            DeviceCall::StreamWaitEvent { stream, event } => {
                let et = self
                    .events
                    .get(event)
                    .ok_or_else(|| SimError::InvalidHandle(event.to_string()))?
                    .recorded_at
                    .unwrap_or(SimTime::ZERO);
                self.stream_mut(*stream)?.wait_event(et);
                Ok((CallResult::None, SimTime::from_micros(4.0)))
            }
            DeviceCall::EventQuery { event } => {
                let e = self
                    .events
                    .get(event)
                    .ok_or_else(|| SimError::InvalidHandle(event.to_string()))?;
                Ok((CallResult::Bool(e.is_complete()), SimTime::from_micros(2.0)))
            }
            DeviceCall::StreamSync { stream } => {
                let ready = self.stream_mut(*stream)?.ready_at;
                let wait = ready.saturating_sub(self.now);
                self.now = self.now.max(ready);
                Ok((CallResult::None, wait))
            }
            DeviceCall::DeviceSync => {
                let ready = self
                    .streams
                    .values()
                    .map(|s| s.ready_at)
                    .fold(SimTime::ZERO, SimTime::max);
                let wait = ready.saturating_sub(self.now);
                self.now = self.now.max(ready);
                Ok((CallResult::None, wait))
            }
        }
    }

    fn buffer_mut(&mut self, id: BufferId) -> SimResult<&mut DeviceBuffer> {
        self.buffers
            .get_mut(&id)
            .ok_or_else(|| SimError::InvalidHandle(id.to_string()))
    }

    fn stream_mut(&mut self, id: StreamId) -> SimResult<&mut Stream> {
        self.streams
            .get_mut(&id)
            .ok_or_else(|| SimError::InvalidHandle(id.to_string()))
    }

    fn malloc(
        &mut self,
        mut site: AllocSite,
        elems: u64,
        logical_bytes: u64,
        tag: BufferTag,
    ) -> SimResult<BufferId> {
        if self.used_logical + logical_bytes > self.capacity {
            return Err(SimError::OutOfMemory {
                requested: logical_bytes,
                available: self.capacity - self.used_logical,
            });
        }
        let seq = self.site_seq.entry(site.path.clone()).or_insert(0);
        site.seq = *seq;
        *seq += 1;
        site.elems = elems;
        let id = BufferId(self.next_handle);
        self.next_handle += 1;
        self.buffers.insert(
            id,
            DeviceBuffer {
                id,
                data: vec![0f32; elems as usize],
                logical_bytes,
                tag,
                site,
            },
        );
        self.used_logical += logical_bytes;
        Ok(id)
    }

    fn free(&mut self, id: BufferId) -> SimResult<()> {
        let buf = self
            .buffers
            .remove(&id)
            .ok_or_else(|| SimError::InvalidHandle(id.to_string()))?;
        self.used_logical -= buf.logical_bytes;
        self.graveyard.insert(id, buf);
        Ok(())
    }

    /// Commits deferred frees — called at the start of each minibatch, the
    /// point past which a reset can no longer need the freed buffers.
    pub fn commit_frees(&mut self) {
        self.graveyard.clear();
    }

    /// Resurrects all deferred-freed buffers (reset-to-minibatch-start).
    pub fn resurrect_freed(&mut self) {
        for (id, buf) in self.graveyard.drain() {
            self.used_logical += buf.logical_bytes;
            self.buffers.insert(id, buf);
        }
    }

    /// Frees every buffer that is not model parameters or optimizer state
    /// (§4.2.1's cheapest reset path), returning how many were dropped.
    pub fn free_non_persistent(&mut self) -> usize {
        let victims: Vec<BufferId> = self
            .buffers
            .values()
            .filter(|b| !b.tag.is_persistent())
            .map(|b| b.id)
            .collect();
        let n = victims.len();
        for id in victims {
            if let Some(b) = self.buffers.remove(&id) {
                self.used_logical -= b.logical_bytes;
            }
        }
        n
    }

    /// Writes payload into an existing buffer (replica state restore).
    pub fn load_buffer(&mut self, id: BufferId, data: &[f32]) -> SimResult<()> {
        let b = self.buffer_mut(id)?;
        if b.data.len() != data.len() {
            return Err(SimError::Protocol(format!(
                "load size mismatch for {id}: {} vs {}",
                b.data.len(),
                data.len()
            )));
        }
        b.data.copy_from_slice(data);
        Ok(())
    }

    /// Snapshot of every persistent (param/optimizer) buffer, keyed by the
    /// cross-rank-stable storage key. Total logical bytes is also returned
    /// for cost accounting.
    pub fn snapshot_persistent(&self) -> (Vec<(String, BufferTag, Vec<f32>)>, u64) {
        let mut out: Vec<(String, BufferTag, Vec<f32>)> = Vec::new();
        let mut bytes = 0u64;
        let mut ids = self.buffer_ids();
        ids.sort();
        for id in ids {
            let b = &self.buffers[&id];
            if b.tag.is_persistent() {
                out.push((b.site.storage_key(), b.tag, b.data.clone()));
                bytes += b.logical_bytes;
            }
        }
        (out, bytes)
    }

    /// Total logical bytes of persistent state (checkpoint size).
    pub fn persistent_bytes(&self) -> u64 {
        self.buffers
            .values()
            .filter(|b| b.tag.is_persistent())
            .map(|b| b.logical_bytes)
            .sum()
    }

    /// Restores persistent buffers from a snapshot by storage key.
    /// Buffers present on the device but missing from the snapshot are
    /// left untouched; snapshot entries with no matching buffer error.
    pub fn restore_persistent(
        &mut self,
        snapshot: &[(String, BufferTag, Vec<f32>)],
    ) -> SimResult<()> {
        let by_key: HashMap<String, BufferId> = self
            .buffers
            .values()
            .map(|b| (b.site.storage_key(), b.id))
            .collect();
        for (key, _tag, data) in snapshot {
            let id = by_key.get(key).copied().ok_or_else(|| {
                SimError::Protocol(format!("no buffer with storage key {key} on {}", self.id))
            })?;
            self.load_buffer(id, data)?;
        }
        Ok(())
    }

    /// Checksums of all live buffers, keyed by id — the §4.1 verification
    /// primitive.
    pub fn checksum_all(&self) -> BTreeMap<BufferId, u64> {
        self.buffers
            .iter()
            .map(|(id, b)| (*id, b.checksum()))
            .collect()
    }

    /// Checksums of persistent buffers only, keyed by storage key.
    pub fn checksum_persistent(&self) -> BTreeMap<String, u64> {
        self.buffers
            .values()
            .filter(|b| b.tag.is_persistent())
            .map(|b| (b.site.storage_key(), b.checksum()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(GpuId(0), CostModel::v100())
    }

    fn malloc(g: &mut Gpu, path: &str, elems: u64, tag: BufferTag) -> BufferId {
        g.exec(&DeviceCall::Malloc {
            site: AllocSite::new(path, elems),
            elems,
            logical_bytes: elems * 4,
            tag,
        })
        .unwrap()
        .0
        .buffer()
        .unwrap()
    }

    #[test]
    fn malloc_upload_download_round_trip() {
        let mut g = gpu();
        let b = malloc(&mut g, "w", 4, BufferTag::Param);
        g.exec(&DeviceCall::Upload {
            buf: b,
            data: vec![1.0, 2.0, 3.0, 4.0],
        })
        .unwrap();
        let (res, _) = g.exec(&DeviceCall::Download { buf: b }).unwrap();
        assert_eq!(res.data().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut g = gpu();
        let res = g.exec(&DeviceCall::Malloc {
            site: AllocSite::new("huge", 1),
            elems: 1,
            logical_bytes: 33 * (1 << 30), // exceeds V100's 32 GB
            tag: BufferTag::Workspace,
        });
        assert!(matches!(res, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn sticky_error_poisons_every_call() {
        let mut g = gpu();
        let b = malloc(&mut g, "w", 2, BufferTag::Param);
        g.inject(FailureKind::StickyCuda);
        assert!(g.exec(&DeviceCall::Download { buf: b }).is_err());
        assert!(g.exec(&DeviceCall::DeviceSync).is_err());
        // Reset recovers the device but wipes its state, like a context
        // teardown.
        g.reset_context().unwrap();
        assert_eq!(g.buffer_count(), 0);
        assert!(g.exec(&DeviceCall::DeviceSync).is_ok());
    }

    #[test]
    fn hardware_failure_is_unresettable() {
        let mut g = gpu();
        g.inject(FailureKind::GpuHardware);
        assert!(g.reset_context().is_err());
    }

    #[test]
    fn deferred_free_and_resurrection() {
        let mut g = gpu();
        let b = malloc(&mut g, "act", 4, BufferTag::Activation);
        g.exec(&DeviceCall::Upload {
            buf: b,
            data: vec![9.0; 4],
        })
        .unwrap();
        g.exec(&DeviceCall::Free { buf: b }).unwrap();
        assert!(g.buffer(b).is_err());
        // Reset-to-minibatch-start resurrects it with contents intact.
        g.resurrect_freed();
        assert_eq!(g.buffer(b).unwrap().data, vec![9.0; 4]);
        // After a commit, the free is final.
        g.exec(&DeviceCall::Free { buf: b }).unwrap();
        g.commit_frees();
        g.resurrect_freed();
        assert!(g.buffer(b).is_err());
    }

    #[test]
    fn free_non_persistent_keeps_params_and_optimizer_state() {
        let mut g = gpu();
        let p = malloc(&mut g, "param", 4, BufferTag::Param);
        let o = malloc(&mut g, "adam.m", 4, BufferTag::OptimState);
        let a = malloc(&mut g, "act", 4, BufferTag::Activation);
        let gr = malloc(&mut g, "grad", 4, BufferTag::Gradient);
        let dropped = g.free_non_persistent();
        assert_eq!(dropped, 2);
        assert!(g.buffer(p).is_ok());
        assert!(g.buffer(o).is_ok());
        assert!(g.buffer(a).is_err());
        assert!(g.buffer(gr).is_err());
    }

    #[test]
    fn snapshot_restore_persistent_round_trip() {
        let mut g = gpu();
        let p = malloc(&mut g, "param", 3, BufferTag::Param);
        g.exec(&DeviceCall::Upload {
            buf: p,
            data: vec![1.0, 2.0, 3.0],
        })
        .unwrap();
        let (snap, bytes) = g.snapshot_persistent();
        assert_eq!(bytes, 12);
        assert_eq!(snap.len(), 1);
        // Clobber, then restore.
        g.load_buffer(p, &[0.0, 0.0, 0.0]).unwrap();
        g.restore_persistent(&snap).unwrap();
        assert_eq!(g.buffer(p).unwrap().data, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn snapshot_keys_match_across_replica_devices() {
        // Two replicas allocating through the same code path must produce
        // identical storage keys — the §4.3 cross-rank naming property.
        let build = || {
            let mut g = gpu();
            malloc(&mut g, "model.l0.w", 4, BufferTag::Param);
            malloc(&mut g, "model.l0.w", 4, BufferTag::Param); // seq 1
            malloc(&mut g, "adam.m", 4, BufferTag::OptimState);
            g
        };
        let g1 = build();
        let g2 = build();
        let k1: Vec<String> = g1
            .snapshot_persistent()
            .0
            .into_iter()
            .map(|x| x.0)
            .collect();
        let k2: Vec<String> = g2
            .snapshot_persistent()
            .0
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 3);
        assert_ne!(k1[0], k1[1], "same path must get distinct seq numbers");
    }

    #[test]
    fn launch_executes_and_charges_time() {
        let mut g = gpu();
        let s = g
            .exec(&DeviceCall::StreamCreate)
            .unwrap()
            .0
            .stream()
            .unwrap();
        let b = malloc(&mut g, "x", 4, BufferTag::Workspace);
        g.exec(&DeviceCall::Upload {
            buf: b,
            data: vec![1.0; 4],
        })
        .unwrap();
        let (_, t) = g
            .exec(&DeviceCall::Launch {
                stream: s,
                kernel: KernelKindFixture::scale(b, 2.0),
            })
            .unwrap();
        assert!(t > SimTime::ZERO);
        assert_eq!(g.buffer(b).unwrap().data, vec![2.0; 4]);
    }

    #[test]
    fn event_record_and_query() {
        let mut g = gpu();
        let s = g
            .exec(&DeviceCall::StreamCreate)
            .unwrap()
            .0
            .stream()
            .unwrap();
        let e = g.exec(&DeviceCall::EventCreate).unwrap().0.event().unwrap();
        let (res, _) = g.exec(&DeviceCall::EventQuery { event: e }).unwrap();
        assert_eq!(res, CallResult::Bool(false));
        g.exec(&DeviceCall::EventRecord {
            stream: s,
            event: e,
        })
        .unwrap();
        let (res, _) = g.exec(&DeviceCall::EventQuery { event: e }).unwrap();
        assert_eq!(res, CallResult::Bool(true));
    }

    #[test]
    fn phantom_scaling_inflates_kernel_time() {
        let mut g = gpu();
        let s = g
            .exec(&DeviceCall::StreamCreate)
            .unwrap()
            .0
            .stream()
            .unwrap();
        let small = malloc(&mut g, "small", 64, BufferTag::Workspace);
        // Phantom buffer: 64 actual elems, 1 GB logical.
        let phantom = g
            .exec(&DeviceCall::Malloc {
                site: AllocSite::new("phantom", 64),
                elems: 64,
                logical_bytes: 1 << 30,
                tag: BufferTag::Workspace,
            })
            .unwrap()
            .0
            .buffer()
            .unwrap();
        let (_, t_small) = g
            .exec(&DeviceCall::Launch {
                stream: s,
                kernel: KernelKindFixture::scale(small, 1.0),
            })
            .unwrap();
        let (_, t_phantom) = g
            .exec(&DeviceCall::Launch {
                stream: s,
                kernel: KernelKindFixture::scale(phantom, 1.0),
            })
            .unwrap();
        assert!(t_phantom > t_small);
    }

    /// Tiny helper to build kernels in tests.
    struct KernelKindFixture;
    impl KernelKindFixture {
        fn scale(x: BufferId, alpha: f32) -> crate::kernel::KernelKind {
            crate::kernel::KernelKind::Scale { alpha, x }
        }
    }
}

//! Property-based tests for the simulated device: allocator safety,
//! snapshot/restore round-trips, kernel algebra, and reset invariants.

use proptest::prelude::*;
use simcore::cost::CostModel;
use simcore::GpuId;
use simgpu::{AllocSite, BufferTag, DeviceCall, Gpu, KernelKind};

fn gpu() -> Gpu {
    Gpu::new(GpuId(0), CostModel::v100())
}

fn malloc(g: &mut Gpu, path: &str, data: Vec<f32>, tag: BufferTag) -> simgpu::BufferId {
    let n = data.len() as u64;
    let b = g
        .exec(&DeviceCall::Malloc {
            site: AllocSite::new(path, n),
            elems: n,
            logical_bytes: n.max(1) * 4,
            tag,
        })
        .unwrap()
        .0
        .buffer()
        .unwrap();
    g.exec(&DeviceCall::Upload { buf: b, data }).unwrap();
    b
}

proptest! {
    #[test]
    fn allocator_never_reuses_live_handles(sizes in proptest::collection::vec(1usize..64, 1..40)) {
        let mut g = gpu();
        let mut handles = std::collections::HashSet::new();
        for (i, s) in sizes.iter().enumerate() {
            let b = malloc(&mut g, &format!("b{i}"), vec![0.0; *s], BufferTag::Workspace);
            prop_assert!(handles.insert(b), "handle reuse");
        }
        prop_assert_eq!(g.buffer_count(), sizes.len());
    }

    #[test]
    fn used_bytes_is_conserved_across_alloc_free(sizes in proptest::collection::vec(1usize..64, 1..24)) {
        let mut g = gpu();
        let mut bufs = Vec::new();
        let mut expect = 0u64;
        for (i, s) in sizes.iter().enumerate() {
            bufs.push(malloc(&mut g, &format!("b{i}"), vec![0.0; *s], BufferTag::Workspace));
            expect += *s as u64 * 4;
            prop_assert_eq!(g.used_bytes(), expect);
        }
        for (b, s) in bufs.iter().zip(&sizes) {
            g.exec(&DeviceCall::Free { buf: *b }).unwrap();
            expect -= *s as u64 * 4;
            prop_assert_eq!(g.used_bytes(), expect);
        }
        prop_assert_eq!(g.used_bytes(), 0);
    }

    #[test]
    fn snapshot_restore_is_identity(
        params in proptest::collection::vec(proptest::collection::vec(-1e3f32..1e3, 1..32), 1..8)
    ) {
        let mut g = gpu();
        let bufs: Vec<_> = params
            .iter()
            .enumerate()
            .map(|(i, p)| malloc(&mut g, &format!("p{i}"), p.clone(), BufferTag::Param))
            .collect();
        let (snap, _) = g.snapshot_persistent();
        let before = g.checksum_persistent();
        // Clobber everything, restore, compare checksums.
        for (b, p) in bufs.iter().zip(&params) {
            g.load_buffer(*b, &vec![0.0; p.len()]).unwrap();
        }
        g.restore_persistent(&snap).unwrap();
        prop_assert_eq!(g.checksum_persistent(), before);
    }

    #[test]
    fn free_non_persistent_preserves_exactly_the_persistent_set(
        tags in proptest::collection::vec(0u8..6, 1..32)
    ) {
        let mut g = gpu();
        let all_tags = [
            BufferTag::Param,
            BufferTag::OptimState,
            BufferTag::Activation,
            BufferTag::Gradient,
            BufferTag::Input,
            BufferTag::Workspace,
        ];
        let mut persistent = 0;
        for (i, t) in tags.iter().enumerate() {
            let tag = all_tags[*t as usize];
            malloc(&mut g, &format!("b{i}"), vec![1.0; 4], tag);
            if tag.is_persistent() {
                persistent += 1;
            }
        }
        g.free_non_persistent();
        prop_assert_eq!(g.buffer_count(), persistent);
    }

    #[test]
    fn axpy_then_inverse_axpy_is_identity(
        x in proptest::collection::vec(-100.0f32..100.0, 1..32),
        alpha in -8.0f32..8.0,
    ) {
        // y += a·x then y -= a·x returns y exactly (no reordering in the
        // kernel, so f32 arithmetic cancels bit-for-bit).
        let mut g = gpu();
        let y0: Vec<f32> = x.iter().map(|v| v * 0.5 + 1.0).collect();
        let bx = malloc(&mut g, "x", x.clone(), BufferTag::Workspace);
        let by = malloc(&mut g, "y", y0.clone(), BufferTag::Workspace);
        let s = g.exec(&DeviceCall::StreamCreate).unwrap().0.stream().unwrap();
        let before = g.buffer(by).unwrap().checksum();
        g.exec(&DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha, x: bx, y: by } }).unwrap();
        g.exec(&DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha: -alpha, x: bx, y: by } }).unwrap();
        // (a + b) - b == a exactly only when no rounding occurred; instead
        // assert the achievable property: result is within one ulp-ish of
        // the original for each element.
        let after = g.buffer(by).unwrap().data.clone();
        for (a, b) in y0.iter().zip(&after) {
            prop_assert!((a - b).abs() <= a.abs().max(1.0) * 1e-5, "{a} vs {b}");
        }
        let _ = before;
    }

    #[test]
    fn matmul_identity_is_identity(n in 1usize..8, data in proptest::collection::vec(-10.0f32..10.0, 64)) {
        let mut g = gpu();
        let a: Vec<f32> = data.iter().take(n * n).copied().collect();
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n { eye[i * n + i] = 1.0; }
        let ba = malloc(&mut g, "a", a.clone(), BufferTag::Workspace);
        let be = malloc(&mut g, "e", eye, BufferTag::Workspace);
        let bo = malloc(&mut g, "o", vec![0.0; n * n], BufferTag::Workspace);
        let s = g.exec(&DeviceCall::StreamCreate).unwrap().0.stream().unwrap();
        g.exec(&DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::MatMul {
                a: ba, b: be, out: bo,
                m: n as u32, k: n as u32, n: n as u32,
                trans_a: false, trans_b: false,
            },
        }).unwrap();
        prop_assert_eq!(g.buffer(bo).unwrap().data.clone(), a);
    }

    #[test]
    fn deferred_free_resurrection_restores_content(
        data in proptest::collection::vec(any::<f32>(), 1..32)
    ) {
        let mut g = gpu();
        let b = malloc(&mut g, "v", data.clone(), BufferTag::Activation);
        let sum_before = g.buffer(b).unwrap().checksum();
        g.exec(&DeviceCall::Free { buf: b }).unwrap();
        g.resurrect_freed();
        prop_assert_eq!(g.buffer(b).unwrap().checksum(), sum_before);
    }
}

//! Monte-Carlo validation of the §5 analytical model.
//!
//! Simulates months of training wall-clock under Poisson failure arrivals
//! for each checkpointing policy, accumulating useful vs wasted GPU time
//! event by event, and compares the measured wasted fraction against the
//! closed forms (eq. 1, 5–8). Agreement within sampling noise is evidence
//! that the paper's model — not merely our implementation of it — is
//! internally consistent.

use jitckpt::analysis::{
    optimal_frequency, wasted_fraction, wasted_rate_jit_transparent, wasted_rate_jit_user,
    wasted_rate_periodic_optimal, JobParams,
};
use simcore::rng::DetRng;

/// Checkpointing policy simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Periodic checkpointing at frequency `c` (per second of useful time).
    Periodic {
        /// Checkpoints per second.
        c: f64,
    },
    /// Periodic at the analytically optimal frequency (eq. 3).
    PeriodicOptimal,
    /// User-level JIT: per failure, one checkpoint (`o`) + fixed restart
    /// (`r`) + half a minibatch of redone work.
    JitUser,
    /// Transparent JIT: per failure, half a minibatch only.
    JitTransparent,
    /// In-network gradient replication: per failure, the ledger-slice
    /// stream + optimizer replay tail (`reconstruct` seconds) + half a
    /// minibatch — no checkpoint write and no store round-trip.
    InNetwork {
        /// Reconstruction tail per failure (seconds).
        reconstruct: f64,
    },
}

/// Outcome of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct McOutcome {
    /// Useful training seconds accumulated (per GPU).
    pub useful: f64,
    /// Wasted seconds (per GPU): checkpoint stalls + recovery + redone work.
    pub wasted: f64,
    /// Failures encountered.
    pub failures: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

impl McOutcome {
    /// Measured wasted fraction (comparable to eq. 6).
    pub fn wasted_fraction(&self) -> f64 {
        self.wasted / (self.useful + self.wasted)
    }
}

/// Simulates `horizon_useful` seconds of *useful* training under `policy`,
/// with failures arriving as a Poisson process at the job rate `N·f`.
///
/// All quantities are per-GPU (every GPU pays every stall in a synchronous
/// job, so per-GPU and aggregate fractions coincide).
pub fn simulate(p: &JobParams, policy: Policy, horizon_useful: f64, seed: u64) -> McOutcome {
    let mut rng = DetRng::new(seed);
    let job_rate = p.n_gpus as f64 * p.failure_rate;
    let c = match policy {
        Policy::Periodic { c } => c,
        Policy::PeriodicOptimal => optimal_frequency(p),
        _ => 0.0,
    };
    let interval = if c > 0.0 { 1.0 / c } else { f64::INFINITY };
    let mut useful = 0.0f64;
    let mut wasted = 0.0f64;
    let mut failures = 0u64;
    let mut checkpoints = 0u64;
    // Useful time since the last durable checkpoint (work at risk).
    let mut at_risk = 0.0f64;
    // Useful time until the next periodic checkpoint.
    let mut until_ckpt = interval;
    while useful < horizon_useful {
        // Draw the next failure in *useful-time* coordinates (failures
        // during stalls are folded into the same recovery for simplicity;
        // they are rare at realistic rates).
        let u = rng.uniform().max(1e-300);
        let mut to_failure = -u.ln() / job_rate;
        loop {
            if useful >= horizon_useful {
                break;
            }
            let step = to_failure.min(until_ckpt).min(horizon_useful - useful);
            useful += step;
            at_risk += step;
            to_failure -= step;
            until_ckpt -= step;
            if until_ckpt <= 0.0 && interval.is_finite() {
                // Periodic checkpoint: stall o, reset the at-risk window.
                wasted += p.ckpt_overhead;
                checkpoints += 1;
                at_risk = 0.0;
                until_ckpt = interval;
                continue;
            }
            if to_failure <= 0.0 {
                break;
            }
        }
        if useful >= horizon_useful {
            break;
        }
        // A failure strikes.
        failures += 1;
        match policy {
            Policy::Periodic { .. } | Policy::PeriodicOptimal => {
                // Lose the at-risk window, pay the fixed restart.
                wasted += at_risk + p.fixed_recovery;
                useful -= at_risk;
                at_risk = 0.0;
                until_ckpt = interval;
            }
            Policy::JitUser => {
                // One just-in-time checkpoint + restart + ≤1 minibatch.
                // Eq. 7 charges the checkpoint as `o` GPU-seconds *total*
                // per failure (N·f·t·o): the write overlaps the restart
                // window on the already-idle job, so per GPU it amortizes
                // to o/N.
                wasted += p.ckpt_overhead / p.n_gpus as f64 + p.fixed_recovery + p.minibatch / 2.0;
                checkpoints += 1;
            }
            Policy::JitTransparent => {
                wasted += p.minibatch / 2.0;
            }
            Policy::InNetwork { reconstruct } => {
                wasted += reconstruct + p.minibatch / 2.0;
            }
        }
    }
    McOutcome {
        useful,
        wasted,
        failures,
        checkpoints,
    }
}

/// Runs `reps` independent replications, fanned out across threads, and
/// returns the mean wasted fraction and its sample standard deviation.
///
/// Replication `k` always uses seed `0xC0FFEE + k` and writes its result
/// into slot `k`, and the mean/variance reductions run over the slots in
/// index order — so the output is bit-identical to a sequential run
/// regardless of thread count or scheduling.
pub fn replicate(p: &JobParams, policy: Policy, horizon: f64, reps: u64) -> (f64, f64) {
    let mut fractions = vec![0.0f64; reps.max(1) as usize];
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, fractions.len());
    let per_worker = fractions.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk) in fractions.chunks_mut(per_worker).enumerate() {
            let base = (ci * per_worker) as u64;
            s.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = simulate(p, policy, horizon, 0xC0FFEE + base + off as u64)
                        .wasted_fraction();
                }
            });
        }
    });
    let mean = fractions.iter().sum::<f64>() / reps as f64;
    let var = fractions
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (reps.max(2) - 1) as f64;
    (mean, var.sqrt())
}

/// Analytical prediction for a policy (eq. 5/7/8 + eq. 6).
pub fn predicted_fraction(p: &JobParams, policy: Policy) -> f64 {
    let w = match policy {
        Policy::Periodic { c } => jitckpt::analysis::wasted_rate_periodic(p, c),
        Policy::PeriodicOptimal => wasted_rate_periodic_optimal(p),
        Policy::JitUser => wasted_rate_jit_user(p, 0.0),
        Policy::JitTransparent => wasted_rate_jit_transparent(p, 0.0),
        Policy::InNetwork { reconstruct } => {
            jitckpt::analysis::wasted_rate_in_network(p, 0.0, reconstruct)
        }
    };
    wasted_fraction(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize) -> JobParams {
        // BERT-L-PT-like (Table 4 measurements).
        JobParams::new(7.1, 2.0 / 992.0, 11.2, n, 0.4)
    }

    #[test]
    fn simulation_matches_closed_form_periodic_optimal() {
        let p = params(1024);
        let horizon = 90.0 * 86_400.0; // 90 days
        let (mean, sd) = replicate(&p, Policy::PeriodicOptimal, horizon, 8);
        let predicted = predicted_fraction(&p, Policy::PeriodicOptimal);
        assert!(
            (mean - predicted).abs() < predicted * 0.15 + 3.0 * sd,
            "MC {mean} vs model {predicted} (sd {sd})"
        );
    }

    #[test]
    fn simulation_matches_closed_form_jit_user() {
        let p = params(1024);
        let horizon = 90.0 * 86_400.0;
        let (mean, sd) = replicate(&p, Policy::JitUser, horizon, 8);
        let predicted = predicted_fraction(&p, Policy::JitUser);
        assert!(
            (mean - predicted).abs() < predicted * 0.2 + 3.0 * sd,
            "MC {mean} vs model {predicted} (sd {sd})"
        );
    }

    #[test]
    fn simulation_matches_closed_form_jit_transparent() {
        let p = params(1024);
        let horizon = 90.0 * 86_400.0;
        let (mean, sd) = replicate(&p, Policy::JitTransparent, horizon, 8);
        let predicted = predicted_fraction(&p, Policy::JitTransparent);
        assert!(
            (mean - predicted).abs() < predicted * 0.3 + 3.0 * sd,
            "MC {mean} vs model {predicted} (sd {sd})"
        );
    }

    #[test]
    fn simulation_matches_closed_form_in_network() {
        // Satellite check: the in-network closed form (w = N·f·(t_rec +
        // m/2), zero steady term in both sim and model here) agrees with
        // the Monte-Carlo measurement within 20% relative tolerance plus
        // 3σ sampling noise — the same bar the other §5 policies meet.
        let p = params(1024);
        let horizon = 90.0 * 86_400.0;
        let policy = Policy::InNetwork { reconstruct: 1.8 };
        let (mean, sd) = replicate(&p, policy, horizon, 8);
        let predicted = predicted_fraction(&p, policy);
        assert!(
            (mean - predicted).abs() < predicted * 0.2 + 3.0 * sd,
            "MC {mean} vs model {predicted} (sd {sd})"
        );
    }

    #[test]
    fn simulated_in_network_sits_between_transparent_and_jit_user() {
        let p = params(4096);
        let horizon = 60.0 * 86_400.0;
        let (user, _) = replicate(&p, Policy::JitUser, horizon, 4);
        let (transparent, _) = replicate(&p, Policy::JitTransparent, horizon, 4);
        let (in_net, _) = replicate(&p, Policy::InNetwork { reconstruct: 1.8 }, horizon, 4);
        assert!(in_net < user, "in-network {in_net} vs user {user}");
        assert!(
            in_net >= transparent,
            "reconstruction tail cannot beat transparent's free recovery: \
             {in_net} vs {transparent}"
        );
    }

    #[test]
    fn simulated_jit_beats_simulated_periodic_at_scale() {
        let p = params(4096);
        let horizon = 60.0 * 86_400.0;
        let (pc, _) = replicate(&p, Policy::PeriodicOptimal, horizon, 4);
        let (user, _) = replicate(&p, Policy::JitUser, horizon, 4);
        let (transparent, _) = replicate(&p, Policy::JitTransparent, horizon, 4);
        assert!(user < pc, "user {user} vs pc {pc}");
        assert!(
            transparent < user,
            "transparent {transparent} vs user {user}"
        );
    }

    #[test]
    fn off_optimal_frequencies_waste_more_in_simulation() {
        // The eq. 3 optimum is real: simulated waste at c*/4 and 4·c* both
        // exceed waste at c*.
        let p = params(1024);
        let horizon = 120.0 * 86_400.0;
        let c_star = optimal_frequency(&p);
        let (at_opt, _) = replicate(&p, Policy::Periodic { c: c_star }, horizon, 6);
        let (low, _) = replicate(&p, Policy::Periodic { c: c_star / 4.0 }, horizon, 6);
        let (high, _) = replicate(&p, Policy::Periodic { c: c_star * 4.0 }, horizon, 6);
        assert!(low > at_opt, "under-checkpointing: {low} vs {at_opt}");
        assert!(high > at_opt, "over-checkpointing: {high} vs {at_opt}");
    }

    #[test]
    fn parallel_replicate_is_bit_identical_to_sequential() {
        let p = params(512);
        let horizon = 30.0 * 86_400.0;
        for policy in [
            Policy::PeriodicOptimal,
            Policy::JitUser,
            Policy::JitTransparent,
            Policy::InNetwork { reconstruct: 1.8 },
        ] {
            // Sequential reference, same seeds and reduction order.
            let reps = 7u64;
            let fractions: Vec<f64> = (0..reps)
                .map(|k| simulate(&p, policy, horizon, 0xC0FFEE + k).wasted_fraction())
                .collect();
            let seq_mean = fractions.iter().sum::<f64>() / reps as f64;
            let seq_var = fractions
                .iter()
                .map(|x| (x - seq_mean) * (x - seq_mean))
                .sum::<f64>()
                / (reps.max(2) - 1) as f64;
            let (mean, sd) = replicate(&p, policy, horizon, reps);
            assert_eq!(mean.to_bits(), seq_mean.to_bits(), "{policy:?}");
            assert_eq!(sd.to_bits(), seq_var.sqrt().to_bits(), "{policy:?}");
        }
    }

    #[test]
    fn failure_counts_scale_linearly_with_n() {
        let horizon = 30.0 * 86_400.0;
        let small = simulate(&params(256), Policy::JitTransparent, horizon, 1);
        let large = simulate(&params(4096), Policy::JitTransparent, horizon, 1);
        let ratio = large.failures as f64 / small.failures.max(1) as f64;
        assert!((8.0..32.0).contains(&ratio), "O(N) failure rate: {ratio}");
    }
}

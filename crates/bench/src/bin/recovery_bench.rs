//! Recovery-scheme benchmark: steady-state in-network tap overhead,
//! recovery-policy head-to-head (periodic-optimal / user JIT /
//! transparent JIT / in-network), and the end-to-end zero-store-read
//! ledger recovery demo, emitted as `BENCH_recovery.json`.
//!
//! ```sh
//! recovery_bench [out_path]
//! ```

use bench::recovery::{run_recovery_bench, RecoveryBenchConfig};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let cfg = RecoveryBenchConfig::default();
    eprintln!(
        "measuring recovery schemes: tap worlds {:?} @ {} KiB, policies {:?}, \
         demo dp={} x {} iters ...",
        cfg.tap_worlds,
        cfg.tap_payload >> 10,
        cfg.policy_worlds,
        cfg.demo_dp,
        cfg.demo_iters
    );
    let report = match run_recovery_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "world", "sim_off_s", "sim_on_s", "overhead", "wall_off_ms", "wall_on_ms", "ledger_KiB"
    );
    for p in &report.tap {
        println!(
            "{:>6} {:>12.6} {:>12.6} {:>9.2}% {:>12.3} {:>12.3} {:>12}",
            p.world,
            p.sim_off_s,
            p.sim_on_s,
            p.sim_overhead_frac() * 100.0,
            p.wall_off_ms,
            p.wall_on_ms,
            p.ledger_peak_bytes >> 10
        );
    }
    for pt in &report.policies {
        println!("wasted fraction @ {} GPUs:", pt.world);
        for r in &pt.rows {
            println!(
                "  {:<18} predicted {:.4}%  simulated {:.4}% (sd {:.4})",
                r.name,
                r.predicted_wf * 100.0,
                r.simulated_wf * 100.0,
                r.sd
            );
        }
    }
    let d = &report.demo;
    println!(
        "demo: dp={} iters={} state={} B, store_reads={}, bit_identical={}, \
         in_network {:.3}s vs streamed {:.3}s vs store {:.3}s",
        d.world,
        d.iters,
        d.state_bytes,
        d.store_reads,
        d.bitwise_identical,
        d.in_network_s,
        d.streamed_s,
        d.store_s
    );
    if !d.bitwise_identical || d.store_reads != 0 {
        eprintln!("recovery demo violated its invariants");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

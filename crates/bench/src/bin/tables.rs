//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! tables            # everything
//! tables 3          # only Table 3
//! tables scaling    # the §6.5 scaling figure
//! tables dollars    # the §5.1 dollar-cost estimates
//! ```

use bench::{
    dollar_table, scaling_figure, table1, table2, table3, table4, table5, table6, table7, table8,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // With no arguments, regenerate the paper's tables/figures (the
    // ablations are opt-in); otherwise run exactly the named sections.
    let want = |key: &str| {
        if args.is_empty() {
            !key.starts_with("ablation")
        } else {
            args.iter().any(|a| a == key)
        }
    };
    let mut printed = false;
    type Section = (&'static str, fn() -> bench::Table);
    let sections: Vec<Section> = vec![
        ("1", table1),
        ("2", table2),
        ("3", table3),
        ("4", table4),
        ("5", table5),
        ("6", table6),
        ("7", table7),
        ("8", table8),
        ("scaling", scaling_figure),
        ("dollars", dollar_table),
        ("ablation-watchdog", bench::ablation_watchdog),
        ("ablation-logging", bench::ablation_logging),
        ("ablation-recovery", bench::ablation_recovery_paths),
    ];
    for (key, f) in sections {
        if want(key) {
            eprintln!("[tables] generating table {key}...");
            println!("{}", f().render());
            printed = true;
        }
    }
    if !printed {
        eprintln!("usage: tables [1-8|scaling|dollars|ablation-watchdog|ablation-logging|ablation-recovery]...");
        std::process::exit(2);
    }
}

//! Checkpoint-pipeline benchmark: monolithic (seed path) vs sharded
//! write/read/assemble throughput and delta-mode hit-rate, emitted as
//! `BENCH_ckpt.json`.
//!
//! ```sh
//! ckpt_bench [payload_mib] [out_path]
//! ```
//!
//! Defaults: 64 MiB payload, 2 MiB shards, worker pools {1, 4, 8} plus
//! the auto-sized default pool as its own row, report written to
//! `BENCH_ckpt.json` in the working directory.

use bench::ckpt::run_ckpt_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let payload_mib: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(64);
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_ckpt.json".to_string());
    let payload = payload_mib << 20;
    let shard_bytes = 2 << 20;
    eprintln!(
        "measuring checkpoint pipeline: {payload_mib} MiB payload, \
         {} KiB shards, workers {{1, 4, 8}} + auto ...",
        shard_bytes >> 10
    );
    let report = match run_ckpt_bench(payload, shard_bytes, &[1, 4, 8], 9) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>14}",
        "config", "workers", "write MB/s", "read MB/s", "assemble MB/s"
    );
    for c in &report.configs {
        println!(
            "{:<12} {:>7} {:>12.1} {:>12.1} {:>14.1}",
            c.name, c.workers, c.write_mbps, c.read_mbps, c.assemble_mbps
        );
    }
    println!(
        "sharded write speedup vs monolithic: {:.2}x",
        report.best_speedup()
    );
    println!(
        "delta: {}/{} shards reused ({:.1}% hit rate), {:.1} MB/s",
        report.delta.shards_reused,
        report.delta.shards_total,
        report.delta.hit_rate() * 100.0,
        report.delta.write_mbps
    );
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

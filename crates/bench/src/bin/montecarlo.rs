//! Monte-Carlo validation of the §5 analytical model: simulate months of
//! training under Poisson failures per policy and compare measured wasted
//! fractions against the closed forms.
//!
//! ```sh
//! montecarlo [n_gpus] [days]
//! ```

use bench::montecarlo::{predicted_fraction, replicate, Policy};
use jitckpt::analysis::JobParams;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let days = *args.get(1).unwrap_or(&90) as f64;
    let horizon = days * 86_400.0;
    let ns: Vec<usize> = if let Some(n) = args.first() {
        vec![*n as usize]
    } else {
        vec![64, 1024, 8192]
    };
    println!("Monte-Carlo vs closed-form wasted fractions (BERT-L-PT params, {days} days):\n");
    println!(
        "{:>6}  {:<22}  {:>12}  {:>12}  {:>8}",
        "N", "policy", "simulated", "predicted", "Δ rel"
    );
    for n in ns {
        let p = JobParams::new(7.1, 2.0 / 992.0, 11.2, n, 0.4);
        for (name, policy) in [
            ("periodic @ c*", Policy::PeriodicOptimal),
            ("user-level JIT", Policy::JitUser),
            ("transparent JIT", Policy::JitTransparent),
        ] {
            let (mean, _sd) = replicate(&p, policy, horizon, 8);
            let pred = predicted_fraction(&p, policy);
            println!(
                "{:>6}  {:<22}  {:>11.4}%  {:>11.4}%  {:>7.1}%",
                n,
                name,
                mean * 100.0,
                pred * 100.0,
                (mean - pred).abs() / pred.max(1e-12) * 100.0
            );
        }
    }
    println!("\nThe closed forms (eq. 1, 5-8) track the event-level simulation;");
    println!("the paper's analysis is internally consistent.");
}

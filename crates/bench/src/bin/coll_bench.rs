//! Collective data-plane benchmark: slot reference vs chunked ring
//! all-reduce wall time across world and payload sizes, bucketed-overlap
//! minibatch time, and pipelined recovery streaming vs the store
//! round-trip, emitted as `BENCH_coll.json`.
//!
//! ```sh
//! coll_bench [reps] [recovery_mib] [out_path]
//! ```
//!
//! Defaults: 6 timed repetitions per point, a 64 MiB recovery state,
//! report written to `BENCH_coll.json` in the working directory.

use bench::collbench::run_coll_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(6);
    let recovery_mib: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_coll.json".to_string());
    let worlds = [2usize, 4, 8];
    let payloads = [64 << 10, 1 << 20, 4 << 20];
    eprintln!(
        "measuring collectives: worlds {worlds:?} x payloads {payloads:?} B, \
         {reps} reps/point, {recovery_mib} MiB recovery state ..."
    );
    let report = match run_coll_bench(&worlds, &payloads, reps, 4, 3, recovery_mib) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<6} {:>12} {:>10} {:>10} {:>8}",
        "world", "payload B", "slot ms", "ring ms", "speedup"
    );
    for p in &report.ring {
        println!(
            "{:<6} {:>12} {:>10.3} {:>10.3} {:>7.2}x",
            p.world,
            p.payload_bytes,
            p.slot_ms,
            p.ring_ms,
            p.speedup()
        );
    }
    println!(
        "min speedup at scale (world >= 4, payload >= 1 MiB): {:.2}x",
        report.min_speedup_at_scale()
    );
    let o = &report.overlap;
    println!(
        "bucket overlap (dp={}, {} iters): eager {:.6} s/mb, bucketed {:.6} s/mb \
         ({:.6} s saved)",
        o.dp,
        o.iters,
        o.eager_s,
        o.bucketed_s,
        o.saving_s()
    );
    let r = &report.recovery;
    println!(
        "recovery ({} MiB state): streamed {:.3} s vs store round-trip {:.3} s \
         ({:.2}x)",
        r.state_bytes >> 20,
        r.streamed_s,
        r.store_s,
        r.speedup()
    );
    if report.min_speedup_at_scale() < 2.0 {
        eprintln!(
            "WARNING: ring speedup below the 2x acceptance floor at scale \
             ({:.2}x)",
            report.min_speedup_at_scale()
        );
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

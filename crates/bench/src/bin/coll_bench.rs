//! Collective data-plane benchmark: slot reference vs chunked ring
//! all-reduce wall time across world and payload sizes, hierarchical vs
//! flat ring on a simulated-time scale ladder (offered driver, no
//! per-rank threads), the ring chunk-size sweep, bucketed-overlap
//! minibatch time, and pipelined recovery streaming vs the store
//! round-trip, emitted as `BENCH_coll.json`.
//!
//! ```sh
//! coll_bench [reps] [recovery_mib] [out_path] [max_hier_world]
//! ```
//!
//! Defaults: 6 timed repetitions per point, a 64 MiB recovery state,
//! report written to `BENCH_coll.json` in the working directory, scale
//! ladder up to 2048 simulated ranks.

use bench::collbench::{run_coll_bench, CollBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(6);
    let recovery_mib: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_coll.json".to_string());
    let max_hier_world: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(2048);
    let mut cfg = CollBenchConfig {
        reps,
        recovery_mib,
        ..CollBenchConfig::default()
    };
    cfg.hier_worlds.retain(|w| *w <= max_hier_world);
    eprintln!(
        "measuring collectives: worlds {:?} x payloads {:?} B, {reps} reps/point, \
         hier ladder {:?} @ {} B, {recovery_mib} MiB recovery state ...",
        cfg.worlds, cfg.payloads, cfg.hier_worlds, cfg.hier_payload
    );
    let report = match run_coll_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<6} {:>12} {:>10} {:>10} {:>8}",
        "world", "payload B", "slot ms", "ring ms", "speedup"
    );
    for p in &report.ring {
        println!(
            "{:<6} {:>12} {:>10.3} {:>10.3} {:>7.2}x",
            p.world,
            p.payload_bytes,
            p.slot_ms,
            p.ring_ms,
            p.speedup()
        );
    }
    println!(
        "min speedup at scale (world >= 4, payload >= 1 MiB): {:.2}x",
        report.min_speedup_at_scale()
    );
    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "world", "nodes", "payload B", "ring sim ms", "hier sim ms", "speedup", "drive ms"
    );
    for p in &report.hier {
        println!(
            "{:<6} {:>6} {:>12} {:>12.3} {:>12.3} {:>7.2}x {:>10.3}",
            p.world,
            p.nodes,
            p.payload_bytes,
            p.ring_sim_s * 1e3,
            p.hier_sim_s * 1e3,
            p.speedup(),
            p.drive_wall_ms
        );
    }
    if report.hier.iter().any(|p| p.world >= 64 && p.nodes >= 2) {
        println!(
            "min hier speedup at scale (world >= 64): {:.2}x",
            report.min_hier_speedup_at_scale()
        );
    }
    println!(
        "chunk sweep (world={}, payload {} B):",
        report.sweep_world, report.sweep_payload
    );
    for p in &report.chunk_sweep {
        println!("  chunk {:>9} B: {:>9.3} ms", p.chunk_bytes, p.wall_ms);
    }
    let o = &report.overlap;
    println!(
        "bucket overlap (dp={}, {} iters): eager {:.6} s/mb, bucketed {:.6} s/mb \
         ({:.6} s saved)",
        o.dp,
        o.iters,
        o.eager_s,
        o.bucketed_s,
        o.saving_s()
    );
    let r = &report.recovery;
    println!(
        "recovery ({} MiB state): streamed {:.3} s vs store round-trip {:.3} s \
         ({:.2}x)",
        r.state_bytes >> 20,
        r.streamed_s,
        r.store_s,
        r.speedup()
    );
    if report.min_speedup_at_scale() < 2.0 {
        eprintln!(
            "WARNING: ring speedup below the 2x acceptance floor at scale \
             ({:.2}x)",
            report.min_speedup_at_scale()
        );
    }
    if report
        .hier
        .iter()
        .any(|p| p.world >= 64 && p.nodes >= 2 && p.speedup() <= 1.0)
    {
        eprintln!("WARNING: hierarchical engine failed to beat the flat ring at scale");
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

//! Multi-job storage benchmark: write-behind vs. blocking persistence,
//! jobs×ranks throughput under churn, gate isolation, backend
//! round-trip bit identity, and the serial-vs-parallel restore matrix,
//! emitted as `BENCH_store.json`.
//!
//! ```sh
//! store_bench [payload_mib] [gens] [out_path]
//! ```
//!
//! Defaults: 4 MiB head-to-head payload, 6 generations, jobs ladder
//! {1, 4, 16} × ranks {8, 64}, report written to `BENCH_store.json` in
//! the working directory.

use bench::storebench::run_store_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let payload_mib: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    let gens: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_store.json".to_string());
    eprintln!(
        "measuring multi-job store persistence: {payload_mib} MiB head-to-head payload, \
         {gens} generations, jobs {{1, 4, 16}} x ranks {{8, 64}} under churn ..."
    );
    let report = match run_store_bench(payload_mib << 20, gens, &[1, 4, 16], &[8, 64]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<10} {:>14} {:>18} {:>9}",
        "backend", "blocking MB/s", "write-behind MB/s", "speedup"
    );
    for h in &report.head_to_head {
        println!(
            "{:<10} {:>14.1} {:>18.1} {:>8.2}x",
            h.backend,
            h.blocking_mbps,
            h.write_behind_mbps,
            h.speedup()
        );
    }
    println!();
    println!(
        "{:>5} {:>6} {:>8} {:>7} {:>7} {:>10}",
        "jobs", "ranks", "durable", "failed", "churn", "MB/s"
    );
    for c in &report.ladder {
        println!(
            "{:>5} {:>6} {:>8} {:>7} {:>7} {:>10.1}",
            c.jobs, c.ranks, c.ok_checkpoints, c.failed_checkpoints, c.churn_events, c.mbps
        );
    }
    println!();
    println!(
        "isolation: healthy {:.1} MB/s alone, {:.1} MB/s alongside throttled job \
         ({:.0}% retained, slow job durable: {})",
        report.isolation.healthy_alone_mbps,
        report.isolation.healthy_alongside_mbps,
        report.isolation.retention() * 100.0,
        report.isolation.slow_job_durable
    );
    println!(
        "bit identity: {}",
        report
            .bit_identity
            .iter()
            .map(|(n, ok)| format!("{n}={ok}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "write-behind speedup over blocking (objstore): {:.2}x",
        report.objstore_speedup()
    );
    println!();
    println!(
        "{:<10} {:>7} {:>6} {:>11} {:>13} {:>9} {:>7} {:>9}",
        "backend", "shards", "depth", "serial ms", "parallel ms", "speedup", "reads", "fallback"
    );
    for r in &report.restore {
        println!(
            "{:<10} {:>7} {:>6} {:>11.2} {:>13.2} {:>8.2}x {:>7} {:>9}",
            r.backend,
            r.shards,
            r.delta_depth,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.shard_reads,
            r.fallback_hits
        );
    }
    println!(
        "parallel restore speedup over serial (objstore, 16 shards): {:.2}x",
        report.parallel_restore_speedup_objstore()
    );
    println!(
        "delta list traffic over {} writes: {} scans uncached vs {} with the meta cache \
         ({} listings saved)",
        report.list_savings.writes,
        report.list_savings.scan_lists,
        report.list_savings.cached_lists,
        report.list_savings.saved()
    );

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

//! Transparent-interception benchmark: per-op overhead of the batched
//! proxy hot path vs per-call flushing vs direct execution, a
//! flush-capacity sweep, and replay with/without log compaction,
//! emitted as `BENCH_proxy.json`.
//!
//! ```sh
//! proxy_bench [ops_per_rep] [replay_ops] [out_path]
//! ```
//!
//! Defaults: 20_000 ops per timed repetition, a 12_000-op replay log,
//! report written to `BENCH_proxy.json` in the working directory.

use bench::proxybench::run_proxy_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let replay_ops: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(12_000);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_proxy.json".to_string());
    let sweep = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    eprintln!(
        "measuring transparent interception: {ops} ops/rep, \
         flush capacities {sweep:?}, {replay_ops}-op replay log ..."
    );
    let report = match run_proxy_bench(ops, 5, &sweep, replay_ops, 3) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{:<20} {:>9} {:>12}", "config", "batch cap", "per-op ns");
    for r in &report.per_op {
        println!(
            "{:<20} {:>9} {:>12.1}",
            r.name, r.batch_capacity, r.per_op_ns
        );
    }
    println!(
        "interception overhead: {:.1} ns/op unbatched, {:.1} ns/op batched \
         ({:.2}x reduction)",
        report.overhead_ns("proxied-unbatched"),
        report.overhead_ns("proxied-batched"),
        report.overhead_reduction()
    );
    println!("flush-capacity sweep:");
    for p in &report.sweep {
        println!("  cap {:>4}: {:>10.1} ns/op", p.capacity, p.per_op_ns);
    }
    let r = &report.replay;
    println!(
        "replay: {} ops -> {} after compaction ({:.1}% kept); \
         full {:.2} ms, compacted {:.2} ms ({:.2}x speedup)",
        r.log_ops,
        r.compacted_ops,
        r.kept_ratio() * 100.0,
        r.full_ms,
        r.compacted_ms,
        r.speedup()
    );
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

//! Collective data-plane benchmark harness: wall-clock time of the
//! chunked ring engine vs the slot reference across world and payload
//! sizes, the hierarchical engine vs the flat ring on a simulated-time
//! scale ladder to 2048 ranks (driven thread-free through the offer
//! path), the ring chunk-size sensitivity sweep, the virtual-time effect
//! of gradient bucketing on minibatch duration, and pipelined
//! replica-recovery streaming vs the store round-trip it replaces.
//!
//! The ring measurement is an honest end-to-end comparison of the two
//! delivery contracts: the slot rows run the seed's `all_reduce`
//! (monolithic single-pass reduction, private full-vector clone per
//! rank), the ring rows run `all_reduce_shared` (chunked cache-blocked
//! reduction, `Arc` delivery) — exactly the paths the trainer used
//! before and after the tentpole. On a single-core host the win is copy
//! elimination and cache blocking, not thread parallelism, which is why
//! it grows with both world size (more clone-outs avoided) and payload
//! (more of the reduction runs cache-blocked).

use collectives::{CollEngine, CommWorld, Communicator, NullObserver, ReduceOp, RingConfig};
use dltrain::{JobSetup, ModelConfig, OptimizerKind, RankTrainer, TrainConfig, TrainState};
use jitckpt::stream;
use proxy::DirectExecutor;
use simcore::cost::{CostModel, StorageTier};
use simcore::layout::ParallelLayout;
use simcore::sync::Mutex;
use simcore::time::ClockBoard;
use simcore::{pool, GpuId, RankId, SimError, SimResult, SimTime};
use simgpu::{BufferTag, Gpu};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One slot-vs-ring measurement point.
#[derive(Debug, Clone, Copy)]
pub struct RingPoint {
    /// Group size.
    pub world: usize,
    /// Payload bytes per rank (f32 elements × 4).
    pub payload_bytes: usize,
    /// Mean wall-clock milliseconds per slot-engine all-reduce.
    pub slot_ms: f64,
    /// Mean wall-clock milliseconds per ring-engine all-reduce.
    pub ring_ms: f64,
}

impl RingPoint {
    /// Slot time over ring time.
    pub fn speedup(&self) -> f64 {
        self.slot_ms / self.ring_ms
    }
}

/// One hierarchical-vs-flat measurement point from the offered
/// (thread-free) scale driver.
#[derive(Debug, Clone, Copy)]
pub struct HierPoint {
    /// Group size (simulated ranks).
    pub world: usize,
    /// Nodes spanned under contiguous 8-rank placement.
    pub nodes: usize,
    /// Payload bytes per rank.
    pub payload_bytes: usize,
    /// Simulated seconds per flat-ring all-reduce.
    pub ring_sim_s: f64,
    /// Simulated seconds per hierarchical all-reduce.
    pub hier_sim_s: f64,
    /// Wall-clock milliseconds the single driver thread spent offering
    /// and folding all `world` contributions for the hierarchical engine
    /// — the scalability evidence (no per-rank OS thread anywhere).
    pub drive_wall_ms: f64,
}

impl HierPoint {
    /// Flat-ring simulated time over hierarchical simulated time.
    pub fn speedup(&self) -> f64 {
        self.ring_sim_s / self.hier_sim_s
    }
}

/// One row of the ring chunk-size sensitivity sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChunkPoint {
    /// Chunk granularity under test (both hop classes pinned to it).
    pub chunk_bytes: usize,
    /// Wall-clock milliseconds per offered all-reduce at this
    /// granularity (pure data-plane fold cost).
    pub wall_ms: f64,
}

/// Virtual-time effect of gradient bucketing on one training setup.
#[derive(Debug, Clone, Copy)]
pub struct OverlapResult {
    /// Data-parallel degree.
    pub dp: usize,
    /// Iterations measured.
    pub iters: u64,
    /// Virtual seconds per minibatch with bucketing off (one all-reduce
    /// per gradient group, the eager reference path).
    pub eager_s: f64,
    /// Virtual seconds per minibatch with the default bucket threshold.
    pub bucketed_s: f64,
}

impl OverlapResult {
    /// Virtual seconds saved per minibatch by bucketed overlap.
    pub fn saving_s(&self) -> f64 {
        self.eager_s - self.bucketed_s
    }
}

/// Streamed replica recovery vs the store round-trip it replaces.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCompare {
    /// Logical state bytes transferred.
    pub state_bytes: u64,
    /// Virtual seconds for the receiver of the pipelined shard stream
    /// (preamble + CRC-framed shards, decode + apply overlapped with
    /// transfer). Excludes the process restart both paths share.
    pub streamed_s: f64,
    /// Virtual seconds for the store round-trip: the healthy replica
    /// writes its state to the disk tier and the restoring rank reads it
    /// back.
    pub store_s: f64,
}

impl RecoveryCompare {
    /// Store round-trip time over streamed time.
    pub fn speedup(&self) -> f64 {
        self.store_s / self.streamed_s
    }
}

/// Full collective benchmark report (`BENCH_coll.json`).
#[derive(Debug, Clone)]
pub struct CollReport {
    /// Timed repetitions per ring point.
    pub reps: usize,
    /// Slot-vs-ring matrix.
    pub ring: Vec<RingPoint>,
    /// Hierarchical-vs-flat scale ladder (offered driver).
    pub hier: Vec<HierPoint>,
    /// Ring chunk-size sensitivity sweep.
    pub chunk_sweep: Vec<ChunkPoint>,
    /// World size the chunk sweep ran at.
    pub sweep_world: usize,
    /// Payload the chunk sweep ran at.
    pub sweep_payload: usize,
    /// Bucketed-overlap minibatch comparison.
    pub overlap: OverlapResult,
    /// Streamed-recovery comparison.
    pub recovery: RecoveryCompare,
}

impl CollReport {
    /// Minimum ring speedup over the at-scale region (world ≥ 4 and
    /// payload ≥ 1 MiB) — the acceptance metric (≥ 2x).
    pub fn min_speedup_at_scale(&self) -> f64 {
        self.ring
            .iter()
            .filter(|p| p.world >= 4 && p.payload_bytes >= 1 << 20)
            .map(RingPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Minimum hierarchical speedup over flat ring at multi-node scale
    /// (world ≥ 64, which spans ≥ 2 nodes at 8 ranks/node) — the
    /// acceptance metric for the hierarchical engine (> 1x).
    pub fn min_hier_speedup_at_scale(&self) -> f64 {
        self.hier
            .iter()
            .filter(|p| p.world >= 64 && p.nodes >= 2)
            .map(HierPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the report as the `BENCH_coll.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"coll\",\n");
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str("  \"ring\": [\n");
        for (i, p) in self.ring.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"world\": {}, \"payload_bytes\": {}, \"slot_ms\": {:.3}, \
                 \"ring_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                p.world,
                p.payload_bytes,
                p.slot_ms,
                p.ring_ms,
                p.speedup(),
                if i + 1 < self.ring.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"min_speedup_at_scale\": {:.2},\n",
            self.min_speedup_at_scale()
        ));
        out.push_str("  \"hier\": [\n");
        for (i, p) in self.hier.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"world\": {}, \"nodes\": {}, \"payload_bytes\": {}, \
                 \"ring_sim_ms\": {:.3}, \"hier_sim_ms\": {:.3}, \"speedup\": {:.2}, \
                 \"drive_wall_ms\": {:.3}}}{}\n",
                p.world,
                p.nodes,
                p.payload_bytes,
                p.ring_sim_s * 1e3,
                p.hier_sim_s * 1e3,
                p.speedup(),
                p.drive_wall_ms,
                if i + 1 < self.hier.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        if self.hier.iter().any(|p| p.world >= 64 && p.nodes >= 2) {
            out.push_str(&format!(
                "  \"min_hier_speedup_at_scale\": {:.2},\n",
                self.min_hier_speedup_at_scale()
            ));
        }
        out.push_str(&format!(
            "  \"chunk_sweep\": {{\"world\": {}, \"payload_bytes\": {}, \"points\": [\n",
            self.sweep_world, self.sweep_payload
        ));
        for (i, p) in self.chunk_sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"chunk_bytes\": {}, \"wall_ms\": {:.3}}}{}\n",
                p.chunk_bytes,
                p.wall_ms,
                if i + 1 < self.chunk_sweep.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]},\n");
        out.push_str(&format!(
            "  \"bucket_overlap\": {{\"dp\": {}, \"iters\": {}, \"eager_minibatch_s\": {:.6}, \
             \"bucketed_minibatch_s\": {:.6}, \"saving_s\": {:.6}}},\n",
            self.overlap.dp,
            self.overlap.iters,
            self.overlap.eager_s,
            self.overlap.bucketed_s,
            self.overlap.saving_s()
        ));
        out.push_str(&format!(
            "  \"recovery\": {{\"state_bytes\": {}, \"streamed_s\": {:.4}, \"store_s\": {:.4}, \
             \"speedup\": {:.2}}}\n",
            self.recovery.state_bytes,
            self.recovery.streamed_s,
            self.recovery.store_s,
            self.recovery.speedup()
        ));
        out.push_str("}\n");
        out
    }
}

/// Batches per engine per measurement; the median batch is reported,
/// which rejects scheduler/bandwidth outliers on a shared single-core
/// host without letting one lucky batch set the number.
const BATCHES: usize = 5;

/// One timed batch of `reps` free-running all-reduces on `comm`: ranks
/// advance through the generations without artificial barriers, exactly
/// like back-to-back gradient all-reduces. Contribution buffers are
/// materialized before the clock starts: cloning the per-rep input is
/// bench setup (every engine takes an owned Vec), not collective work,
/// and on a single core it would otherwise dominate the window and mask
/// the data-plane gap.
fn batch_all_reduce(
    comm: &Arc<Communicator>,
    inputs: &Arc<Vec<Vec<f32>>>,
    slot_delivery: bool,
    base_gen: u64,
    reps: usize,
) -> SimResult<Duration> {
    let n = inputs.len();
    let elems = inputs[0].len();
    let mut bufs: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|r| (0..reps).map(|_| inputs[r].clone()).collect())
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|r| {
            let comm = comm.clone();
            let mine = std::mem::take(&mut bufs[r]);
            std::thread::spawn(move || -> SimResult<()> {
                for (rep, buf) in mine.into_iter().enumerate() {
                    let gen = base_gen + rep as u64;
                    let rank = RankId(r as u32);
                    let bytes = (elems * 4) as u64;
                    if slot_delivery {
                        comm.all_reduce(rank, gen, buf, ReduceOp::Sum, bytes, &NullObserver)?;
                    } else {
                        comm.all_reduce_shared(
                            rank,
                            gen,
                            buf,
                            ReduceOp::Sum,
                            bytes,
                            &NullObserver,
                        )?;
                    }
                }
                Ok(())
            })
        })
        .collect();
    for h in handles {
        h.join()
            .map_err(|_| simcore::SimError::Protocol("bench rank panicked".into()))??;
    }
    Ok(start.elapsed())
}

fn median_secs(mut xs: Vec<Duration>) -> f64 {
    xs.sort();
    xs[xs.len() / 2].as_secs_f64()
}

/// Measures mean wall-clock seconds per all-reduce of `elems` f32s
/// across `n` ranks for BOTH engines, returned as `(slot_s, ring_s)`.
///
/// The engines run on separate communicators over the same world and
/// their batches are interleaved in time (slot, ring, slot, ring, ...),
/// so slow drift in effective memory bandwidth — minutes-scale
/// contention on a shared host — lands on both sides of the ratio
/// instead of on whichever engine happened to run later. A warm-up
/// batch per engine precedes the timed ones (allocator growth and
/// first-touch faults stay untimed); completed slots are pruned between
/// batches (no rank is inside a collective then, so pruning is
/// race-free); the median batch is reported.
pub fn measure_all_reduce(n: usize, elems: usize, reps: usize) -> SimResult<(f64, f64)> {
    let clock = Arc::new(ClockBoard::new(n));
    let world = CommWorld::new(clock, CostModel::v100(), 8);
    let ranks: Vec<RankId> = (0..n).map(|i| RankId(i as u32)).collect();
    let idxs: Vec<usize> = (0..n).collect();
    let slot_comm = world
        .create_comm(ranks.clone(), idxs.clone())
        .set_engine(CollEngine::Slot);
    let ring_comm = world
        .create_comm(ranks, idxs)
        .set_engine(CollEngine::default());
    let inputs: Arc<Vec<Vec<f32>>> = Arc::new(
        (0..n)
            .map(|r| (0..elems).map(|i| ((i + r) % 251) as f32 * 0.5).collect())
            .collect(),
    );
    batch_all_reduce(&slot_comm, &inputs, true, 0, 1)?; // warm-up
    batch_all_reduce(&ring_comm, &inputs, false, 0, 1)?;
    let mut gen = 1u64;
    let mut slot_t = Vec::with_capacity(BATCHES);
    let mut ring_t = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        slot_comm.prune_below(gen);
        ring_comm.prune_below(gen);
        slot_t.push(batch_all_reduce(&slot_comm, &inputs, true, gen, reps)?);
        ring_t.push(batch_all_reduce(&ring_comm, &inputs, false, gen, reps)?);
        gen += reps as u64;
    }
    Ok((
        median_secs(slot_t) / reps as f64,
        median_secs(ring_t) / reps as f64,
    ))
}

/// Runs the slot-vs-ring matrix over `worlds` × `payload_bytes`.
pub fn measure_ring_matrix(
    worlds: &[usize],
    payloads: &[usize],
    reps: usize,
) -> SimResult<Vec<RingPoint>> {
    let mut out = Vec::new();
    for &world in worlds {
        for &payload in payloads {
            let elems = payload / 4;
            let (slot, ring) = measure_all_reduce(world, elems, reps)?;
            out.push(RingPoint {
                world,
                payload_bytes: payload,
                slot_ms: slot * 1e3,
                ring_ms: ring * 1e3,
            });
        }
    }
    Ok(out)
}

/// Contribution-pattern arena size for the offered driver: buffers are
/// reused across ranks (rank `r` contributes pattern `r mod 8`), so a
/// 2048-rank point allocates 8 input buffers plus one accumulator — not
/// 2048 buffers and never 2048 OS threads.
const ARENA_PATTERNS: usize = 8;

/// Drives `passes` all-reduces of `elems` f32s over `n` simulated ranks
/// entirely from the calling thread via the non-blocking offer path
/// ([`Communicator::offer_reduce`]): contributions arrive in member
/// order, so each offer folds straight into the accumulator and no
/// per-rank state is ever parked. Returns (simulated seconds per
/// all-reduce, median wall-clock seconds per timed pass, the gen-0
/// result for bit-identity checks). A warm-up pass precedes the timed
/// ones; completed generations are pruned as the driver advances so at
/// most one slot is live.
fn offered_all_reduce(
    n: usize,
    elems: usize,
    engine: CollEngine,
    passes: usize,
) -> SimResult<(f64, f64, Arc<Vec<f32>>)> {
    let passes = passes.max(1);
    let clock = Arc::new(ClockBoard::new(n));
    let world = CommWorld::new(clock.clone(), CostModel::v100(), 8);
    let ranks: Vec<RankId> = (0..n).map(|i| RankId(i as u32)).collect();
    let idxs: Vec<usize> = (0..n).collect();
    let comm = world.create_comm(ranks, idxs).set_engine(engine);
    let k = ARENA_PATTERNS.min(n);
    let arena: Vec<Mutex<Vec<f32>>> = (0..k).map(|_| Mutex::new(vec![0.0; elems])).collect();
    pool::fan_out(k, k, "bench-fill", |p| {
        let mut buf = arena[p].lock();
        for (i, v) in buf.iter_mut().enumerate() {
            *v = ((i + p) % 251) as f32 * 0.5;
        }
    });
    let arena: Vec<Vec<f32>> = arena.into_iter().map(Mutex::into_inner).collect();
    let bytes = (elems * 4) as u64;
    let drive = |gen: u64| -> SimResult<Arc<Vec<f32>>> {
        for r in 0..n {
            comm.offer_reduce(RankId(r as u32), gen, &arena[r % k], ReduceOp::Sum, bytes)?;
        }
        comm.try_result(gen)?
            .ok_or_else(|| SimError::Protocol("offered all-reduce did not complete".into()))
    };
    let result = drive(0)?; // warm-up: allocator growth + first touch
    let sim0 = clock.now(0);
    let mut walls = Vec::with_capacity(passes);
    for gen in 1..=passes as u64 {
        comm.prune_below(gen);
        let start = Instant::now();
        drive(gen)?;
        walls.push(start.elapsed());
    }
    let sim_per_op = (clock.now(0) - sim0).as_secs() / passes as f64;
    Ok((sim_per_op, median_secs(walls), result))
}

/// Runs the hierarchical-vs-flat scale ladder at `payload` bytes per
/// rank: each world size is measured under both engines through the
/// offered driver, and the two results are required to be bit-identical
/// before the point is reported.
pub fn measure_hier_matrix(
    worlds: &[usize],
    payload: usize,
    passes: usize,
) -> SimResult<Vec<HierPoint>> {
    let elems = payload / 4;
    let cost = CostModel::v100();
    let mut out = Vec::new();
    for &world in worlds {
        let ring_cfg = RingConfig::from_cost(&cost);
        let (ring_sim, _, ring_res) =
            offered_all_reduce(world, elems, CollEngine::Ring(ring_cfg), passes)?;
        let (hier_sim, hier_wall, hier_res) =
            offered_all_reduce(world, elems, CollEngine::Hier(ring_cfg), passes)?;
        let identical = ring_res.len() == hier_res.len()
            && ring_res
                .iter()
                .zip(hier_res.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !identical {
            return Err(SimError::Protocol(format!(
                "hier all-reduce diverged bitwise from flat ring at world {world}"
            )));
        }
        out.push(HierPoint {
            world,
            nodes: world.div_ceil(8),
            payload_bytes: payload,
            ring_sim_s: ring_sim,
            hier_sim_s: hier_sim,
            drive_wall_ms: hier_wall * 1e3,
        });
    }
    Ok(out)
}

/// Sweeps the ring chunk size at a fixed world and payload: both hop
/// classes are pinned to each candidate granularity and the pure
/// data-plane fold is timed through the offered driver. Shows the
/// cache-blocking sensitivity that motivates the per-hop-class
/// cost-model defaults ([`RingConfig::from_cost`]).
pub fn measure_chunk_sweep(
    world: usize,
    payload: usize,
    chunks: &[usize],
    passes: usize,
) -> SimResult<Vec<ChunkPoint>> {
    let elems = payload / 4;
    let workers = RingConfig::default().workers;
    let mut out = Vec::new();
    for &chunk in chunks {
        let engine = CollEngine::Ring(RingConfig::uniform(chunk, workers));
        let (_, wall, _) = offered_all_reduce(world, elems, engine, passes)?;
        out.push(ChunkPoint {
            chunk_bytes: chunk,
            wall_ms: wall * 1e3,
        });
    }
    Ok(out)
}

/// Virtual seconds per minibatch of a data-parallel job at the given
/// gradient-bucket threshold (0 = the eager per-group reference path).
fn minibatch_virtual_s(dp: usize, iters: u64, bucket_bytes: u64) -> SimResult<f64> {
    let cfg = TrainConfig {
        layout: ParallelLayout::data_parallel(dp),
        model: ModelConfig {
            input_dim: 8,
            hidden: 32,
            blocks: 8,
            classes: 4,
            // Phantom-scale the gradients into the multi-MiB regime so
            // the bucket threshold actually partitions them.
            phantom_scale: 4000.0,
        },
        batch: 4,
        optimizer: OptimizerKind::sgd(0.05),
        seed: 11,
        ranks_per_node: 8,
        fsdp: false,
    };
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let clock = setup.clock.clone();
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let results = dltrain::run_ranks(dp, move |i| {
        let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
        let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
        let mut tr = RankTrainer::new(
            exec,
            cfg.clone(),
            &per_rank[i],
            cluster::FailureInjector::none(),
        )?;
        tr.set_bucket_bytes(bucket_bytes);
        tr.train(iters)
    });
    for r in results {
        r?;
    }
    let total = (0..dp)
        .map(|i| clock.now(i))
        .fold(SimTime::ZERO, SimTime::max);
    Ok(total.as_secs() / iters as f64)
}

/// Measures minibatch time with bucketing off vs the default threshold.
pub fn measure_bucket_overlap(dp: usize, iters: u64) -> SimResult<OverlapResult> {
    let eager_s = minibatch_virtual_s(dp, iters, 0)?;
    let bucketed_s = minibatch_virtual_s(dp, iters, dltrain::trainer::DEFAULT_BUCKET_BYTES)?;
    Ok(OverlapResult {
        dp,
        iters,
        eager_s,
        bucketed_s,
    })
}

/// A synthetic `TrainState` of roughly `mib` MiB of f32 parameters.
pub fn synthetic_state(mib: usize) -> TrainState {
    let elems = mib * (1 << 20) / 4;
    let data: Vec<f32> = (0..elems).map(|i| (i % 509) as f32 * 0.25).collect();
    TrainState {
        iteration: 42,
        opt_t: 42,
        buffers: vec![("model.flat".into(), BufferTag::Param, data)],
        logical_bytes: (elems * 4) as u64,
    }
}

/// Measures the virtual time of a pipelined recovery stream of an
/// `mib`-MiB state against the disk-tier store round-trip it replaces
/// (write by the healthy replica + read by the restoring rank). The
/// process restart both paths share is excluded from both sides.
pub fn measure_recovery(mib: usize, shard_bytes: usize) -> SimResult<RecoveryCompare> {
    let clock = Arc::new(ClockBoard::new(2));
    let world = CommWorld::new(clock.clone(), CostModel::v100(), 8);
    let cost = CostModel::v100();
    let state = synthetic_state(mib);
    stream::send_state(
        &world,
        &cost,
        RankId(0),
        0,
        RankId(1),
        true,
        &state,
        shard_bytes,
    )?;
    stream::recv_state(
        &world,
        &cost,
        RankId(0),
        RankId(1),
        1,
        Duration::from_secs(10),
    )?;
    let streamed = clock.now(1);
    let bytes = state.logical_bytes;
    let store = cost.checkpoint_write(bytes, StorageTier::Disk, 8)
        + cost.checkpoint_read(bytes, StorageTier::Disk, 8);
    Ok(RecoveryCompare {
        state_bytes: bytes,
        streamed_s: streamed.as_secs(),
        store_s: store.as_secs(),
    })
}

/// The full measurement matrix. `Default` is the shipped
/// `BENCH_coll.json` configuration; tests and smokes shrink it.
#[derive(Debug, Clone)]
pub struct CollBenchConfig {
    /// World sizes for the threaded slot-vs-ring matrix.
    pub worlds: Vec<usize>,
    /// Payload sizes (bytes) for the slot-vs-ring matrix.
    pub payloads: Vec<usize>,
    /// Timed repetitions per slot-vs-ring point.
    pub reps: usize,
    /// Data-parallel degree of the bucket-overlap measurement.
    pub overlap_dp: usize,
    /// Iterations of the bucket-overlap measurement.
    pub overlap_iters: u64,
    /// Recovery-stream state size (MiB).
    pub recovery_mib: usize,
    /// World sizes for the hierarchical-vs-flat scale ladder (offered
    /// driver — no per-rank threads, so thousands of ranks are cheap).
    pub hier_worlds: Vec<usize>,
    /// Payload (bytes) per rank for the scale ladder.
    pub hier_payload: usize,
    /// World size of the chunk-size sweep.
    pub sweep_world: usize,
    /// Payload (bytes) of the chunk-size sweep.
    pub sweep_payload: usize,
    /// Candidate chunk granularities for the sweep.
    pub sweep_chunks: Vec<usize>,
}

impl Default for CollBenchConfig {
    fn default() -> Self {
        CollBenchConfig {
            worlds: vec![2, 4, 8],
            payloads: vec![64 << 10, 1 << 20, 4 << 20],
            reps: 6,
            overlap_dp: 4,
            overlap_iters: 3,
            recovery_mib: 64,
            hier_worlds: vec![16, 64, 256, 1024, 2048],
            hier_payload: 4 << 20,
            sweep_world: 8,
            sweep_payload: 4 << 20,
            sweep_chunks: vec![32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20],
        }
    }
}

/// Runs the full measurement matrix.
pub fn run_coll_bench(cfg: &CollBenchConfig) -> SimResult<CollReport> {
    let ring = measure_ring_matrix(&cfg.worlds, &cfg.payloads, cfg.reps)?;
    // The offered driver is deterministic in simulated time; a few wall
    // passes suffice for the median.
    let passes = cfg.reps.clamp(1, 3);
    let hier = measure_hier_matrix(&cfg.hier_worlds, cfg.hier_payload, passes)?;
    let chunk_sweep = measure_chunk_sweep(
        cfg.sweep_world,
        cfg.sweep_payload,
        &cfg.sweep_chunks,
        passes,
    )?;
    let overlap = measure_bucket_overlap(cfg.overlap_dp, cfg.overlap_iters)?;
    let recovery = measure_recovery(cfg.recovery_mib, 4 << 20)?;
    Ok(CollReport {
        reps: cfg.reps,
        ring,
        hier,
        chunk_sweep,
        sweep_world: cfg.sweep_world,
        sweep_payload: cfg.sweep_payload,
        overlap,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_holds_on_tiny_run() -> SimResult<()> {
        // Tiny sizes: validates plumbing, not performance — the shipped
        // BENCH_coll.json comes from `scripts/bench.sh`.
        let cfg = CollBenchConfig {
            worlds: vec![2],
            payloads: vec![16 << 10],
            reps: 2,
            overlap_dp: 2,
            overlap_iters: 2,
            recovery_mib: 1,
            hier_worlds: vec![16],
            hier_payload: 64 << 10,
            sweep_world: 2,
            sweep_payload: 16 << 10,
            sweep_chunks: vec![4 << 10, 16 << 10],
        };
        let report = run_coll_bench(&cfg)?;
        assert_eq!(report.ring.len(), 1);
        // 16 ranks span 2 nodes: every flat-ring step is gated by the NIC
        // class while hier keeps 14 of 16 hops on NVLink — it must win
        // (and bit-identity vs flat is asserted inside the measurement).
        assert_eq!(report.hier.len(), 1);
        assert!(
            report.hier[0].speedup() > 1.0,
            "hier must beat flat ring across nodes: {:?}",
            report.hier[0]
        );
        assert_eq!(report.chunk_sweep.len(), 2);
        assert!(report.chunk_sweep.iter().all(|p| p.wall_ms > 0.0));
        assert!(report.ring[0].slot_ms > 0.0 && report.ring[0].ring_ms > 0.0);
        assert!(report.overlap.eager_s > 0.0);
        assert!(
            report.overlap.bucketed_s <= report.overlap.eager_s,
            "bucketing must not slow the minibatch: {:?}",
            report.overlap
        );
        assert!(
            report.recovery.speedup() > 1.0,
            "streamed restore must beat the store round-trip: {:?}",
            report.recovery
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"coll\""), "{json}");
        assert!(json.contains("min_speedup_at_scale"), "{json}");
        assert!(json.contains("\"hier\""), "{json}");
        assert!(json.contains("\"chunk_sweep\""), "{json}");
        Ok(())
    }
}

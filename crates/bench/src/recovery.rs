//! In-network recovery benchmark harness (`BENCH_recovery.json`):
//!
//! 1. **Steady-state tap overhead** — the offered (thread-free) driver
//!    runs back-to-back ring all-reduces with and without a
//!    [`GradLedger`] attached to every member, at world sizes up to 256.
//!    The tap adds *zero* virtual time by construction (it is an `Arc`
//!    refcount bump after the generation finalizes, never on the
//!    data-plane critical path), so the honest cost story is: simulated
//!    overhead identically 0, wall-clock overhead of the bump + ledger
//!    bookkeeping reported as measured.
//! 2. **Recovery-scheme head-to-head** — predicted (§5 closed forms) and
//!    Monte-Carlo wasted fractions for periodic-optimal, user-level JIT,
//!    transparent JIT, and in-network replication, at world ∈ {8, 64,
//!    256}, with the in-network reconstruction tail taken from the
//!    measured demo below rather than guessed.
//! 3. **End-to-end demo** — a data-parallel job trains with ledgers
//!    attached, one rank "dies", survivors stream their retained shard
//!    slices, and the replacement replays the reduced history to a
//!    bit-identical state — counting checkpoint-store reads (zero) and
//!    the virtual-time cost against the streamed-replica and store
//!    restore paths.

use crate::montecarlo::{predicted_fraction, replicate, Policy};
use cluster::{FailureInjector, SharedStore};
use collectives::{CollEngine, CommWorld, GradLedger, LedgerConfig, ReduceOp, RingConfig};
use dltrain::trainer::DEFAULT_BUCKET_BYTES;
use dltrain::{JobSetup, RankTrainer, TrainConfig, TrainState};
use jitckpt::analysis::JobParams;
use jitckpt::checkpoint::{self, CkptKind};
use jitckpt::stream;
use proxy::DirectExecutor;
use simcore::cost::{CostModel, StorageTier};
use simcore::sync::Mutex;
use simcore::time::ClockBoard;
use simcore::{pool, GpuId, JobId, RankId, SimError, SimResult};
use simgpu::Gpu;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One steady-state tap measurement point.
#[derive(Debug, Clone, Copy)]
pub struct TapPoint {
    /// Group size (simulated ranks, offered driver — no rank threads).
    pub world: usize,
    /// Payload bytes per all-reduce.
    pub payload_bytes: usize,
    /// Timed passes.
    pub passes: usize,
    /// Simulated seconds per all-reduce, no ledgers attached.
    pub sim_off_s: f64,
    /// Simulated seconds per all-reduce, a ledger on every member.
    pub sim_on_s: f64,
    /// Wall-clock milliseconds per pass, no ledgers.
    pub wall_off_ms: f64,
    /// Wall-clock milliseconds per pass, ledgers on.
    pub wall_on_ms: f64,
    /// Peak accounted ledger bytes on one member during the run.
    pub ledger_peak_bytes: usize,
}

impl TapPoint {
    /// Simulated-time overhead fraction of the tap (0 by construction;
    /// reported measured, not assumed).
    pub fn sim_overhead_frac(&self) -> f64 {
        if self.sim_off_s == 0.0 {
            return 0.0;
        }
        (self.sim_on_s - self.sim_off_s) / self.sim_off_s
    }
}

/// One recovery-scheme comparison row.
#[derive(Debug, Clone, Copy)]
pub struct PolicyRow {
    /// Scheme label.
    pub name: &'static str,
    /// §5 closed-form wasted fraction.
    pub predicted_wf: f64,
    /// Monte-Carlo mean wasted fraction.
    pub simulated_wf: f64,
    /// Monte-Carlo sample standard deviation.
    pub sd: f64,
}

/// Head-to-head at one world size.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// GPU count.
    pub world: usize,
    /// Rows in scheme order.
    pub rows: Vec<PolicyRow>,
}

/// End-to-end ledger-recovery demo result.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryDemo {
    /// Data-parallel degree of the demo job.
    pub world: usize,
    /// Iterations trained (and replayed).
    pub iters: u64,
    /// Logical bytes of the recovered state.
    pub state_bytes: u64,
    /// Checkpoint-store reads during the in-network recovery.
    pub store_reads: u64,
    /// Whether the replayed state matched the lost rank's bit for bit.
    pub bitwise_identical: bool,
    /// Virtual seconds of the in-network path: slice receive + apply +
    /// deterministic optimizer replay on the replacement.
    pub in_network_s: f64,
    /// Virtual seconds for the PR 5 streamed-replica restore of the
    /// same state (one store read by the owner, excluded here — pure
    /// stream receive cost).
    pub streamed_s: f64,
    /// Virtual seconds for the §3.3 store round-trip (write + read
    /// through the disk tier).
    pub store_s: f64,
}

/// Full report (`BENCH_recovery.json`).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Steady-state tap matrix.
    pub tap: Vec<TapPoint>,
    /// Per-world policy comparison.
    pub policies: Vec<PolicyPoint>,
    /// End-to-end demo.
    pub demo: RecoveryDemo,
}

impl RecoveryReport {
    /// Maximum simulated-time tap overhead across worlds ≥ 64 — the
    /// acceptance metric (≤ 0.02 of the collective's own time, and in
    /// fact identically 0).
    pub fn max_sim_overhead_at_scale(&self) -> f64 {
        self.tap
            .iter()
            .filter(|p| p.world >= 64)
            .map(TapPoint::sim_overhead_frac)
            .fold(0.0, f64::max)
    }

    /// Renders the report as the `BENCH_recovery.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"recovery\",\n");
        out.push_str("  \"tap\": [\n");
        for (i, p) in self.tap.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"world\": {}, \"payload_bytes\": {}, \"passes\": {}, \
                 \"sim_off_s\": {:.6}, \"sim_on_s\": {:.6}, \"sim_overhead_frac\": {:.6}, \
                 \"wall_off_ms\": {:.3}, \"wall_on_ms\": {:.3}, \"ledger_peak_bytes\": {}}}{}\n",
                p.world,
                p.payload_bytes,
                p.passes,
                p.sim_off_s,
                p.sim_on_s,
                p.sim_overhead_frac(),
                p.wall_off_ms,
                p.wall_on_ms,
                p.ledger_peak_bytes,
                if i + 1 < self.tap.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"max_sim_overhead_at_scale\": {:.6},\n",
            self.max_sim_overhead_at_scale()
        ));
        out.push_str("  \"policies\": [\n");
        for (i, pt) in self.policies.iter().enumerate() {
            out.push_str(&format!("    {{\"world\": {}, \"rows\": [\n", pt.world));
            for (j, r) in pt.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"name\": \"{}\", \"predicted_wf\": {:.6}, \
                     \"simulated_wf\": {:.6}, \"sd\": {:.6}}}{}\n",
                    r.name,
                    r.predicted_wf,
                    r.simulated_wf,
                    r.sd,
                    if j + 1 < pt.rows.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.policies.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"demo\": {{\"world\": {}, \"iters\": {}, \"state_bytes\": {}, \
             \"store_reads\": {}, \"bitwise_identical\": {}, \"in_network_s\": {:.4}, \
             \"streamed_s\": {:.4}, \"store_s\": {:.4}}}\n",
            self.demo.world,
            self.demo.iters,
            self.demo.state_bytes,
            self.demo.store_reads,
            self.demo.bitwise_identical,
            self.demo.in_network_s,
            self.demo.streamed_s,
            self.demo.store_s,
        ));
        out.push_str("}\n");
        out
    }
}

/// Input-pattern arena size for the offered driver (rank `r` contributes
/// pattern `r mod 8` — no per-rank buffer or thread at any world size).
const ARENA_PATTERNS: usize = 8;

/// Drives `passes` offered ring all-reduces over `n` simulated ranks,
/// optionally with a bounded ledger attached to every member (epoch
/// advanced once per pass, as the trainer does per minibatch). Returns
/// (sim seconds per op, median wall seconds per pass, peak accounted
/// ledger bytes).
fn offered_tap_run(
    n: usize,
    elems: usize,
    passes: usize,
    tap: bool,
) -> SimResult<(f64, f64, usize)> {
    let passes = passes.max(1);
    let clock = Arc::new(ClockBoard::new(n));
    let world = CommWorld::new(clock.clone(), CostModel::v100(), 8);
    let ranks: Vec<RankId> = (0..n).map(|i| RankId(i as u32)).collect();
    let idxs: Vec<usize> = (0..n).collect();
    let comm = world
        .create_comm(ranks, idxs)
        .set_engine(CollEngine::Ring(RingConfig::from_cost(&CostModel::v100())));
    let ledgers: Vec<Arc<GradLedger>> = if tap {
        (0..n)
            .map(|i| {
                let l = GradLedger::new(LedgerConfig::default());
                comm.attach_ledger(RankId(i as u32), l.clone()).unwrap();
                l
            })
            .collect()
    } else {
        Vec::new()
    };
    let k = ARENA_PATTERNS.min(n);
    let arena: Vec<Mutex<Vec<f32>>> = (0..k).map(|_| Mutex::new(vec![0.0; elems])).collect();
    pool::fan_out(k, k, "bench-fill", |p| {
        let mut buf = arena[p].lock();
        for (i, v) in buf.iter_mut().enumerate() {
            *v = ((i + p) % 251) as f32 * 0.5;
        }
    });
    let arena: Vec<Vec<f32>> = arena.into_iter().map(Mutex::into_inner).collect();
    let bytes = (elems * 4) as u64;
    let drive = |gen: u64| -> SimResult<()> {
        for l in &ledgers {
            l.begin_epoch(gen);
        }
        for r in 0..n {
            comm.offer_reduce(RankId(r as u32), gen, &arena[r % k], ReduceOp::Sum, bytes)?;
        }
        comm.try_result(gen)?
            .ok_or_else(|| SimError::Protocol("offered all-reduce did not complete".into()))?;
        Ok(())
    };
    drive(0)?; // warm-up
    let sim0 = clock.now(0);
    let mut walls = Vec::with_capacity(passes);
    let mut peak = 0usize;
    for gen in 1..=passes as u64 {
        comm.prune_below(gen);
        let start = Instant::now();
        drive(gen)?;
        walls.push(start.elapsed());
        peak = peak.max(ledgers.iter().map(|l| l.pinned_bytes()).max().unwrap_or(0));
    }
    walls.sort();
    let wall = walls[walls.len() / 2].as_secs_f64();
    let sim_per_op = (clock.now(0) - sim0).as_secs() / passes as f64;
    Ok((sim_per_op, wall, peak))
}

/// Measures the steady-state tap matrix at the given world sizes.
pub fn measure_tap(worlds: &[usize], payload: usize, passes: usize) -> SimResult<Vec<TapPoint>> {
    let elems = payload / 4;
    let mut out = Vec::new();
    for &world in worlds {
        let (sim_off, wall_off, _) = offered_tap_run(world, elems, passes, false)?;
        let (sim_on, wall_on, peak) = offered_tap_run(world, elems, passes, true)?;
        out.push(TapPoint {
            world,
            payload_bytes: payload,
            passes,
            sim_off_s: sim_off,
            sim_on_s: sim_on,
            wall_off_ms: wall_off * 1e3,
            wall_on_ms: wall_on * 1e3,
            ledger_peak_bytes: peak,
        });
    }
    Ok(out)
}

fn state_bits(s: &TrainState) -> Vec<(String, Vec<u32>)> {
    s.buffers
        .iter()
        .map(|(k, _, d)| (k.clone(), d.iter().map(|f| f.to_bits()).collect()))
        .collect()
}

/// Runs the end-to-end in-network recovery demo at data-parallel degree
/// `dp` for `iters` iterations, killing rank 0.
pub fn run_recovery_demo(dp: usize, iters: u64) -> SimResult<RecoveryDemo> {
    let cfg = TrainConfig::tiny_dp(dp);
    let cost = CostModel::v100();
    // Train with unbounded ledgers so the whole history is replayable.
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let cfg2 = cfg.clone();
    let ran: Vec<(TrainState, Arc<GradLedger>)> = dltrain::run_ranks(dp, move |i| {
        let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
        let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
        let mut tr = RankTrainer::new(exec, cfg2.clone(), &per_rank[i], FailureInjector::none())?;
        tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
        let dp_comm = per_rank[i].dp.as_ref().expect("dp group").clone();
        let ledger = tr.attach_grad_ledger(&dp_comm, LedgerConfig::unbounded())?;
        tr.train(iters)?;
        Ok((tr.state_snapshot()?, ledger))
    })
    .into_iter()
    .collect::<SimResult<_>>()?;
    let failed = 0usize;
    let truth = &ran[failed].0;

    // A checkpoint sits in the store, as in production; the demo must
    // never read it.
    let store = Arc::new(SharedStore::new());
    checkpoint::write_checkpoint(
        &store,
        JobId(0),
        CkptKind::Jit,
        RankId(failed as u32),
        0,
        0,
        failed,
        truth,
    )?;

    // Survivors stream slices over a fresh recovery plane.
    let rclock = Arc::new(ClockBoard::new(dp));
    let rw = CommWorld::new(rclock.clone(), CostModel::v100(), 8);
    for (s, (_, ledger)) in ran.iter().enumerate().skip(1) {
        stream::send_ledger_slices(
            &rw,
            &cost,
            RankId(s as u32),
            s,
            RankId(failed as u32),
            true,
            ledger,
            0..iters,
        )?;
    }
    let srcs: Vec<RankId> = (1..dp).map(|s| RankId(s as u32)).collect();
    let history = stream::recv_ledger_history(
        &rw,
        &cost,
        &srcs,
        RankId(failed as u32),
        failed,
        Duration::from_secs(10),
        0..iters,
    )?;
    let recv_s = rclock.now(failed).as_secs();

    // Replacement: deterministic re-init + optimizer-only replay.
    let setup2 = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let replay_clock = setup2.clock.clone();
    let gpu = Gpu::new(GpuId(failed as u32), CostModel::v100());
    let exec = DirectExecutor::new(RankId(failed as u32), failed, gpu, setup2.world.clone());
    let mut tr = RankTrainer::new(
        exec,
        cfg.clone(),
        &setup2.per_rank[failed],
        FailureInjector::none(),
    )?;
    tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
    tr.replay_reduced_history(&history)?;
    let got = tr.state_snapshot()?;
    let replay_s = replay_clock.now(failed).as_secs();

    // Reference restore costs for the same state.
    let sclock = Arc::new(ClockBoard::new(2));
    let sw = CommWorld::new(sclock.clone(), CostModel::v100(), 8);
    stream::send_state(&sw, &cost, RankId(1), 1, RankId(0), true, truth, 1 << 20)?;
    stream::recv_state(&sw, &cost, RankId(1), RankId(0), 0, Duration::from_secs(10))?;
    let streamed_s = sclock.now(0).as_secs();
    let store_s = (cost.checkpoint_write(truth.logical_bytes, StorageTier::Disk, 8)
        + cost.checkpoint_read(truth.logical_bytes, StorageTier::Disk, 8))
    .as_secs();

    Ok(RecoveryDemo {
        world: dp,
        iters,
        state_bytes: truth.logical_bytes,
        store_reads: store.read_count(),
        bitwise_identical: state_bits(&got) == state_bits(truth)
            && got.iteration == truth.iteration
            && got.opt_t == truth.opt_t,
        in_network_s: recv_s + replay_s,
        streamed_s,
        store_s,
    })
}

/// Paper-flavored job parameters (BERT-L-PT measurements, Table 4) at
/// the given GPU count.
fn policy_params(n: usize) -> JobParams {
    JobParams::new(7.1, 2.0 / 992.0, 11.2, n, 0.4)
}

/// Runs the recovery-scheme head-to-head at each world size, using the
/// measured in-network reconstruction tail.
pub fn measure_policies(
    worlds: &[usize],
    reconstruct_s: f64,
    horizon_days: f64,
    reps: u64,
) -> Vec<PolicyPoint> {
    let horizon = horizon_days * 86_400.0;
    let schemes: Vec<(&'static str, Policy)> = vec![
        ("periodic-optimal", Policy::PeriodicOptimal),
        ("jit-user", Policy::JitUser),
        ("jit-transparent", Policy::JitTransparent),
        (
            "in-network",
            Policy::InNetwork {
                reconstruct: reconstruct_s,
            },
        ),
    ];
    worlds
        .iter()
        .map(|&world| {
            let p = policy_params(world);
            let rows = schemes
                .iter()
                .map(|&(name, policy)| {
                    let (mean, sd) = replicate(&p, policy, horizon, reps);
                    PolicyRow {
                        name,
                        predicted_wf: predicted_fraction(&p, policy),
                        simulated_wf: mean,
                        sd,
                    }
                })
                .collect();
            PolicyPoint { world, rows }
        })
        .collect()
}

/// Benchmark configuration; `Default` is the shipped
/// `BENCH_recovery.json` matrix, tests shrink it.
#[derive(Debug, Clone)]
pub struct RecoveryBenchConfig {
    /// World sizes for the steady-state tap matrix.
    pub tap_worlds: Vec<usize>,
    /// Payload bytes per all-reduce in the tap matrix.
    pub tap_payload: usize,
    /// Timed passes per tap point.
    pub tap_passes: usize,
    /// World sizes for the policy head-to-head.
    pub policy_worlds: Vec<usize>,
    /// Monte-Carlo horizon (days of useful time).
    pub horizon_days: f64,
    /// Monte-Carlo replications per policy point.
    pub reps: u64,
    /// Data-parallel degree of the end-to-end demo.
    pub demo_dp: usize,
    /// Iterations of the end-to-end demo.
    pub demo_iters: u64,
}

impl Default for RecoveryBenchConfig {
    fn default() -> Self {
        RecoveryBenchConfig {
            tap_worlds: vec![8, 64, 256],
            tap_payload: 1 << 20,
            tap_passes: 5,
            policy_worlds: vec![8, 64, 256],
            horizon_days: 90.0,
            reps: 6,
            demo_dp: 4,
            demo_iters: 4,
        }
    }
}

/// Runs the full recovery benchmark.
pub fn run_recovery_bench(cfg: &RecoveryBenchConfig) -> SimResult<RecoveryReport> {
    let tap = measure_tap(&cfg.tap_worlds, cfg.tap_payload, cfg.tap_passes)?;
    let demo = run_recovery_demo(cfg.demo_dp, cfg.demo_iters)?;
    let policies = measure_policies(
        &cfg.policy_worlds,
        demo.in_network_s,
        cfg.horizon_days,
        cfg.reps,
    );
    Ok(RecoveryReport {
        tap,
        policies,
        demo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_holds_on_tiny_run() -> SimResult<()> {
        let cfg = RecoveryBenchConfig {
            tap_worlds: vec![4],
            tap_payload: 64 << 10,
            tap_passes: 2,
            policy_worlds: vec![64],
            horizon_days: 10.0,
            reps: 2,
            demo_dp: 2,
            demo_iters: 2,
        };
        let report = run_recovery_bench(&cfg)?;
        assert_eq!(report.tap.len(), 1);
        assert_eq!(
            report.tap[0].sim_on_s, report.tap[0].sim_off_s,
            "the tap must add zero virtual time: {:?}",
            report.tap[0]
        );
        assert!(report.tap[0].ledger_peak_bytes > 0, "ledger must retain");
        let demo = &report.demo;
        assert!(demo.bitwise_identical, "replayed state must match");
        assert_eq!(demo.store_reads, 0, "no checkpoint-store reads");
        assert!(demo.in_network_s > 0.0 && demo.store_s > demo.streamed_s);
        assert_eq!(report.policies.len(), 1);
        assert_eq!(report.policies[0].rows.len(), 4);
        let rows = &report.policies[0].rows;
        let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(
            by("in-network").predicted_wf <= by("jit-user").predicted_wf,
            "in-network must not predict worse than user-level JIT"
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"recovery\""), "{json}");
        assert!(json.contains("max_sim_overhead_at_scale"), "{json}");
        assert!(json.contains("\"demo\""), "{json}");
        Ok(())
    }
}

//! Transparent-interception benchmark harness: wall-clock per-op
//! overhead of the proxied hot path (batched vs per-call flushing vs the
//! direct executor), a flush-batch-capacity sweep, and replay time with
//! and without minibatch-boundary log compaction.
//!
//! What the paper calls "nearly zero" steady-state overhead (§4.1) is,
//! in this reproduction, the *real* CPU cost of interception: virtual→
//! physical handle translation, arena logging, and the framed round
//! trip to the proxy server. The device work itself is identical on
//! both sides, so `proxied − direct` isolates exactly the interception
//! tax the batching tentpole is meant to shrink.

use collectives::CommWorld;
use proxy::{DirectExecutor, Executor, ProxyClient};
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::{GpuId, RankId, SimResult};
use simgpu::{AllocSite, BufferId, BufferTag, DeviceCall, Gpu, KernelKind, StreamId};
use std::sync::Arc;
use std::time::Instant;

fn world() -> Arc<CommWorld> {
    CommWorld::new(Arc::new(ClockBoard::new(1)), CostModel::v100(), 8)
}

/// A proxied executor over a fresh single-GPU world.
pub fn proxied_client() -> ProxyClient {
    ProxyClient::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world())
}

/// The no-interception baseline over an identical world.
pub fn direct_client() -> DirectExecutor {
    DirectExecutor::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world())
}

fn alloc<E: Executor>(e: &mut E, name: &str, elems: u64, tag: BufferTag) -> SimResult<BufferId> {
    e.call(DeviceCall::Malloc {
        site: AllocSite::new(name, elems),
        elems,
        logical_bytes: elems * 4,
        tag,
    })?
    .buffer()
}

/// Runs `ops` identical elementwise launches against one activation
/// buffer and returns mean wall-clock seconds per op. The minibatch is
/// re-opened before every timed repetition so the replay log and the
/// pending ring start empty, and any deferred tail is flushed inside
/// the timed window (the flush is part of the cost being measured).
fn time_per_op<E: Executor>(
    e: &mut E,
    s: StreamId,
    x: BufferId,
    ops: usize,
    reps: usize,
    flush: impl Fn(&mut E) -> SimResult<()>,
) -> SimResult<f64> {
    let launch = DeviceCall::Launch {
        stream: s,
        kernel: KernelKind::Scale { alpha: 1.0, x },
    };
    // Warm-up rep: allocator growth and first-touch faults stay outside
    // the timed window (same discipline as the checkpoint bench).
    for timed in [false, true] {
        let start = Instant::now();
        let reps = if timed { reps } else { 1 };
        for rep in 0..reps {
            e.begin_minibatch(rep as u64)?;
            for _ in 0..ops {
                e.call(launch.clone())?;
            }
            flush(e)?;
        }
        if timed {
            return Ok(start.elapsed().as_secs_f64() / (reps * ops) as f64);
        }
    }
    unreachable!("loop returns on the timed pass")
}

/// Per-op wall-clock cost of one executor configuration.
#[derive(Debug, Clone)]
pub struct PerOpResult {
    /// Row label (`direct`, `proxied-unbatched`, `proxied-batched`).
    pub name: &'static str,
    /// Flush-batch capacity (0 for the direct baseline).
    pub batch_capacity: usize,
    /// Mean wall-clock nanoseconds per intercepted op.
    pub per_op_ns: f64,
}

/// One point of the flush-capacity sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Flush-batch capacity.
    pub capacity: usize,
    /// Mean wall-clock nanoseconds per op at this capacity.
    pub per_op_ns: f64,
}

/// Replay-time measurement over a compaction-heavy log.
#[derive(Debug, Clone, Copy)]
pub struct ReplayResult {
    /// Ops in the full replay log.
    pub log_ops: usize,
    /// Ops surviving minibatch-boundary compaction.
    pub compacted_ops: usize,
    /// Full (uncompacted, serial-decode) replay, milliseconds.
    pub full_ms: f64,
    /// Compacted, parallel-decode replay, milliseconds.
    pub compacted_ms: f64,
}

impl ReplayResult {
    /// Fraction of logged ops the compactor keeps.
    pub fn kept_ratio(&self) -> f64 {
        self.compacted_ops as f64 / self.log_ops.max(1) as f64
    }

    /// Replay speedup from compaction + parallel decode.
    pub fn speedup(&self) -> f64 {
        self.full_ms / self.compacted_ms
    }
}

/// Full transparent-interception benchmark report (`BENCH_proxy.json`).
#[derive(Debug, Clone)]
pub struct ProxyReport {
    /// Ops per timed repetition in the per-op measurements.
    pub ops_per_rep: usize,
    /// Per-op costs: direct baseline, per-call flushing, batched.
    pub per_op: Vec<PerOpResult>,
    /// Flush-capacity sweep.
    pub sweep: Vec<SweepPoint>,
    /// Replay with/without compaction.
    pub replay: ReplayResult,
}

impl ProxyReport {
    fn per_op_ns(&self, name: &str) -> f64 {
        self.per_op
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.per_op_ns)
            .unwrap_or(f64::NAN)
    }

    /// Interception overhead per op (proxied minus direct), nanoseconds.
    pub fn overhead_ns(&self, name: &str) -> f64 {
        self.per_op_ns(name) - self.per_op_ns("direct")
    }

    /// Factor by which batching shrinks the per-op interception overhead
    /// (the tentpole acceptance metric: ≥ 2x).
    pub fn overhead_reduction(&self) -> f64 {
        self.overhead_ns("proxied-unbatched") / self.overhead_ns("proxied-batched")
    }

    /// Renders the report as the `BENCH_proxy.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"proxy\",\n");
        out.push_str(&format!("  \"ops_per_rep\": {},\n", self.ops_per_rep));
        out.push_str("  \"per_op\": [\n");
        for (i, r) in self.per_op.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"batch_capacity\": {}, \"per_op_ns\": {:.1}}}{}\n",
                r.name,
                r.batch_capacity,
                r.per_op_ns,
                if i + 1 < self.per_op.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"overhead_unbatched_ns\": {:.1},\n",
            self.overhead_ns("proxied-unbatched")
        ));
        out.push_str(&format!(
            "  \"overhead_batched_ns\": {:.1},\n",
            self.overhead_ns("proxied-batched")
        ));
        out.push_str(&format!(
            "  \"overhead_reduction\": {:.2},\n",
            self.overhead_reduction()
        ));
        out.push_str("  \"flush_capacity_sweep\": [\n");
        for (i, p) in self.sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"capacity\": {}, \"per_op_ns\": {:.1}}}{}\n",
                p.capacity,
                p.per_op_ns,
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"replay\": {{\"log_ops\": {}, \"compacted_ops\": {}, \"kept_ratio\": {:.4}, \
             \"full_ms\": {:.2}, \"compacted_ms\": {:.2}, \"speedup\": {:.2}}}\n",
            self.replay.log_ops,
            self.replay.compacted_ops,
            self.replay.kept_ratio(),
            self.replay.full_ms,
            self.replay.compacted_ms,
            self.replay.speedup()
        ));
        out.push_str("}\n");
        out
    }
}

/// Measures per-op interception cost for the direct baseline and the
/// proxied path at the given flush capacity.
pub fn measure_per_op(capacity: Option<usize>, ops: usize, reps: usize) -> SimResult<f64> {
    match capacity {
        None => {
            let mut e = direct_client();
            let s = e.call(DeviceCall::StreamCreate)?.stream()?;
            let x = alloc(&mut e, "x", 64, BufferTag::Activation)?;
            time_per_op(&mut e, s, x, ops, reps, |_| Ok(()))
        }
        Some(cap) => {
            let mut e = proxied_client();
            e.set_batch_capacity(cap)?;
            let s = e.call(DeviceCall::StreamCreate)?.stream()?;
            let x = alloc(&mut e, "x", 64, BufferTag::Activation)?;
            time_per_op(&mut e, s, x, ops, reps, |e| e.flush_pending())
        }
    }
}

/// Builds a compaction-heavy minibatch log of at least `target_ops` ops:
/// short-lived scratch chains (malloc → upload → launch → free, all dead
/// at the boundary) interleaved with a single live accumulator chain —
/// the shape of real training, where activations vastly outnumber the
/// ops whose effects survive the minibatch.
pub fn build_replay_workload(target_ops: usize) -> SimResult<ProxyClient> {
    let mut c = proxied_client();
    let s = c.call(DeviceCall::StreamCreate)?.stream()?;
    let elems = 64u64;
    let acc = alloc(&mut c, "acc", elems, BufferTag::Param)?;
    c.call(DeviceCall::Upload {
        buf: acc,
        data: vec![1.0; elems as usize],
    })?;
    c.begin_minibatch(0)?;
    let live = alloc(&mut c, "live", elems, BufferTag::Activation)?;
    let mut i = 0usize;
    while c.replay_log_len() < target_ops {
        // Dead scratch chain: freed before the boundary, so the
        // compactor drops all four ops.
        let scratch = alloc(&mut c, &format!("scratch{i}"), elems, BufferTag::Activation)?;
        c.call(DeviceCall::Upload {
            buf: scratch,
            data: vec![i as f32; elems as usize],
        })?;
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Scale {
                alpha: 1.5,
                x: scratch,
            },
        })?;
        c.call(DeviceCall::Free { buf: scratch })?;
        // Live chain: roughly one op in nine survives compaction.
        if i.is_multiple_of(2) {
            c.call(DeviceCall::Launch {
                stream: s,
                kernel: KernelKind::Axpy {
                    alpha: 0.125,
                    x: acc,
                    y: live,
                },
            })?;
        }
        i += 1;
    }
    c.flush_pending()?;
    Ok(c)
}

/// Measures full vs compacted replay over the workload from
/// [`build_replay_workload`]. Each timed repetition resets to minibatch
/// start and replays; the reset cost is identical on both sides.
pub fn measure_replay(target_ops: usize, reps: usize) -> SimResult<ReplayResult> {
    let mut c = build_replay_workload(target_ops)?;
    let log_ops = c.replay_log_len();
    let compacted_ops = c.compacted_log_len();
    let time = |full: bool, c: &mut ProxyClient| -> SimResult<f64> {
        // Warm-up rep, then the timed reps (page in the decode lanes and
        // the fresh physical buffers outside the window). The reset back
        // to minibatch start is a recovery step of its own — identical
        // on both sides and not what compaction accelerates — so only
        // the replay call itself is inside the timed window.
        let mut total = 0.0f64;
        for timed in [false, true] {
            let reps = if timed { reps } else { 1 };
            for _ in 0..reps {
                c.reset_in_place()?;
                let start = Instant::now();
                if full {
                    c.replay_full()?;
                } else {
                    c.replay()?;
                }
                if timed {
                    total += start.elapsed().as_secs_f64();
                }
            }
        }
        Ok(total / reps as f64)
    };
    let full_s = time(true, &mut c)?;
    let compacted_s = time(false, &mut c)?;
    Ok(ReplayResult {
        log_ops,
        compacted_ops,
        full_ms: full_s * 1e3,
        compacted_ms: compacted_s * 1e3,
    })
}

/// Runs the full measurement matrix.
pub fn run_proxy_bench(
    ops: usize,
    reps: usize,
    sweep_caps: &[usize],
    replay_ops: usize,
    replay_reps: usize,
) -> SimResult<ProxyReport> {
    let direct = measure_per_op(None, ops, reps)?;
    let unbatched = measure_per_op(Some(1), ops, reps)?;
    let batched = measure_per_op(Some(proxy::client::DEFAULT_BATCH_CAPACITY), ops, reps)?;
    let per_op = vec![
        PerOpResult {
            name: "direct",
            batch_capacity: 0,
            per_op_ns: direct * 1e9,
        },
        PerOpResult {
            name: "proxied-unbatched",
            batch_capacity: 1,
            per_op_ns: unbatched * 1e9,
        },
        PerOpResult {
            name: "proxied-batched",
            batch_capacity: proxy::client::DEFAULT_BATCH_CAPACITY,
            per_op_ns: batched * 1e9,
        },
    ];
    let mut sweep = Vec::new();
    for &cap in sweep_caps {
        let t = measure_per_op(Some(cap), ops, reps)?;
        sweep.push(SweepPoint {
            capacity: cap,
            per_op_ns: t * 1e9,
        });
    }
    let replay = measure_replay(replay_ops, replay_reps)?;
    Ok(ProxyReport {
        ops_per_rep: ops,
        per_op,
        sweep,
        replay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_workload_is_compaction_heavy() -> SimResult<()> {
        let c = build_replay_workload(500)?;
        assert!(c.replay_log_len() >= 500);
        let kept = c.compacted_log_len() as f64 / c.replay_log_len() as f64;
        assert!(kept < 0.5, "compactor must drop the scratch chains: {kept}");
        Ok(())
    }

    #[test]
    fn report_shape_holds_on_tiny_run() -> SimResult<()> {
        // Tiny sizes: this validates plumbing, not performance — the
        // shipped BENCH_proxy.json comes from `scripts/bench.sh`.
        let report = run_proxy_bench(200, 2, &[1, 64], 400, 1)?;
        assert_eq!(report.per_op.len(), 3);
        assert_eq!(report.sweep.len(), 2);
        assert!(report.replay.log_ops >= 400);
        assert!(report.replay.kept_ratio() < 1.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"proxy\""), "{json}");
        assert!(json.contains("overhead_reduction"), "{json}");
        Ok(())
    }
}

//! Checkpoint-pipeline benchmark harness: monolithic-vs-sharded write,
//! read, and assembly throughput, plus delta-mode hit-rates.
//!
//! The "monolithic" baseline reproduces the seed write path byte for
//! byte: one flat `encode_framed` buffer (inner CRC pass) plus a second
//! whole-payload CRC for the sidecar — both with the bit-at-a-time
//! [`crc64_bitwise`] the seed shipped — funneled through a single store
//! put. The sharded path is the production pipeline in
//! [`jitckpt::checkpoint`]: table-driven CRC, fixed-size shards, bounded
//! worker pool, one store object per shard. Comparing the two isolates
//! exactly what the §5 stall model charges as the checkpoint overhead
//! `o`.

use bytes::{BufMut, BytesMut};
use cluster::SharedStore;
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind, ShardConfig};
use simcore::codec::{crc64_bitwise, Decode, Encode};
use simcore::{JobId, RankId, SimError, SimResult};
use simgpu::BufferTag;
use std::time::Instant;

/// Builds a deterministic synthetic `TrainState` of roughly
/// `total_bytes` of buffer payload: 3/4 model parameters, 1/4 optimizer
/// state — the shape whose optimizer slice the delta benchmark touches.
pub fn synthetic_state(total_bytes: usize, iteration: u64) -> TrainState {
    let total_elems = total_bytes / 4;
    let param_elems = total_elems / 4 * 3;
    let optim_elems = total_elems - param_elems;
    let fill = |n: usize, mut seed: u64| -> Vec<f32> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Take mantissa bits only: every value is a finite float in
            // [1, 2), so round-trips are bit-exact and CRC-stable.
            out.push(f32::from_bits(
                0x3F80_0000 | ((seed >> 40) as u32 & 0x007F_FFFF),
            ));
        }
        out
    };
    TrainState {
        iteration,
        opt_t: iteration as u32,
        buffers: vec![
            (
                "model.params".into(),
                BufferTag::Param,
                fill(param_elems, 0xA11CE),
            ),
            (
                "optim.moments".into(),
                BufferTag::OptimState,
                fill(optim_elems, 0xB0B),
            ),
        ],
        logical_bytes: total_bytes as u64,
    }
}

/// Mutates a small slice of the optimizer buffer (plus the iteration
/// header), modelling one optimizer step that touched only part of the
/// state — the delta-mode sweet spot.
pub fn touch_optimizer_slice(state: &mut TrainState, elems: usize) {
    state.iteration += 1;
    state.opt_t += 1;
    if let Some((_, _, data)) = state
        .buffers
        .iter_mut()
        .find(|(_, tag, _)| *tag == BufferTag::OptimState)
    {
        for v in data.iter_mut().take(elems) {
            *v += 0.5;
        }
    }
}

/// The seed's write path, preserved as the baseline: flat framed encode
/// (inner bitwise CRC), a second bitwise CRC of the framed payload for
/// the sidecar, one store object. Returns the stored payload length.
pub fn monolithic_write(store: &SharedStore, state: &TrainState) -> SimResult<u64> {
    // encode_framed with the seed's bitwise CRC, inlined.
    let mut payload = BytesMut::new();
    state.encode(&mut payload);
    let inner_crc = crc64_bitwise(&payload);
    let mut framed = BytesMut::with_capacity(payload.len() + 20);
    framed.put_slice(b"JITC");
    (payload.len() as u64).encode(&mut framed);
    framed.put_slice(&payload);
    inner_crc.encode(&mut framed);
    let framed = framed.freeze();
    // The seed then CRC'd the whole framed payload again for the sidecar.
    let outer_crc = crc64_bitwise(&framed);
    let len = framed.len() as u64;
    store.put("bench/monolithic/data", framed)?;
    let mut meta = BytesMut::new();
    state.iteration.encode(&mut meta);
    outer_crc.encode(&mut meta);
    len.encode(&mut meta);
    store.put("bench/monolithic/meta", meta.freeze())?;
    Ok(len)
}

/// The seed's read path: fetch the single object, verify the sidecar CRC
/// and the frame's inner CRC (both bitwise), decode.
pub fn monolithic_read(store: &SharedStore) -> SimResult<TrainState> {
    let mut meta = store.get("bench/monolithic/meta")?;
    let iteration = u64::decode(&mut meta)?;
    let outer_crc = u64::decode(&mut meta)?;
    let len = u64::decode(&mut meta)?;
    let framed = store.get("bench/monolithic/data")?;
    if framed.len() as u64 != len || crc64_bitwise(&framed) != outer_crc {
        return Err(SimError::CorruptCheckpoint(
            "monolithic: sidecar mismatch".into(),
        ));
    }
    let mut buf = framed.clone();
    let magic = buf.split_to(4);
    if &magic[..] != b"JITC" {
        return Err(SimError::CorruptCheckpoint("monolithic: bad magic".into()));
    }
    let plen = u64::decode(&mut buf)? as usize;
    let payload = buf.split_to(plen);
    let inner_crc = u64::decode(&mut buf)?;
    if crc64_bitwise(&payload) != inner_crc {
        return Err(SimError::CorruptCheckpoint(
            "monolithic: payload crc".into(),
        ));
    }
    let mut p = payload;
    let state = TrainState::decode(&mut p)?;
    if state.iteration != iteration {
        return Err(SimError::CorruptCheckpoint("monolithic: iteration".into()));
    }
    Ok(state)
}

/// Writes `state` through the sharded pipeline as job 0, cell (0,0),
/// replica 0.
pub fn sharded_write(store: &SharedStore, state: &TrainState, cfg: &ShardConfig) -> SimResult<()> {
    checkpoint::write_checkpoint_with(
        store,
        JobId(0),
        CkptKind::Jit,
        RankId(0),
        0,
        0,
        0,
        state,
        cfg,
    )
}

/// Reads + validates the sharded checkpoint written by [`sharded_write`].
pub fn sharded_read(store: &SharedStore, iteration: u64) -> SimResult<TrainState> {
    checkpoint::read_checkpoint(store, JobId(0), CkptKind::Jit, iteration, 0, 0, 0).map(|(s, _)| s)
}

/// Times `f` over `iters` runs and returns mean seconds per run.
///
/// One untimed warm-up run precedes the measurement so every config pays
/// its first-touch page faults and allocator growth outside the timed
/// window; without it, whichever config runs first against freshly
/// cloned state reads ~2x slower than steady state.
pub fn time_per_iter<F: FnMut() -> SimResult<()>>(iters: usize, mut f: F) -> SimResult<f64> {
    f()?;
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        f()?;
    }
    Ok(start.elapsed().as_secs_f64() / iters.max(1) as f64)
}

/// One measured configuration in the report.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Row label (`monolithic`, `sharded`, `sharded-delta`).
    pub name: &'static str,
    /// Worker-pool width (1 for the monolithic baseline).
    pub workers: usize,
    /// Write throughput, MB/s of payload.
    pub write_mbps: f64,
    /// Read+validate throughput, MB/s.
    pub read_mbps: f64,
    /// Assembly (resolve + validate + load) throughput, MB/s.
    pub assemble_mbps: f64,
}

/// Delta-mode measurement.
#[derive(Debug, Clone, Copy)]
pub struct DeltaResult {
    /// Shards in the checkpoint.
    pub shards_total: usize,
    /// Shards skipped (reused from the base checkpoint).
    pub shards_reused: usize,
    /// Write throughput of the delta checkpoint, MB/s.
    pub write_mbps: f64,
}

impl DeltaResult {
    /// Fraction of shards skipped.
    pub fn hit_rate(&self) -> f64 {
        self.shards_reused as f64 / self.shards_total.max(1) as f64
    }
}

/// Full checkpoint-pipeline benchmark report.
#[derive(Debug, Clone)]
pub struct CkptReport {
    /// Payload size measured, bytes.
    pub payload_bytes: usize,
    /// Shard size used by the sharded configs, bytes.
    pub shard_bytes: usize,
    /// Per-configuration throughputs.
    pub configs: Vec<ConfigResult>,
    /// Delta-mode result (optimizer-slice update).
    pub delta: DeltaResult,
}

impl CkptReport {
    /// Sharded-write speedup over the monolithic baseline at the widest
    /// measured pool (the ISSUE-2 acceptance metric).
    pub fn best_speedup(&self) -> f64 {
        let mono = self
            .configs
            .iter()
            .find(|c| c.name == "monolithic")
            .map(|c| c.write_mbps)
            .unwrap_or(f64::NAN);
        let best = self
            .configs
            .iter()
            .filter(|c| c.name.starts_with("sharded"))
            .map(|c| c.write_mbps)
            .fold(f64::NAN, f64::max);
        best / mono
    }

    /// Renders the report as the `BENCH_ckpt.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"ckpt\",\n");
        out.push_str(&format!("  \"payload_bytes\": {},\n", self.payload_bytes));
        out.push_str(&format!("  \"shard_bytes\": {},\n", self.shard_bytes));
        out.push_str("  \"configs\": [\n");
        for (i, c) in self.configs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"workers\": {}, \"write_mbps\": {:.2}, \
                 \"read_mbps\": {:.2}, \"assemble_mbps\": {:.2}}}{}\n",
                c.name,
                c.workers,
                c.write_mbps,
                c.read_mbps,
                c.assemble_mbps,
                if i + 1 < self.configs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"sharded_write_speedup_vs_monolithic\": {:.2},\n",
            self.best_speedup()
        ));
        out.push_str(&format!(
            "  \"delta\": {{\"shards_total\": {}, \"shards_reused\": {}, \
             \"hit_rate\": {:.4}, \"write_mbps\": {:.2}}}\n",
            self.delta.shards_total,
            self.delta.shards_reused,
            self.delta.hit_rate(),
            self.delta.write_mbps
        ));
        out.push_str("}\n");
        out
    }
}

/// Runs the full measurement matrix: monolithic baseline, sharded at the
/// given worker counts, and the delta-mode optimizer-slice update.
pub fn run_ckpt_bench(
    payload_bytes: usize,
    shard_bytes: usize,
    worker_counts: &[usize],
    iters: usize,
) -> SimResult<CkptReport> {
    let state = synthetic_state(payload_bytes, 5);
    let mb = payload_bytes as f64 / 1e6;
    let mut configs = Vec::new();

    // Monolithic baseline (seed path).
    let store = SharedStore::new();
    let w = time_per_iter(iters, || monolithic_write(&store, &state).map(|_| ()))?;
    let r = time_per_iter(iters, || monolithic_read(&store).map(|_| ()))?;
    configs.push(ConfigResult {
        name: "monolithic",
        workers: 1,
        write_mbps: mb / w,
        read_mbps: mb / r,
        // A monolithic checkpoint is one object: assembling it *is*
        // reading it.
        assemble_mbps: mb / r,
    });

    // Sharded pipeline at each pool width.
    for &workers in worker_counts {
        let cfg = ShardConfig {
            shard_bytes,
            workers,
            delta: false,
            max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
        };
        let store = SharedStore::new();
        let w = time_per_iter(iters, || sharded_write(&store, &state, &cfg))?;
        let r = time_per_iter(iters, || sharded_read(&store, state.iteration).map(|_| ()))?;
        let layout = simcore::layout::ParallelLayout::data_parallel(1);
        let a = time_per_iter(iters, || {
            checkpoint::assemble(&store, JobId(0), &layout).map(|_| ())
        })?;
        configs.push(ConfigResult {
            name: "sharded",
            workers,
            write_mbps: mb / w,
            read_mbps: mb / r,
            assemble_mbps: mb / a,
        });
    }

    // The auto-sized pool (host parallelism × shard count aware) as its
    // own labeled row, so the report shows what a defaulted
    // `ShardConfig` actually achieves on this host.
    {
        let n_shards = payload_bytes.div_ceil(shard_bytes).max(1);
        let workers = checkpoint::auto_shard_workers(n_shards);
        let cfg = ShardConfig {
            shard_bytes,
            workers,
            delta: false,
            max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
        };
        let store = SharedStore::new();
        let w = time_per_iter(iters, || sharded_write(&store, &state, &cfg))?;
        let r = time_per_iter(iters, || sharded_read(&store, state.iteration).map(|_| ()))?;
        let layout = simcore::layout::ParallelLayout::data_parallel(1);
        let a = time_per_iter(iters, || {
            checkpoint::assemble(&store, JobId(0), &layout).map(|_| ())
        })?;
        configs.push(ConfigResult {
            name: "sharded-auto",
            workers,
            write_mbps: mb / w,
            read_mbps: mb / r,
            assemble_mbps: mb / a,
        });
    }

    // Delta mode: base checkpoint, then an optimizer step touching a
    // small slice; measure the follow-up write and its hit-rate.
    let cfg = ShardConfig {
        shard_bytes,
        workers: worker_counts.last().copied().unwrap_or(4),
        delta: true,
        max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
    };
    let store = SharedStore::new();
    sharded_write(&store, &state, &cfg)?;
    let mut touched = state.clone();
    touch_optimizer_slice(&mut touched, 256);
    // Measure warm over the same iteration count as the other configs:
    // re-writing iteration N+1 against the iteration-N base repeatedly
    // is idempotent, and a single cold run would charge delta mode for
    // page-faulting the freshly cloned stream while everyone else is
    // measured warm. The delta store pins the base checkpoint's stream
    // (the reused shards reference it), so the allocator takes a few
    // writes to reach steady state — warm until then.
    for _ in 0..3 {
        sharded_write(&store, &touched, &cfg)?;
    }
    let w = time_per_iter(iters, || sharded_write(&store, &touched, &cfg))?;
    let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, touched.iteration, 0, 0, 0)?;
    let reused = meta
        .shards
        .iter()
        .filter(|s| s.base_iteration.is_some())
        .count();
    let delta = DeltaResult {
        shards_total: meta.shards.len(),
        shards_reused: reused,
        write_mbps: mb / w,
    };
    // The delta checkpoint must still read back exactly.
    let back = sharded_read(&store, touched.iteration)?;
    if back != touched {
        return Err(SimError::CorruptCheckpoint(
            "delta round-trip mismatch".into(),
        ));
    }

    Ok(CkptReport {
        payload_bytes,
        shard_bytes,
        configs,
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_round_trip() -> SimResult<()> {
        let store = SharedStore::new();
        let state = synthetic_state(64 * 1024, 3);
        monolithic_write(&store, &state)?;
        let back = monolithic_read(&store)?;
        assert_eq!(back, state);
        Ok(())
    }

    #[test]
    fn report_meets_acceptance_shape_on_small_payload() -> SimResult<()> {
        // Small payload so the test is quick; the shipped BENCH_ckpt.json
        // is produced by `scripts/bench.sh` at 64 MiB.
        let report = run_ckpt_bench(2 << 20, 64 << 10, &[1, 4], 1)?;
        // monolithic + one row per swept width + the auto-sized row.
        assert_eq!(report.configs.len(), 4);
        assert_eq!(report.configs.last().unwrap().name, "sharded-auto");
        assert!(report.best_speedup() > 1.0, "{:.2}", report.best_speedup());
        assert!(
            report.delta.hit_rate() >= 0.9,
            "{}",
            report.delta.hit_rate()
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"ckpt\""), "{json}");
        assert!(json.contains("hit_rate"), "{json}");
        Ok(())
    }

    #[test]
    fn touched_slice_changes_exactly_one_buffer() {
        let base = synthetic_state(1 << 20, 5);
        let mut t = base.clone();
        touch_optimizer_slice(&mut t, 16);
        assert_eq!(t.iteration, base.iteration + 1);
        assert_eq!(t.buffers[0].2, base.buffers[0].2, "params untouched");
        assert_ne!(t.buffers[1].2, base.buffers[1].2, "optimizer touched");
    }
}

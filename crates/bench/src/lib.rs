//! Table and figure regeneration for the paper's evaluation (§6).
//!
//! Each `table*` function reproduces the corresponding table of the
//! paper: the *workload identities and analytical formulas* come straight
//! from the paper; the *measured quantities* (checkpoint, restore, and
//! recovery times; step breakdowns; steady-state overheads; minibatch
//! durations) come from functional runs of the simulated stack on
//! phantom-scaled workloads, read off the virtual clocks. Absolute
//! numbers therefore differ from the authors' testbed; the shapes —
//! who wins, by what factor, where recovery time goes — are the
//! reproduction targets (see EXPERIMENTS.md).

pub mod ckpt;
pub mod collbench;
pub mod montecarlo;
pub mod proxybench;
pub mod recovery;
pub mod storebench;

use baselines::{blocking_overhead, PolicyKind};
use cluster::{FailureInjector, SharedStore};
use jitckpt::analysis::{
    self, monthly_failure_cost_dollars, optimal_frequency, wasted_fraction,
    wasted_rate_jit_transparent, wasted_rate_jit_user, wasted_rate_periodic_optimal, JobParams,
};
use jitckpt::transparent::{run_transparent_job_with, TransparentOutcome};
use jitckpt::user_level::{run_user_level_job, JitUserConfig};
use jitckpt::workloads::{by_name, Workload};
use simcore::cost::{CostModel, GpuGeneration};
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::layout::ParallelLayout;
use simcore::RankId;
use std::sync::Arc;

/// A rendered evaluation table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (paper reference).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

fn pct(v: f64) -> String {
    format!("{:.4}%", v * 100.0)
}

/// The OPT-175B failure rate used throughout the paper's analysis:
/// 2 failures/day over 992 GPUs, per GPU per second.
pub fn paper_failure_rate() -> f64 {
    2.0 / 992.0 / 86_400.0
}

/// Functional measurement: failure-free run, returning per-iteration
/// minibatch time (virtual seconds) and the transparent-logging
/// steady-state overhead per minibatch.
pub fn measure_minibatch(w: &Workload, gen: GpuGeneration, iters: u64) -> (f64, f64) {
    let cfg = w.train_config(7);
    let cost = CostModel::for_gpu(gen);
    let out = run_transparent_job_with(
        cfg,
        cost.clone(),
        FailureInjector::none(),
        Arc::new(SharedStore::new()),
        iters,
        0,
    )
    .expect("clean run");
    let total = out
        .finish_times
        .iter()
        .fold(simcore::SimTime::ZERO, |a, b| a.max(*b))
        .as_secs();
    let logged: u64 = out.logged_calls.iter().copied().max().unwrap_or(0);
    let log_overhead = logged as f64 * cost.effective_log_overhead().as_secs() / iters as f64;
    (total / iters as f64, log_overhead)
}

/// Table 1: summary of error recovery solutions.
pub fn table1() -> Table {
    Table {
        title: "Table 1: Summary of error recovery solutions".into(),
        header: vec![
            "#".into(),
            "Solution".into(),
            "Errors Handled".into(),
            "User Code Change?".into(),
        ],
        rows: vec![
            vec![
                "1".into(),
                "User-level".into(),
                "Single/multiple errors in node/GPU/network".into(),
                "Yes (jitckpt::user_level)".into(),
            ],
            vec![
                "2".into(),
                "Transparent; recoverable errors".into(),
                "Transient single/multiple errors in GPU/network".into(),
                "No (jitckpt::transparent, §4.2 paths)".into(),
            ],
            vec![
                "3".into(),
                "Transparent; hard errors".into(),
                "Single/multiple errors in node/GPU/network".into(),
                "No (jitckpt::transparent hard path + CRIU)".into(),
            ],
        ],
    }
}

/// Table 2: experimental workloads.
pub fn table2() -> Table {
    let rows = jitckpt::workloads::catalog()
        .into_iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                format!("{:.3}B", w.params_b),
                format!("{}", w.gpus()),
                if w.fsdp {
                    "FSDP".to_string()
                } else {
                    w.layout.label()
                },
                format!("{:?}", w.framework),
                format!("{:?}", w.gpu),
            ]
        })
        .collect();
    Table {
        title: "Table 2: Experimental workloads".into(),
        header: vec![
            "Model".into(),
            "#Params".into(),
            "#GPUs".into(),
            "Parallelism".into(),
            "Framework".into(),
            "GPU".into(),
        ],
        rows,
    }
}

/// Table 3: steady-state checkpointing overhead percentages at the
/// optimal frequency (f = 2/day per 992 GPUs), per mechanism, vs JIT.
pub fn table3() -> Table {
    let f = paper_failure_rate();
    let names = [
        "GPT2-S",
        "GPT2-XL",
        "GPT2-8B",
        "GPT2-18B",
        "BERT-L-PT",
        "BERT-B-FT",
    ];
    let mut rows = Vec::new();
    for name in names {
        let w = by_name(name).expect("catalog");
        let cost = CostModel::for_gpu(w.gpu);
        let rpn = w.gpu.gpus_per_node();
        let bytes = w.state_bytes_per_rank();
        let mut cells = vec![name.to_string()];
        for kind in [PolicyKind::PcDisk, PolicyKind::PcMem, PolicyKind::CheckFreq] {
            let o = blocking_overhead(kind, bytes, &cost, rpn).as_secs();
            let p = JobParams {
                ckpt_overhead: o,
                failure_rate: f,
                fixed_recovery: 0.0,
                n_gpus: w.gpus(),
                minibatch: w.paper_minibatch,
            };
            let c = optimal_frequency(&p);
            cells.push(format!("{:.3}", 100.0 * c * o));
        }
        // PC once per day.
        let o_disk = blocking_overhead(PolicyKind::PcDisk, bytes, &cost, rpn).as_secs();
        cells.push(format!("{:.4}", 100.0 * o_disk / 86_400.0));
        // JIT-C: measured transparent-logging overhead as a fraction of
        // the minibatch.
        let (mb, log_oh) = measure_minibatch(&w, w.gpu, 3);
        cells.push(format!("{:.4}", 100.0 * log_oh / mb));
        rows.push(cells);
    }
    Table {
        title:
            "Table 3: Checkpointing overhead percentages at optimal frequency (f=2/day per 992 GPUs)"
                .into(),
        header: vec![
            "Model".into(),
            "PC_disk %".into(),
            "PC_mem %".into(),
            "CheckFreq %".into(),
            "PC_1/day %".into(),
            "JIT-C %".into(),
        ],
        rows,
    }
}

/// Raw measurements behind Table 4 for one workload.
#[derive(Debug, Clone, Copy)]
pub struct UserLevelNumbers {
    /// JIT checkpoint time (s).
    pub checkpoint: f64,
    /// Restore + re-init time (s).
    pub restore: f64,
    /// Total JIT recovery (s).
    pub recovery: f64,
    /// Minibatch time (s).
    pub minibatch: f64,
}

/// Functional user-level recovery measurement for one workload.
pub fn measure_user_level(w: &Workload) -> UserLevelNumbers {
    let cost = CostModel::for_gpu(w.gpu);
    let cfg = w.train_config(11);
    let victim = RankId((w.gpus() - 1) as u32);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        2,
        Phase::Backward,
        victim,
        FailureKind::StickyCuda,
    )]);
    let scheduler = Arc::new(cluster::Scheduler::new(cluster::Cluster::new(
        w.gpu,
        (w.gpus() / w.gpu.gpus_per_node()).max(1) + 1,
    )));
    let out = run_user_level_job(
        cfg,
        cost,
        injector,
        scheduler,
        Arc::new(SharedStore::new()),
        JitUserConfig::default(),
        5,
    )
    .expect("user-level run");
    let ckpt = out
        .events
        .iter()
        .filter(|e| e.checkpoint_time.as_secs() > 0.0)
        .map(|e| e.checkpoint_time.as_secs())
        .fold(0.0f64, f64::max);
    let restore = out
        .events
        .iter()
        .filter(|e| e.restore_time.as_secs() > 0.0)
        .map(|e| e.restore_time.as_secs())
        .fold(0.0f64, f64::max);
    let (mb, _) = measure_minibatch(w, w.gpu, 3);
    UserLevelNumbers {
        checkpoint: ckpt,
        restore,
        recovery: ckpt + restore,
        minibatch: mb,
    }
}

/// Table 4: user-level JIT checkpoint/restore/recovery and minibatch
/// times.
pub fn table4() -> Table {
    let names = [
        "BERT-L-PT",
        "BERT-B-FT",
        "GPT2-S",
        "GPT2-XL",
        "GPT2-8B",
        "GPT2-18B",
        "T5-3B",
        "ViT",
    ];
    let mut rows = Vec::new();
    for name in names {
        let w = by_name(name).expect("catalog");
        let n = measure_user_level(&w);
        rows.push(vec![
            name.to_string(),
            f2(n.checkpoint),
            f2(n.restore),
            f2(n.recovery),
            f3(n.minibatch),
            "~0".into(),
        ]);
    }
    Table {
        title: "Table 4: User-level JIT recovery times (seconds, virtual)".into(),
        header: vec![
            "Model".into(),
            "Checkpoint".into(),
            "Restore".into(),
            "JIT Recovery".into(),
            "Minibatch".into(),
            "Overhead".into(),
        ],
        rows,
    }
}

/// A Table 5/6/7 workload row configuration: (label, GPU generation,
/// layout, extra framework comms).
pub fn transparent_rows(gen: GpuGeneration) -> Vec<(&'static str, Workload, usize)> {
    let mk = |name: &str, dp: usize| {
        let mut w = by_name(name).expect("catalog");
        w.layout = ParallelLayout::data_parallel(dp);
        w.gpu = gen;
        w
    };
    match gen {
        GpuGeneration::V100_32G => {
            let mut rows = vec![
                ("BERT-B-FT", mk("BERT-B-FT", 8), 0),
                ("GPT2-S", mk("GPT2-S", 8), 7),
            ];
            let mut w3d = by_name("GPT2-S-3D").expect("catalog");
            w3d.gpu = gen;
            let comms_3d = w3d.comms_per_rank();
            rows.push(("GPT2-S-3D", w3d, comms_3d.saturating_sub(3)));
            rows.push(("Pyramidnet", mk("PyramidNet", 8), 0));
            rows
        }
        GpuGeneration::A100_80G => vec![
            ("BERT-B-FT", mk("BERT-B-FT", 4), 0),
            ("GPT2-S", mk("GPT2-S", 4), 7),
            ("Pyramidnet", mk("PyramidNet", 4), 0),
        ],
    }
}

/// Functional transparent recovery run for one row; returns the outcome.
pub fn transparent_recovery_run(
    w: &Workload,
    extra_comms: usize,
    kind: FailureKind,
    phase: Phase,
) -> TransparentOutcome {
    let cost = CostModel::for_gpu(w.gpu);
    let cfg = w.train_config(23);
    let victim = RankId(0);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(2, phase, victim, kind)]);
    run_transparent_job_with(
        cfg,
        cost,
        injector,
        Arc::new(SharedStore::new()),
        5,
        extra_comms,
    )
    .expect("transparent run")
}

/// Table 5: transparent transient-error recovery times.
pub fn table5() -> Table {
    let mut rows = Vec::new();
    for gen in [GpuGeneration::V100_32G, GpuGeneration::A100_80G] {
        let section = match gen {
            GpuGeneration::V100_32G => "8x V100 32GB",
            GpuGeneration::A100_80G => "4x A100 80GB",
        };
        rows.push(vec![
            format!("— {section} —"),
            String::new(),
            String::new(),
            String::new(),
        ]);
        let gen_rows = match gen {
            GpuGeneration::V100_32G => transparent_rows(gen),
            GpuGeneration::A100_80G => transparent_rows(gen)
                .into_iter()
                .filter(|(n, _, _)| *n != "Pyramidnet")
                .collect(),
        };
        for (label, w, extras) in gen_rows {
            let out = transparent_recovery_run(
                &w,
                extras,
                FailureKind::TransientNetwork,
                Phase::AllReduce,
            );
            let recovery = out
                .reports
                .iter()
                .map(|r| r.total.as_secs())
                .fold(0.0f64, f64::max);
            let (mb, log_oh) = measure_minibatch(&w, gen, 3);
            rows.push(vec![label.to_string(), f2(recovery), f3(mb), f3(log_oh)]);
        }
    }
    Table {
        title: "Table 5: Transparent transient-error recovery (seconds, virtual)".into(),
        header: vec![
            "Model".into(),
            "Recovery Time".into(),
            "Minibatch Time".into(),
            "Overhead Time".into(),
        ],
        rows,
    }
}

/// Table 6: transparent hard-error recovery (healthy vs failed GPU).
pub fn table6() -> Table {
    let mut rows = Vec::new();
    for gen in [GpuGeneration::V100_32G, GpuGeneration::A100_80G] {
        let section = match gen {
            GpuGeneration::V100_32G => "8x V100 32GB",
            GpuGeneration::A100_80G => "4x A100 80GB",
        };
        rows.push(vec![
            format!("— {section} —"),
            String::new(),
            String::new(),
            String::new(),
        ]);
        let gen_rows = transparent_rows(gen);
        for (label, w, extras) in gen_rows {
            if label == "GPT2-S-3D" && gen == GpuGeneration::A100_80G {
                continue;
            }
            let out =
                transparent_recovery_run(&w, extras, FailureKind::GpuHardware, Phase::Forward);
            let victim = out
                .reports
                .iter()
                .find(|r| r.rank == RankId(0))
                .map(|r| r.total.as_secs())
                .unwrap_or(0.0);
            let healthy = {
                let v: Vec<f64> = out
                    .reports
                    .iter()
                    .filter(|r| r.rank != RankId(0))
                    .map(|r| r.total.as_secs())
                    .collect();
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            let (mb, _) = measure_minibatch(&w, gen, 3);
            rows.push(vec![label.to_string(), f2(healthy), f2(victim), f3(mb)]);
        }
    }
    Table {
        title: "Table 6: Transparent hard-error recovery (seconds, virtual)".into(),
        header: vec![
            "Model".into(),
            "Healthy GPU".into(),
            "Failed GPU".into(),
            "Minibatch Time".into(),
        ],
        rows,
    }
}

/// Table 7: per-step breakdown of transparent transient recovery on one
/// (healthy) rank worker, 8× V100.
pub fn table7() -> Table {
    let step_names = [
        "Delete communicators and GPU handles",
        "Recreate NCCL communicators",
        "Reset GPU buffers",
        "Recreate GPU handles",
        "Replay minibatch APIs",
    ];
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, w, extras) in transparent_rows(GpuGeneration::V100_32G) {
        let out =
            transparent_recovery_run(&w, extras, FailureKind::TransientNetwork, Phase::AllReduce);
        // A healthy rank's report (the paper measures one rank worker).
        let report = out
            .reports
            .iter()
            .find(|r| !r.was_victim)
            .or_else(|| out.reports.first())
            .expect("reports recorded");
        let mut times = Vec::new();
        for name in &step_names {
            let t = report
                .steps
                .iter()
                .filter(|s| s.name.contains(name.split(' ').next().unwrap_or("")))
                .find(|s| s.name == *name)
                .map(|s| s.time.as_secs())
                .unwrap_or(0.0);
            times.push(t);
        }
        columns.push((label.to_string(), times));
    }
    let mut rows = Vec::new();
    for (i, step) in step_names.iter().enumerate() {
        let mut row = vec![step.to_string()];
        for (_, times) in &columns {
            row.push(format!("{:.4}", times[i]));
        }
        rows.push(row);
    }
    let mut header = vec!["Step".to_string()];
    header.extend(columns.iter().map(|(l, _)| l.clone()));
    Table {
        title: "Table 7: Transparent transient recovery step breakdown (seconds, virtual, 8x V100)"
            .into(),
        header,
        rows,
    }
}

/// Table 8: wasted-GPU-time scaling for periodic vs JIT checkpointing.
pub fn table8() -> Table {
    let f_day = 2.0 / 992.0;
    let ns = [4usize, 1024, 8192];
    let mut rows = Vec::new();
    rows.push(vec![
        "— Periodic Checkpointing —".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let workload_numbers: Vec<(&str, UserLevelNumbers)> =
        ["BERT-L-PT", "BERT-B-FT", "GPT2-S", "GPT2-8B"]
            .iter()
            .map(|name| {
                let w = by_name(name).expect("catalog");
                (*name, measure_user_level(&w))
            })
            .collect();
    for (name, n) in &workload_numbers {
        let mut row = vec![name.to_string()];
        for &gpus in &ns {
            let p = JobParams::new(n.checkpoint, f_day, n.restore, gpus, n.minibatch);
            let c = optimal_frequency(&p) * 3600.0;
            let wf = wasted_fraction(wasted_rate_periodic_optimal(&p));
            row.push(format!("{c:.2}/hr"));
            row.push(pct(wf));
        }
        rows.push(row);
    }
    rows.push(vec![
        "— User-level JIT —".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    for (name, n) in &workload_numbers {
        let mut row = vec![name.to_string()];
        for &gpus in &ns {
            let p = JobParams::new(n.checkpoint, f_day, n.restore, gpus, n.minibatch);
            let wf = wasted_fraction(wasted_rate_jit_user(&p, 0.0));
            row.push("-".into());
            row.push(pct(wf));
        }
        rows.push(row);
    }
    rows.push(vec![
        "— Transparent JIT (transient) —".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    for name in ["BERT-B-FT", "GPT2-S"] {
        let w = by_name(name).expect("catalog");
        let (mb, log_oh) = measure_minibatch(&w, GpuGeneration::V100_32G, 3);
        let steady = log_oh / mb;
        let mut row = vec![name.to_string()];
        for &gpus in &ns {
            let p = JobParams::new(0.0, f_day, 0.0, gpus, mb);
            let wf = wasted_fraction(wasted_rate_jit_transparent(&p, steady));
            row.push("-".into());
            row.push(pct(wf));
        }
        rows.push(row);
    }
    Table {
        title: "Table 8: Wasted GPU time scaling (c* and w_f at N = 4 / 1024 / 8192)".into(),
        header: vec![
            "Model".into(),
            "c* (N=4)".into(),
            "w_f (N=4)".into(),
            "c* (N=1024)".into(),
            "w_f (N=1024)".into(),
            "c* (N=8192)".into(),
            "w_f (N=8192)".into(),
        ],
        rows,
    }
}

/// The §6.5 scaling "figure": full N sweep of c* and wasted fractions for
/// BERT-L-PT (eq. 9–10), as a plottable series.
pub fn scaling_figure() -> Table {
    let w = by_name("BERT-L-PT").expect("catalog");
    let n = measure_user_level(&w);
    let base = JobParams::new(n.checkpoint, 2.0 / 992.0, n.restore, 4, n.minibatch);
    let ns = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];
    let pts = analysis::scaling_curve(&base, &ns, 0.0, 0.0001);
    let rows = pts
        .into_iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.3}", p.c_star_per_hour),
                pct(p.wf_periodic),
                pct(p.wf_jit_user),
                pct(p.wf_jit_transparent),
            ]
        })
        .collect();
    Table {
        title: "Figure (§6.5): scaling of c* and wasted fractions with N (BERT-L-PT, eq. 9-10)"
            .into(),
        header: vec![
            "N".into(),
            "c*/hr".into(),
            "w_f periodic".into(),
            "w_f JIT user".into(),
            "w_f JIT transparent".into(),
        ],
        rows,
    }
}

/// §5.1 dollar-cost estimates.
pub fn dollar_table() -> Table {
    let rows = vec![
        (1_000usize, 1.0),
        (2_000, 2.0),
        (4_000, 4.0),
        (10_000, 10.0),
    ]
    .into_iter()
    .map(|(n, f_day)| {
        let cost = monthly_failure_cost_dollars(n, f_day, 0.25, 4.0);
        vec![
            n.to_string(),
            format!("{f_day}"),
            format!("${cost:.0}/month"),
        ]
    })
    .collect();
    Table {
        title: "§5.1: Dollar cost of failures under periodic checkpointing (30 min interval, $4/GPU-hr)".into(),
        header: vec!["GPUs".into(), "Failures/day".into(), "Monthly cost".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        for t in [table1(), table2(), dollar_table()] {
            let s = t.render();
            assert!(s.contains(&t.title));
            assert!(!t.rows.is_empty());
        }
    }

    #[test]
    fn table3_shape_holds() {
        // PC_disk > PC_mem > CheckFreq >> PC_1/day and JIT ~ 0, overheads
        // grow with model size.
        let t = table3();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        for row in &t.rows {
            let disk = parse(&row[1]);
            let mem = parse(&row[2]);
            let cf = parse(&row[3]);
            let jit = parse(&row[5]);
            assert!(disk >= mem, "{row:?}");
            assert!(mem >= cf, "{row:?}");
            assert!(jit < disk, "JIT beats blocking checkpointing: {row:?}");
            // For the larger models (where the simulated minibatch is not
            // dwarfed by the fixed logging residual) JIT undercuts even
            // CheckFreq, as in the paper.
            if disk > 0.08 {
                assert!(jit < cf, "JIT must be cheapest at scale: {row:?}");
            }
        }
        // GPT2-18B overhead > GPT2-S overhead.
        let small = parse(&t.rows[0][1]);
        let big = parse(&t.rows[3][1]);
        assert!(big > small, "overhead grows with model size");
    }

    #[test]
    fn scaling_figure_shows_jit_advantage() {
        let t = scaling_figure();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let last = t.rows.last().unwrap();
        let periodic = parse(&last[2]);
        let user = parse(&last[3]);
        let transparent = parse(&last[4]);
        assert!(user < periodic, "user JIT beats periodic at N=8192");
        assert!(transparent < periodic);
        // Periodic wf is monotone in N.
        let first = parse(&t.rows[0][2]);
        assert!(periodic > first);
    }
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5): sweeps over the design parameters.
// ---------------------------------------------------------------------

/// Ablation 1 — watchdog timeout: hang-detection latency is bounded below
/// by the timeout itself (plus one poll period); shorter timeouts detect
/// faster but risk false positives on slow-but-healthy collectives. The
/// latency column is *measured* with a real armed watchdog.
pub fn ablation_watchdog() -> Table {
    use collectives::CollectiveObserver;
    use proxy::Watchdog;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    let mut rows = Vec::new();
    for timeout_ms in [10u64, 50, 100, 400, 1000] {
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        let wd = Watchdog::spawn(Duration::from_millis(timeout_ms), move || {
            f.store(true, Ordering::SeqCst);
        })
        .expect("spawn watchdog");
        let obs = wd.observer();
        let start = Instant::now();
        obs.collective_started(&collectives::CollectiveTicket {
            comm: collectives::CommId(0),
            generation: 0,
            rank: RankId(0),
            kind: collectives::CollKind::AllReduce,
            entered_at: start,
        });
        while !fired.load(Ordering::SeqCst) {
            // jitlint::allow(virtual_time): this ablation measures *real-time* hang-detection latency; the 200µs poll bounds measurement error
            std::thread::sleep(Duration::from_micros(200));
        }
        let latency = start.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            format!("{timeout_ms} ms"),
            format!("{latency:.1} ms"),
            format!("{:.1} ms", latency - timeout_ms as f64),
        ]);
    }
    Table {
        title: "Ablation: watchdog timeout vs measured hang-detection latency".into(),
        header: vec![
            "Timeout".into(),
            "Detection latency".into(),
            "Poll overhead".into(),
        ],
        rows,
    }
}

/// Ablation 2 — asynchronous replay logging: steady-state overhead as a
/// function of the fraction of per-call logging cost NOT hidden by the
/// device proxy's async execution (§4.1 claims "nearly zero"; 1.0 models
/// a fully synchronous logger).
pub fn ablation_logging() -> Table {
    let w = by_name("GPT2-S").expect("catalog");
    let mut rows = Vec::new();
    for residual in [0.0f64, 0.05, 0.25, 1.0] {
        let cfg = w.train_config(7);
        let mut cost = CostModel::for_gpu(w.gpu);
        cost.log_async_residual = residual;
        let out = run_transparent_job_with(
            cfg,
            cost.clone(),
            FailureInjector::none(),
            Arc::new(SharedStore::new()),
            3,
            0,
        )
        .expect("clean run");
        let total = out
            .finish_times
            .iter()
            .fold(simcore::SimTime::ZERO, |a, b| a.max(*b))
            .as_secs();
        let mb = total / 3.0;
        let logged = out.logged_calls.iter().copied().max().unwrap_or(0) as f64 / 3.0;
        let overhead = logged * cost.effective_log_overhead().as_secs();
        rows.push(vec![
            format!("{residual:.2}"),
            f3(mb),
            format!("{:.5}", overhead),
            format!("{:.3}%", 100.0 * overhead / mb),
        ]);
    }
    Table {
        title: "Ablation: replay-logging async residual vs steady-state overhead (GPT2-S)".into(),
        header: vec![
            "Residual".into(),
            "Minibatch (s)".into(),
            "Log overhead (s)".into(),
            "Overhead %".into(),
        ],
        rows,
    }
}

/// Ablation 3 — recovery strategy per failure class: per-rank recovery
/// time of the victim under each §4.2/§4.3 path on the same workload
/// (driver corruption's host round-trip vs sticky's replica copy vs hard
/// migration vs pure transient reset).
pub fn ablation_recovery_paths() -> Table {
    let mut w = by_name("GPT2-S").expect("catalog");
    w.layout = ParallelLayout::data_parallel(4);
    w.gpu = GpuGeneration::V100_32G;
    let cases = [
        (
            "transient (reset in place)",
            FailureKind::TransientNetwork,
            Phase::AllReduce,
        ),
        (
            "driver corruption (host round-trip)",
            FailureKind::DriverCorruption,
            Phase::Backward,
        ),
        (
            "sticky (replica copy)",
            FailureKind::StickyCuda,
            Phase::Backward,
        ),
        (
            "optimizer-step (roll forward)",
            FailureKind::StickyCuda,
            Phase::OptimizerStep,
        ),
        (
            "hard (migrate + CRIU)",
            FailureKind::GpuHardware,
            Phase::Backward,
        ),
    ];
    let mut rows = Vec::new();
    for (label, kind, phase) in cases {
        let out = transparent_recovery_run(&w, 0, kind, phase);
        let victim = out
            .reports
            .iter()
            .find(|r| r.was_victim)
            .or_else(|| out.reports.first())
            .expect("victim report");
        rows.push(vec![
            label.to_string(),
            format!("{:?}", victim.mode),
            f2(victim.total.as_secs()),
        ]);
    }
    Table {
        title: "Ablation: recovery path vs victim recovery time (GPT2-S, 4x V100 DP)".into(),
        header: vec![
            "Failure class".into(),
            "Mode".into(),
            "Victim recovery (s)".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn watchdog_latency_tracks_timeout() {
        let t = ablation_watchdog();
        assert_eq!(t.rows.len(), 5);
        // Latency strictly exceeds the timeout, by less than ~60 ms of
        // polling slack.
        for row in &t.rows {
            let slack: f64 = row[2].trim_end_matches(" ms").parse().unwrap();
            assert!((0.0..60.0).contains(&slack), "{row:?}");
        }
    }

    #[test]
    fn logging_overhead_scales_with_residual() {
        let t = ablation_logging();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let zero = parse(&t.rows[0][3]);
        let full = parse(&t.rows[3][3]);
        assert_eq!(zero, 0.0);
        assert!(full > parse(&t.rows[1][3]));
    }
}

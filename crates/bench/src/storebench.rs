//! Multi-job storage-persistence benchmark, emitted as `BENCH_store.json`.
//!
//! Four measurement sections, one per claim the coordinator PR makes:
//!
//! 1. **Head-to-head** — the write-behind pipeline vs. the blocking
//!    shard pool at *equal durability* (the clock stops only when every
//!    submitted checkpoint's completion sidecar has landed), over both
//!    the in-process [`SharedStore`] and the latency-injecting
//!    [`SimObjectStore`]. Write-behind wins by overlapping the CPU half
//!    (encode + CRC) of generation `i + 1` with the uploads of
//!    generation `i`.
//! 2. **Jobs×ranks ladder under churn** — aggregate durable throughput
//!    of a [`Coordinator`] over a 4-node [`PlacedStore`] while jobs
//!    arrive, depart (with purge), a storage node joins mid-run (epoch
//!    rebalance), and a write fault tears one shard.
//! 3. **Isolation** — a healthy job's throughput alone vs. alongside a
//!    job gated onto a throttled backend sharing the same uploader
//!    pool: the per-job gate must keep the slow job's backlog out of
//!    the shared pipeline.
//! 4. **Bit identity** — delta-chained write-behind checkpoints must
//!    read back bit-exact on every backend.
//! 5. **Restore matrix** — serial [`checkpoint::read_checkpoint`] vs.
//!    the parallel restore plane
//!    ([`jitckpt::restore::read_checkpoint_parallel`]) across backends ×
//!    shard counts × delta depths, with bit-identity verified per cell;
//!    plus the delta writer's list-traffic savings from the coordinator's
//!    sidecar memo ([`jitckpt::checkpoint::MetaCache`]).

use crate::ckpt::{synthetic_state, touch_optimizer_slice};
use cluster::{SharedStore, StorageBackend};
use coordinator::{
    Coordinator, CoordinatorConfig, JobSpec, ObjectStoreProfile, PlacedStore, SimObjectStore,
};
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind, ShardConfig, ShardPlan};
use jitckpt::pipeline::{WriteBehind, WriteBehindConfig};
use jitckpt::restore::{read_checkpoint_parallel, RestoreConfig};
use simcore::{JobId, RankId, SimError, SimResult};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Uploader-pool width used on both sides of the head-to-head, so the
/// comparison isolates pipelining, not parallelism.
const HEAD_TO_HEAD_WORKERS: usize = 4;

/// One backend's write-behind vs. blocking measurement.
#[derive(Debug, Clone)]
pub struct HeadToHead {
    /// Backend label (`mem`, `objstore`).
    pub backend: &'static str,
    /// Checkpoint generations persisted per measurement.
    pub gens: usize,
    /// Blocking shard-pool throughput, MB/s of payload.
    pub blocking_mbps: f64,
    /// Write-behind throughput at equal durability, MB/s.
    pub write_behind_mbps: f64,
}

impl HeadToHead {
    /// Write-behind speedup over blocking.
    pub fn speedup(&self) -> f64 {
        self.write_behind_mbps / self.blocking_mbps
    }
}

/// One jobs×ranks cell of the churn ladder.
#[derive(Debug, Clone, Copy)]
pub struct LadderCell {
    /// Concurrent jobs admitted for the whole run.
    pub jobs: usize,
    /// Ranks submitting per job per generation.
    pub ranks: usize,
    /// Checkpoints that reached durability.
    pub ok_checkpoints: usize,
    /// Checkpoints whose sidecar was suppressed (torn shard put).
    pub failed_checkpoints: usize,
    /// Churn events injected (job arrive+depart, node join, torn put,
    /// lost put).
    pub churn_events: usize,
    /// Aggregate durable payload throughput, MB/s.
    pub mbps: f64,
}

/// Healthy-job throughput with and without a gated slow neighbour.
#[derive(Debug, Clone, Copy)]
pub struct IsolationResult {
    /// Healthy job alone on the shared pipeline, MB/s.
    pub healthy_alone_mbps: f64,
    /// Healthy job while a throttled-backend job shares the pool, MB/s.
    pub healthy_alongside_mbps: f64,
    /// The slow job still reached durability (gated, not starved).
    pub slow_job_durable: bool,
}

impl IsolationResult {
    /// Fraction of solo throughput the healthy job keeps.
    pub fn retention(&self) -> f64 {
        self.healthy_alongside_mbps / self.healthy_alone_mbps
    }
}

/// One backend × shard-count × delta-depth cell of the restore matrix.
#[derive(Debug, Clone, Copy)]
pub struct RestoreRow {
    /// Backend label (`mem`, `objstore`, `placed`).
    pub backend: &'static str,
    /// Shards the checkpoint split into.
    pub shards: usize,
    /// Delta-chain depth of the restored tip (0 = full checkpoint).
    pub delta_depth: usize,
    /// Serial reader wall time, milliseconds.
    pub serial_ms: f64,
    /// Parallel restore plane wall time, milliseconds.
    pub parallel_ms: f64,
    /// Shard `get`s the parallel restore issued.
    pub shard_reads: u64,
    /// Reads the placement layer served off an older ring.
    pub fallback_hits: u64,
}

impl RestoreRow {
    /// Parallel speedup over the serial reader.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

/// `store.list` traffic of a delta-chain write sequence: the bare
/// writer's full-prefix scan per checkpoint vs. the coordinator's
/// [`MetaCache`](jitckpt::checkpoint::MetaCache)-memoized path.
#[derive(Debug, Clone, Copy)]
pub struct ListSavings {
    /// Checkpoints written on each side.
    pub writes: usize,
    /// Listings issued by the uncached writer.
    pub scan_lists: u64,
    /// Listings issued through the coordinator's meta cache.
    pub cached_lists: u64,
}

impl ListSavings {
    /// Listings avoided by the cache.
    pub fn saved(&self) -> u64 {
        self.scan_lists.saturating_sub(self.cached_lists)
    }
}

/// Full multi-job storage benchmark report.
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// Per-checkpoint payload in the head-to-head section, bytes.
    pub payload_bytes: usize,
    /// Per-rank payload in the ladder and isolation sections, bytes.
    pub ladder_payload_bytes: usize,
    /// Write-behind vs. blocking, one row per backend.
    pub head_to_head: Vec<HeadToHead>,
    /// Jobs×ranks throughput under churn.
    pub ladder: Vec<LadderCell>,
    /// Gate-isolation measurement.
    pub isolation: IsolationResult,
    /// Per-backend delta-chain round-trip bit identity.
    pub bit_identity: Vec<(&'static str, bool)>,
    /// Serial vs. parallel restore across backends × shards × depths.
    pub restore: Vec<RestoreRow>,
    /// Delta writer list-traffic: scan vs. meta-cache.
    pub list_savings: ListSavings,
}

impl StoreReport {
    /// Write-behind speedup on the latency-bound object store — the
    /// backend the pipeline exists for.
    pub fn objstore_speedup(&self) -> f64 {
        self.head_to_head
            .iter()
            .find(|h| h.backend == "objstore")
            .map(|h| h.speedup())
            .unwrap_or(f64::NAN)
    }

    /// Aggregate-throughput scaling at `ranks`: widest-jobs cell over
    /// the single-job cell.
    pub fn scaling_at(&self, ranks: usize) -> f64 {
        let at = |jobs_pick: fn(&[&LadderCell]) -> Option<f64>| {
            let cells: Vec<&LadderCell> = self.ladder.iter().filter(|c| c.ranks == ranks).collect();
            jobs_pick(&cells)
        };
        let lo = at(|cs| cs.iter().min_by_key(|c| c.jobs).map(|c| c.mbps));
        let hi = at(|cs| cs.iter().max_by_key(|c| c.jobs).map(|c| c.mbps));
        match (lo, hi) {
            (Some(lo), Some(hi)) if lo > 0.0 => hi / lo,
            _ => f64::NAN,
        }
    }

    /// True when every backend round-tripped bit-exact.
    pub fn bit_identical_everywhere(&self) -> bool {
        !self.bit_identity.is_empty() && self.bit_identity.iter().all(|(_, ok)| *ok)
    }

    /// Parallel-restore speedup on the latency-bound object store at the
    /// widest full-checkpoint cell nearest 16 shards — the backend and
    /// geometry the fetch pool exists for.
    pub fn parallel_restore_speedup_objstore(&self) -> f64 {
        self.restore
            .iter()
            .filter(|r| r.backend == "objstore" && r.delta_depth == 0)
            .min_by_key(|r| r.shards.abs_diff(16))
            .map(|r| r.speedup())
            .unwrap_or(f64::NAN)
    }

    /// Renders the report as the `BENCH_store.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"store\",\n");
        out.push_str(&format!("  \"payload_bytes\": {},\n", self.payload_bytes));
        out.push_str(&format!(
            "  \"ladder_payload_bytes\": {},\n",
            self.ladder_payload_bytes
        ));
        out.push_str("  \"head_to_head\": [\n");
        for (i, h) in self.head_to_head.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"gens\": {}, \"blocking_mbps\": {:.2}, \
                 \"write_behind_mbps\": {:.2}, \"speedup\": {:.3}}}{}\n",
                h.backend,
                h.gens,
                h.blocking_mbps,
                h.write_behind_mbps,
                h.speedup(),
                if i + 1 < self.head_to_head.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"ladder\": [\n");
        for (i, c) in self.ladder.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"jobs\": {}, \"ranks\": {}, \"ok\": {}, \"failed\": {}, \
                 \"churn_events\": {}, \"mbps\": {:.2}}}{}\n",
                c.jobs,
                c.ranks,
                c.ok_checkpoints,
                c.failed_checkpoints,
                c.churn_events,
                c.mbps,
                if i + 1 < self.ladder.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let ranks_seen: Vec<usize> = {
            let mut r: Vec<usize> = self.ladder.iter().map(|c| c.ranks).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        out.push_str("  \"ladder_scaling\": {");
        for (i, r) in ranks_seen.iter().enumerate() {
            out.push_str(&format!(
                "\"ranks{}\": {:.3}{}",
                r,
                self.scaling_at(*r),
                if i + 1 < ranks_seen.len() { ", " } else { "" }
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"isolation\": {{\"healthy_alone_mbps\": {:.2}, \"healthy_alongside_mbps\": {:.2}, \
             \"retention\": {:.3}, \"slow_job_durable\": {}}},\n",
            self.isolation.healthy_alone_mbps,
            self.isolation.healthy_alongside_mbps,
            self.isolation.retention(),
            self.isolation.slow_job_durable
        ));
        out.push_str("  \"bit_identity\": {");
        for (i, (name, ok)) in self.bit_identity.iter().enumerate() {
            out.push_str(&format!(
                "\"{name}\": {ok}{}",
                if i + 1 < self.bit_identity.len() {
                    ", "
                } else {
                    ""
                }
            ));
        }
        out.push_str("},\n");
        out.push_str("  \"restore\": [\n");
        for (i, r) in self.restore.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"shards\": {}, \"delta_depth\": {}, \
                 \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \
                 \"shard_reads\": {}, \"fallback_hits\": {}}}{}\n",
                r.backend,
                r.shards,
                r.delta_depth,
                r.serial_ms,
                r.parallel_ms,
                r.speedup(),
                r.shard_reads,
                r.fallback_hits,
                if i + 1 < self.restore.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"delta_list_traffic\": {{\"writes\": {}, \"scan_lists\": {}, \
             \"cached_lists\": {}, \"saved\": {}}},\n",
            self.list_savings.writes,
            self.list_savings.scan_lists,
            self.list_savings.cached_lists,
            self.list_savings.saved()
        ));
        out.push_str(&format!(
            "  \"parallel_restore_speedup_objstore\": {:.3},\n",
            self.parallel_restore_speedup_objstore()
        ));
        out.push_str(&format!(
            "  \"write_behind_speedup_objstore\": {:.3}\n",
            self.objstore_speedup()
        ));
        out.push_str("}\n");
        out
    }
}

/// The object-store profile both head-to-head legs write through:
/// low-millisecond PUT latency (the cheap end of real blob stores),
/// bounded streams — enough that persistence is latency-bound, the
/// regime write-behind exists for.
fn bench_object_profile() -> ObjectStoreProfile {
    ObjectStoreProfile {
        put_latency: Duration::from_millis(2),
        get_latency: Duration::from_micros(500),
        bytes_per_sec: 1_000_000_000,
        parallel_streams: 8,
        put_loss_per_mille: 0,
        seed: 7,
    }
}

/// Per-node profile of the ladder fleet: same latency class, faster
/// reads so in-run GC sidecar fetches stay cheap.
fn ladder_node_profile(seed: u64) -> ObjectStoreProfile {
    ObjectStoreProfile {
        put_latency: Duration::from_millis(2),
        get_latency: Duration::from_micros(200),
        bytes_per_sec: 2_000_000_000,
        parallel_streams: 8,
        put_loss_per_mille: 0,
        seed,
    }
}

/// Measures one backend's blocking vs. write-behind throughput at equal
/// durability: `gens` generations of `payload` bytes each, one rank.
fn head_to_head(
    backend: &'static str,
    mk_store: &dyn Fn() -> Arc<dyn StorageBackend>,
    payload: usize,
    gens: usize,
) -> SimResult<HeadToHead> {
    let states: Vec<TrainState> = (1..=gens as u64)
        .map(|g| synthetic_state(payload, g))
        .collect();
    let cfg = ShardConfig {
        shard_bytes: (payload / 16).max(4 << 10),
        workers: HEAD_TO_HEAD_WORKERS,
        delta: false,
        max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
    };
    let mb = (payload * gens) as f64 / 1e6;

    // Blocking leg: every generation's puts complete before the next
    // generation's encode starts — the seed semantics.
    let store = mk_store();
    let start = Instant::now();
    for s in &states {
        checkpoint::write_checkpoint_with(
            &store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            s,
            &cfg,
        )?;
    }
    let blocking = start.elapsed().as_secs_f64();

    // Write-behind leg: stage every generation back to back, then wait
    // out all tickets — identical durability, overlapped I/O.
    let store = mk_store();
    let wb = WriteBehind::new(
        store.clone(),
        WriteBehindConfig {
            workers: HEAD_TO_HEAD_WORKERS,
            ..WriteBehindConfig::default()
        },
    );
    let start = Instant::now();
    let tickets: Vec<_> = states
        .iter()
        .map(|s| {
            let plan = ShardPlan::stage(
                &*store,
                JobId(0),
                CkptKind::Jit,
                RankId(0),
                0,
                0,
                0,
                s,
                &cfg,
            );
            wb.submit(&plan, None)
        })
        .collect();
    for t in &tickets {
        t.wait()?;
    }
    let behind = start.elapsed().as_secs_f64();

    Ok(HeadToHead {
        backend,
        gens,
        blocking_mbps: mb / blocking,
        write_behind_mbps: mb / behind,
    })
}

/// Runs one jobs×ranks cell of the churn ladder: `jobs` sessions over a
/// 4-node placed fleet of latency-injecting object stores, `gens`
/// generations × `ranks` cells each. Every job's gate admits one
/// checkpoint's bytes at a time, so a single job is latency-bound on
/// its own in-flight window and aggregate throughput grows with job
/// count until the uploader pool (or the CPU) saturates. Churn injected
/// mid-run: a transient job arrives and departs with purge, a storage
/// node joins (new placement epoch), one shard put is torn, and one
/// shard put is silently lost.
fn ladder_cell(jobs: usize, ranks: usize, payload: usize, gens: usize) -> SimResult<LadderCell> {
    let nodes: Vec<Arc<SimObjectStore>> = (0..4)
        .map(|i| Arc::new(SimObjectStore::new(ladder_node_profile(i as u64))))
        .collect();
    let placed = Arc::new(PlacedStore::new(
        nodes
            .iter()
            .map(|n| n.clone() as Arc<dyn StorageBackend>)
            .collect(),
    ));
    let coord = Coordinator::new(
        placed.clone(),
        CoordinatorConfig {
            pipeline: WriteBehindConfig {
                workers: 32,
                ..WriteBehindConfig::default()
            },
        },
    );
    let spec = JobSpec {
        ranks,
        shards: ShardConfig {
            shard_bytes: (payload / 4).max(4 << 10),
            workers: 2,
            delta: false,
            max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
        },
        keep_checkpoints: 2,
        // One checkpoint in flight per job: the gate, not the queue, is
        // each job's limiter.
        inflight_budget_bytes: payload,
    };
    let sessions: Vec<_> = (0..jobs).map(|_| coord.admit(spec.clone())).collect();
    let states: Vec<TrainState> = (1..=gens as u64)
        .map(|g| synthetic_state(payload, g))
        .collect();

    let start = Instant::now();
    let (ok, failed) = std::thread::scope(|s| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|sess| {
                let states = &states;
                s.spawn(move || {
                    let mut tickets = Vec::new();
                    for st in states {
                        for r in 0..ranks {
                            tickets.push(sess.submit_checkpoint(
                                CkptKind::Jit,
                                RankId(r as u32),
                                0,
                                0,
                                r,
                                st,
                            ));
                        }
                    }
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    for t in tickets {
                        match t.wait() {
                            Ok(()) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    // Retention GC once the job's writes are durable —
                    // inside the measured window, as a live job would.
                    sess.gc(CkptKind::Jit);
                    (ok, failed)
                })
            })
            .collect();

        // Churn, concurrent with the measured jobs: a transient job
        // arrives, checkpoints, departs with purge; a storage node
        // joins (new placement epoch); a shard put gets torn; a shard
        // put is acknowledged but silently dropped.
        let churn = coord.admit(spec.clone());
        for r in 0..ranks.min(4) {
            churn.submit_checkpoint(CkptKind::Jit, RankId(r as u32), 0, 0, r, &states[0]);
        }
        let _ = coord.depart(churn.job(), true);
        placed.add_node(
            Arc::new(SimObjectStore::new(ladder_node_profile(99))) as Arc<dyn StorageBackend>
        );
        nodes[0].tear_next_put_matching("ckpt/", 0.5);
        nodes[1].lose_next_put_matching("ckpt/");

        let mut ok = 0usize;
        let mut failed = 0usize;
        for h in handles {
            let (o, f) = h.join().expect("ladder job thread");
            ok += o;
            failed += f;
        }
        (ok, failed)
    });
    let secs = start.elapsed().as_secs_f64();

    // Correctness floor: at least one durable head checkpoint must read
    // back bit-identical through the rebalanced placement.
    let mut verified = false;
    'outer: for sess in &sessions {
        for r in 0..ranks {
            for g in (1..=gens as u64).rev() {
                if let Ok((got, _)) = checkpoint::read_checkpoint(
                    sess.backend(),
                    sess.job(),
                    CkptKind::Jit,
                    g,
                    0,
                    0,
                    r,
                ) {
                    if got == states[(g - 1) as usize] {
                        verified = true;
                        break 'outer;
                    }
                    return Err(SimError::CorruptCheckpoint(format!(
                        "ladder cell {jobs}x{ranks}: job {} dp {r} it {g} read back different bytes",
                        sess.job()
                    )));
                }
            }
        }
    }
    if !verified {
        return Err(SimError::CorruptCheckpoint(format!(
            "ladder cell {jobs}x{ranks}: no durable checkpoint readable after churn"
        )));
    }

    Ok(LadderCell {
        jobs,
        ranks,
        ok_checkpoints: ok,
        failed_checkpoints: failed,
        churn_events: 4,
        mbps: (ok * payload) as f64 / 1e6 / secs,
    })
}

/// Measures gate isolation: a healthy job's durable throughput alone,
/// then with a neighbour writing through a throttled backend while
/// sharing the same uploader pool under a one-shard gate budget.
fn isolation(payload: usize, ranks: usize, gens: usize) -> SimResult<IsolationResult> {
    let shard_bytes = (payload / 4).max(4 << 10);
    let mk_spec = |budget: usize| JobSpec {
        ranks,
        shards: ShardConfig {
            shard_bytes,
            workers: 2,
            delta: false,
            max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
        },
        keep_checkpoints: gens + 1,
        inflight_budget_bytes: budget,
    };
    let pool = CoordinatorConfig {
        pipeline: WriteBehindConfig {
            workers: 8,
            ..WriteBehindConfig::default()
        },
    };
    let healthy_work = |sess: &Arc<coordinator::JobSession>| -> SimResult<f64> {
        let states: Vec<TrainState> = (1..=gens as u64)
            .map(|g| synthetic_state(payload, g))
            .collect();
        let start = Instant::now();
        let mut tickets = Vec::new();
        for st in &states {
            for r in 0..ranks {
                tickets.push(sess.submit_checkpoint(CkptKind::Jit, RankId(r as u32), 0, 0, r, st));
            }
        }
        for t in &tickets {
            t.wait()?;
        }
        Ok((payload * gens * ranks) as f64 / 1e6 / start.elapsed().as_secs_f64())
    };

    // Alone.
    let coord = Coordinator::over_object_store(
        SimObjectStore::new(ObjectStoreProfile::instant()),
        pool.clone(),
    );
    let alone = healthy_work(&coord.admit(mk_spec(64 << 20)))?;

    // Alongside: the neighbour brings a dedicated slow backend but
    // shares the uploader pool; its gate admits ~one shard at a time.
    let coord = Coordinator::over_object_store(
        SimObjectStore::new(ObjectStoreProfile::instant()),
        pool.clone(),
    );
    let slow_store = SimObjectStore::new(ObjectStoreProfile {
        put_latency: Duration::from_millis(2),
        parallel_streams: 1,
        ..ObjectStoreProfile::instant()
    });
    slow_store.set_throttle(4.0);
    let slow = coord.admit_with_backend(mk_spec(shard_bytes), Arc::new(slow_store));
    let healthy = coord.admit(mk_spec(64 << 20));
    let (alongside, slow_ok) = std::thread::scope(|s| {
        let slow_ref = &slow;
        let state = synthetic_state(payload, 1);
        let slow_handle = s.spawn(move || {
            let tickets: Vec<_> = (1..=4u64)
                .map(|g| {
                    let mut st = state.clone();
                    st.iteration = g;
                    slow_ref.submit_checkpoint(CkptKind::Jit, RankId(0), 0, 0, 0, &st)
                })
                .collect();
            tickets.iter().all(|t| t.wait().is_ok())
        });
        let alongside = healthy_work(&healthy);
        let slow_ok = slow_handle.join().expect("slow job thread");
        alongside.map(|a| (a, slow_ok))
    })?;

    Ok(IsolationResult {
        healthy_alone_mbps: alone,
        healthy_alongside_mbps: alongside,
        slow_job_durable: slow_ok,
    })
}

/// Writes a three-generation delta chain through the write-behind
/// pipeline and reads every generation back, per backend.
fn bit_identity(payload: usize) -> SimResult<Vec<(&'static str, bool)>> {
    let backends: Vec<(&'static str, Arc<dyn StorageBackend>)> = vec![
        ("mem", Arc::new(SharedStore::new())),
        (
            "objstore",
            Arc::new(SimObjectStore::new(bench_object_profile())),
        ),
    ];
    let cfg = ShardConfig {
        shard_bytes: (payload / 8).max(4 << 10),
        workers: 2,
        delta: true,
        max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
    };
    let mut out = Vec::new();
    for (name, store) in backends {
        let wb = WriteBehind::new(store.clone(), WriteBehindConfig::default());
        let mut states = vec![synthetic_state(payload, 1)];
        for _ in 0..2 {
            let mut next = states.last().unwrap().clone();
            touch_optimizer_slice(&mut next, 128);
            states.push(next);
        }
        let mut ok = true;
        for s in &states {
            // Wait each ticket so the next stage sees the previous
            // sidecar and forms a real delta chain.
            let plan = ShardPlan::stage(
                &*store,
                JobId(0),
                CkptKind::Jit,
                RankId(0),
                0,
                0,
                0,
                s,
                &cfg,
            );
            wb.submit(&plan, None).wait()?;
        }
        for s in &states {
            let (got, _) = checkpoint::read_checkpoint(
                &*store,
                JobId(0),
                CkptKind::Jit,
                s.iteration,
                0,
                0,
                0,
            )?;
            ok &= got == *s;
        }
        out.push((name, ok));
    }
    Ok(out)
}

/// The object-store profile the restore matrix reads through: the same
/// low-millisecond latency class on *both* verbs, so restore — like real
/// blob-store recovery — is get-latency-bound, the regime the parallel
/// fetch pool exists for.
fn restore_object_profile() -> ObjectStoreProfile {
    ObjectStoreProfile {
        put_latency: Duration::from_millis(2),
        get_latency: Duration::from_millis(2),
        bytes_per_sec: 1_000_000_000,
        parallel_streams: 8,
        put_loss_per_mille: 0,
        seed: 7,
    }
}

/// Encoded length of a `payload`-byte synthetic state — the restore
/// matrix sizes `shard_bytes` off this so a cell labelled `shards`
/// really splits into that many objects.
fn encoded_len_of(payload: usize) -> SimResult<usize> {
    let store = SharedStore::new();
    let s = synthetic_state(payload, 1);
    let cfg = ShardConfig {
        shard_bytes: usize::MAX >> 1,
        workers: 1,
        delta: false,
        max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
    };
    checkpoint::write_checkpoint_with(
        &store,
        JobId(0),
        CkptKind::Jit,
        RankId(0),
        0,
        0,
        0,
        &s,
        &cfg,
    )?;
    let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 1, 0, 0, 0)?;
    Ok(meta.payload_len as usize)
}

/// One restore-matrix cell: writes a (possibly delta-chained)
/// checkpoint, optionally churns the backend (`post_write` — e.g. a
/// placement epoch bump), then times the serial reader against the
/// parallel plane on the same tip and verifies both bit-identical.
fn restore_cell(
    backend: &'static str,
    store: &dyn StorageBackend,
    post_write: &dyn Fn(),
    encoded_len: usize,
    payload: usize,
    shards: usize,
    depth: usize,
) -> SimResult<RestoreRow> {
    let cfg = ShardConfig {
        shard_bytes: encoded_len.div_ceil(shards).max(1),
        workers: 4,
        delta: depth > 0,
        max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN.max(depth as u32),
    };
    let mut s = synthetic_state(payload, 1);
    checkpoint::write_checkpoint_with(
        store,
        JobId(0),
        CkptKind::Jit,
        RankId(0),
        0,
        0,
        0,
        &s,
        &cfg,
    )?;
    for _ in 0..depth {
        touch_optimizer_slice(&mut s, 128);
        checkpoint::write_checkpoint_with(
            store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &s,
            &cfg,
        )?;
    }
    post_write();
    let tip = s.iteration;

    let start = Instant::now();
    let (serial_state, _) =
        checkpoint::read_checkpoint(store, JobId(0), CkptKind::Jit, tip, 0, 0, 0)?;
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let (par_state, _, stats) = read_checkpoint_parallel(
        store,
        JobId(0),
        CkptKind::Jit,
        tip,
        0,
        0,
        0,
        &RestoreConfig::default(),
    )?;
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    if serial_state != s || par_state != s {
        return Err(SimError::CorruptCheckpoint(format!(
            "restore cell {backend}/{shards}sh/depth{depth}: restored state not bit-identical"
        )));
    }
    Ok(RestoreRow {
        backend,
        shards,
        delta_depth: depth,
        serial_ms,
        parallel_ms,
        shard_reads: stats.shard_reads,
        fallback_hits: stats.fallback_hits,
    })
}

/// The restore matrix: backends × shard counts × delta depths. The
/// `placed` backend gets a node added *after* the write (new placement
/// epoch), so its restores exercise mid-rebalance ring-history fallback
/// on both the serial and parallel side.
fn restore_matrix(
    payload: usize,
    shards: &[usize],
    depths: &[usize],
) -> SimResult<Vec<RestoreRow>> {
    let encoded_len = encoded_len_of(payload)?;
    let mut rows = Vec::new();
    for &n in shards {
        for &d in depths {
            let mem = SharedStore::new();
            rows.push(restore_cell(
                "mem",
                &mem,
                &|| {},
                encoded_len,
                payload,
                n,
                d,
            )?);

            let obj = SimObjectStore::new(restore_object_profile());
            rows.push(restore_cell(
                "objstore",
                &obj,
                &|| {},
                encoded_len,
                payload,
                n,
                d,
            )?);

            let placed = PlacedStore::new(
                (0..4)
                    .map(|i| {
                        Arc::new(SimObjectStore::new(ObjectStoreProfile {
                            seed: i,
                            ..restore_object_profile()
                        })) as Arc<dyn StorageBackend>
                    })
                    .collect(),
            );
            let churn = || {
                placed.add_node(Arc::new(SimObjectStore::new(restore_object_profile()))
                    as Arc<dyn StorageBackend>);
            };
            rows.push(restore_cell(
                "placed",
                &placed,
                &churn,
                encoded_len,
                payload,
                n,
                d,
            )?);
        }
    }
    Ok(rows)
}

/// Delta-chain list traffic: `writes` generations written with the bare
/// writer (full `store.list` scan per checkpoint to find the delta
/// base) vs. through a coordinator [`JobSession`] whose
/// [`MetaCache`](jitckpt::checkpoint::MetaCache) memoizes the newest
/// sidecar per cell.
fn delta_list_savings(payload: usize, writes: usize) -> SimResult<ListSavings> {
    let mk_states = || -> Vec<TrainState> {
        let mut states = vec![synthetic_state(payload, 1)];
        for _ in 1..writes {
            let mut next = states.last().unwrap().clone();
            touch_optimizer_slice(&mut next, 128);
            states.push(next);
        }
        states
    };
    let cfg = ShardConfig {
        shard_bytes: (payload / 8).max(1 << 10),
        workers: 2,
        delta: true,
        max_delta_chain: checkpoint::DEFAULT_MAX_DELTA_CHAIN,
    };

    // Scan side: the bare writer re-lists the job prefix per write.
    let store = Arc::new(SharedStore::new());
    for s in &mk_states() {
        checkpoint::write_checkpoint_with(
            &*store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            s,
            &cfg,
        )?;
    }
    let scan_lists = store.list_count();

    // Cached side: the coordinator's blocking write path, same chain.
    let store = Arc::new(SharedStore::new());
    let coord = Coordinator::new(store.clone(), CoordinatorConfig::default());
    let sess = coord.admit(JobSpec {
        ranks: 1,
        shards: cfg,
        keep_checkpoints: writes + 1,
        inflight_budget_bytes: 64 << 20,
    });
    for s in &mk_states() {
        sess.write_checkpoint_blocking(CkptKind::Jit, RankId(0), 0, 0, 0, s)?;
    }
    let cached_lists = store.list_count();

    Ok(ListSavings {
        writes,
        scan_lists,
        cached_lists,
    })
}

/// Runs the full store benchmark matrix.
///
/// `payload_bytes` sizes the head-to-head checkpoints; the ladder and
/// isolation sections use a per-rank payload derived from it (1/64,
/// clamped to [16 KiB, 256 KiB]) so wide cells stay tractable.
pub fn run_store_bench(
    payload_bytes: usize,
    gens: usize,
    jobs_ladder: &[usize],
    ranks_ladder: &[usize],
) -> SimResult<StoreReport> {
    let ladder_payload = (payload_bytes / 16).clamp(64 << 10, 256 << 10);

    let head = vec![
        head_to_head(
            "mem",
            &|| Arc::new(SharedStore::new()) as Arc<dyn StorageBackend>,
            payload_bytes,
            gens,
        )?,
        head_to_head(
            "objstore",
            &|| Arc::new(SimObjectStore::new(bench_object_profile())) as Arc<dyn StorageBackend>,
            payload_bytes,
            gens,
        )?,
    ];

    let mut ladder = Vec::new();
    for &jobs in jobs_ladder {
        for &ranks in ranks_ladder {
            // Normalize work per cell (~512 checkpoints) so small cells
            // aren't timer-noise and wide cells stay tractable.
            let cell_gens = (512 / (jobs * ranks)).clamp(2, 16);
            ladder.push(ladder_cell(jobs, ranks, ladder_payload, cell_gens)?);
        }
    }

    let isolation = isolation(ladder_payload, 8.min(ranks_ladder[0]).max(2), 4)?;
    let bit_identity = bit_identity(ladder_payload.max(64 << 10))?;
    let restore = restore_matrix(ladder_payload, &[4, 16, 64], &[0, 3])?;
    let list_savings = delta_list_savings(ladder_payload, 6)?;

    Ok(StoreReport {
        payload_bytes,
        ladder_payload_bytes: ladder_payload,
        head_to_head: head,
        ladder,
        isolation,
        bit_identity,
        restore,
        list_savings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_on_tiny_run() -> SimResult<()> {
        // Tiny payloads so the test is fast; the shipped BENCH_store.json
        // comes from `scripts/bench.sh` at full size.
        let report = run_store_bench(1 << 20, 3, &[1, 2], &[2])?;
        assert_eq!(report.head_to_head.len(), 2);
        assert_eq!(report.ladder.len(), 2);
        for c in &report.ladder {
            assert!(c.mbps > 0.0, "{c:?}");
            assert!(c.ok_checkpoints > 0, "{c:?}");
            assert_eq!(c.churn_events, 4);
        }
        assert!(
            report.bit_identical_everywhere(),
            "{:?}",
            report.bit_identity
        );
        assert!(report.isolation.slow_job_durable);
        assert!(report.isolation.retention() > 0.0);
        assert_eq!(
            report.restore.len(),
            3 * 3 * 2,
            "3 backends × 3 shard counts × 2 depths"
        );
        for r in &report.restore {
            assert!(r.serial_ms > 0.0 && r.parallel_ms > 0.0, "{r:?}");
            assert!(r.shard_reads > 0, "{r:?}");
        }
        assert!(
            report.list_savings.cached_lists < report.list_savings.scan_lists,
            "meta cache must save list traffic: {:?}",
            report.list_savings
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"store\""), "{json}");
        assert!(json.contains("write_behind_speedup_objstore"), "{json}");
        assert!(json.contains("parallel_restore_speedup_objstore"), "{json}");
        assert!(json.contains("\"restore\": ["), "{json}");
        assert!(json.contains("delta_list_traffic"), "{json}");
        assert!(json.contains("ladder_scaling"), "{json}");
        Ok(())
    }

    #[test]
    fn write_behind_beats_blocking_on_latency_bound_store() -> SimResult<()> {
        // The acceptance claim, on the backend the pipeline targets:
        // same durability (all sidecars landed), overlapped I/O.
        //
        // Debug builds (including the lock-witness instrumented gate)
        // inflate encode/CRC cost ~20x, which drags the run out of the
        // latency-bound regime the claim is about; push the backend
        // latency up and the payload down there so overlap — not CPU —
        // stays the measured quantity. Release uses the shipped profile.
        let (payload, profile) = if cfg!(debug_assertions) {
            let mut p = bench_object_profile();
            p.put_latency = Duration::from_millis(10);
            (1 << 20, p)
        } else {
            (4 << 20, bench_object_profile())
        };
        let h = head_to_head(
            "objstore",
            &|| Arc::new(SimObjectStore::new(profile.clone())) as Arc<dyn StorageBackend>,
            payload,
            5,
        )?;
        assert!(
            h.speedup() > 1.0,
            "write-behind {:.1} MB/s vs blocking {:.1} MB/s",
            h.write_behind_mbps,
            h.blocking_mbps
        );
        Ok(())
    }

    #[test]
    fn parallel_restore_beats_serial_on_latency_bound_store() -> SimResult<()> {
        // The restore acceptance claim: at 16 shards on the 2 ms-get
        // object store, 16 serial round-trips vs. two 8-wide fetch
        // waves. The shipped BENCH_store.json (release, scripts/bench.sh)
        // shows ≥3×; debug builds inflate the CPU half (encode/CRC and
        // the lock-witness gate), so assert a conservative floor here.
        let payload = 256 << 10;
        let encoded = encoded_len_of(payload)?;
        let obj = SimObjectStore::new(restore_object_profile());
        let row = restore_cell("objstore", &obj, &|| {}, encoded, payload, 16, 0)?;
        assert_eq!(row.shard_reads, 16, "{row:?}");
        assert!(
            row.speedup() > 2.0,
            "parallel restore {:.2} ms vs serial {:.2} ms ({:.2}x)",
            row.parallel_ms,
            row.serial_ms,
            row.speedup()
        );
        Ok(())
    }

    #[test]
    fn placed_restore_survives_epoch_bump_bit_identically() -> SimResult<()> {
        let payload = 64 << 10;
        let encoded = encoded_len_of(payload)?;
        let placed = PlacedStore::new(
            (0..3)
                .map(|i| {
                    Arc::new(SimObjectStore::new(ObjectStoreProfile {
                        seed: i,
                        ..ObjectStoreProfile::instant()
                    })) as Arc<dyn StorageBackend>
                })
                .collect(),
        );
        let churn = || {
            placed.add_node(Arc::new(SimObjectStore::new(ObjectStoreProfile::instant()))
                as Arc<dyn StorageBackend>);
        };
        // restore_cell verifies bit identity internally; the epoch bump
        // must also surface as ring-history fallback reads.
        let row = restore_cell("placed", &placed, &churn, encoded, payload, 32, 0)?;
        assert!(row.fallback_hits > 0, "{row:?}");
        Ok(())
    }
}

//! Phase probe: where a 64 MiB checkpoint write spends its time.
//!
//! Compares the seed's generic per-element `Vec<f32>` encode against the
//! bulk `encode_f32_slice` path `TrainState::encode` now uses, with and
//! without pre-sizing the staging buffer, plus the CRC pass. Run via
//! `cargo run --release -p bench --example phase_probe`; its numbers back
//! the scaling-ceiling discussion in EXPERIMENTS.md.
use bench::ckpt::synthetic_state;
use bytes::BytesMut;
use simcore::codec::{crc64, encode_f32_slice, Encode};
use std::time::Instant;

fn main() {
    let state = synthetic_state(64 << 20, 5);
    for round in 0..3 {
        // Seed path: generic per-element encode, no pre-size.
        let t = Instant::now();
        let mut staged = BytesMut::new();
        state.iteration.encode(&mut staged);
        state.opt_t.encode(&mut staged);
        state.logical_bytes.encode(&mut staged);
        (state.buffers.len() as u64).encode(&mut staged);
        for (key, tag, data) in &state.buffers {
            key.encode(&mut staged);
            tag.encode(&mut staged);
            data.encode(&mut staged); // generic Vec<f32> per-element path
        }
        let generic = t.elapsed();
        let len = staged.len();

        // Production path: bulk f32 chunks, no pre-size.
        let t = Instant::now();
        let mut staged = BytesMut::new();
        state.encode(&mut staged);
        let bulk = t.elapsed();
        assert_eq!(staged.len(), len);

        // Production path with exact pre-sizing (what the checkpoint
        // writer does).
        let t = Instant::now();
        let mut staged = BytesMut::with_capacity(state.encoded_len());
        state.encode(&mut staged);
        let presized = t.elapsed();
        assert_eq!(staged.len(), state.encoded_len());

        // The serial CRC pass over the stream.
        let t = Instant::now();
        let c = crc64(&staged);
        let crc_t = t.elapsed();

        // Bulk helper alone, straight into a pre-sized buffer.
        let t = Instant::now();
        let mut raw = BytesMut::with_capacity(len);
        for (_, _, data) in &state.buffers {
            encode_f32_slice(data, &mut raw);
        }
        let helper = t.elapsed();

        println!(
            "round {round}: generic {:.3}s  bulk {:.3}s  bulk+presize {:.3}s  \
             crc {:.3}s  helper-only {:.3}s  (crc {c:#x}, {len} bytes)",
            generic.as_secs_f64(),
            bulk.as_secs_f64(),
            presized.as_secs_f64(),
            crc_t.as_secs_f64(),
            helper.as_secs_f64(),
        );
    }
}

//! Analytical-model benchmarks (Table 8 / §6.5): the closed-form
//! evaluation must stay trivially cheap — it is meant to run inside
//! schedulers.

use criterion::{criterion_group, criterion_main, Criterion};
use jitckpt::analysis::{
    optimal_frequency, scaling_curve, wasted_rate_jit_transparent, wasted_rate_jit_user,
    wasted_rate_periodic_optimal, JobParams,
};
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let p = JobParams::new(5.0, 2.0 / 992.0, 9.9, 1024, 0.418);
    c.bench_function("optimal_frequency", |b| {
        b.iter(|| black_box(optimal_frequency(black_box(&p))))
    });
    c.bench_function("wasted_rates_all_three", |b| {
        b.iter(|| {
            black_box((
                wasted_rate_periodic_optimal(black_box(&p)),
                wasted_rate_jit_user(black_box(&p), 0.0),
                wasted_rate_jit_transparent(black_box(&p), 1e-4),
            ))
        })
    });
    let ns: Vec<usize> = (0..14).map(|k| 4usize << k).collect();
    c.bench_function("scaling_curve_14_points", |b| {
        b.iter(|| black_box(scaling_curve(black_box(&p), &ns, 0.0, 1e-4)))
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);

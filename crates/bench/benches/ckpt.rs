//! Sharded checkpoint pipeline micro-benchmarks: the §5 stall cost `o`
//! is whatever this file measures, so the write path is benchmarked
//! against the seed's monolithic encode+bitwise-CRC baseline at several
//! worker-pool widths, plus the delta-mode follow-up write.

use bench::ckpt::{
    monolithic_read, monolithic_write, sharded_read, sharded_write, synthetic_state,
    touch_optimizer_slice,
};
use cluster::SharedStore;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jitckpt::checkpoint::ShardConfig;
use std::hint::black_box;

const PAYLOAD: usize = 8 << 20;
const SHARD: usize = 512 << 10;

fn bench_ckpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckpt");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    let state = synthetic_state(PAYLOAD, 5);

    let store = SharedStore::new();
    group.bench_function("monolithic_write_8MiB", |b| {
        b.iter(|| black_box(monolithic_write(&store, black_box(&state))))
    });
    group.bench_function("monolithic_read_8MiB", |b| {
        b.iter(|| black_box(monolithic_read(&store)))
    });

    for workers in [1usize, 4, 8] {
        let cfg = ShardConfig {
            shard_bytes: SHARD,
            workers,
            delta: false,
            max_delta_chain: jitckpt::checkpoint::DEFAULT_MAX_DELTA_CHAIN,
        };
        let store = SharedStore::new();
        group.bench_function(format!("sharded_write_8MiB_w{workers}"), |b| {
            b.iter(|| black_box(sharded_write(&store, black_box(&state), &cfg)))
        });
        if workers == 4 {
            group.bench_function("sharded_read_8MiB", |b| {
                b.iter(|| black_box(sharded_read(&store, state.iteration)))
            });
        }
    }

    // Delta: write the base once, then benchmark the follow-up write
    // after an optimizer step that touched a small slice.
    let cfg = ShardConfig {
        shard_bytes: SHARD,
        workers: 4,
        delta: true,
        max_delta_chain: jitckpt::checkpoint::DEFAULT_MAX_DELTA_CHAIN,
    };
    let store = SharedStore::new();
    let _ = sharded_write(&store, &state, &cfg);
    let mut touched = state.clone();
    touch_optimizer_slice(&mut touched, 256);
    group.bench_function("sharded_delta_write_8MiB", |b| {
        b.iter(|| black_box(sharded_write(&store, black_box(&touched), &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_ckpt);
criterion_main!(benches);

//! Chunked-reduction micro-benchmark: the cache-blocked per-chunk
//! reduction at the heart of the ring engine vs the slot reference's
//! monolithic full-vector accumulation, isolated from rendezvous and
//! thread costs.

use collectives::ring::reduce_chunked;
use collectives::{ReduceOp, RingConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// The slot engine's data plane: clone contribution 0, then stream the
/// full vector through cache once per remaining peer.
fn reduce_monolithic(contribs: &[&[f32]]) -> Vec<f32> {
    let mut acc = contribs[0].to_vec();
    for c in &contribs[1..] {
        for (a, b) in acc.iter_mut().zip(*c) {
            *a += *b;
        }
    }
    acc
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("coll_reduce");
    for (n, elems) in [(4usize, 1usize << 18), (8, 1 << 18)] {
        let contribs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..elems).map(|i| ((i + r) % 97) as f32).collect())
            .collect();
        let refs: Vec<&[f32]> = contribs.iter().map(Vec::as_slice).collect();
        group.throughput(Throughput::Bytes((n * elems * 4) as u64));
        group.bench_function(format!("monolithic_n{n}_{elems}"), |b| {
            b.iter(|| black_box(reduce_monolithic(black_box(&refs))))
        });
        let cfg = RingConfig::uniform(128 * 1024, 1);
        group.bench_function(format!("chunked_n{n}_{elems}"), |b| {
            b.iter(|| black_box(reduce_chunked(black_box(&refs), ReduceOp::Sum, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduce);
criterion_main!(benches);

//! Checkpoint codec throughput: serialization dominates the fixed
//! overhead of a JIT checkpoint, so encode/decode and CRC must be cheap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simcore::codec::{crc64, decode_framed, encode_framed, f32_checksum};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for elems in [1usize << 12, 1 << 16] {
        let data: Vec<f32> = (0..elems).map(|i| i as f32 * 0.5).collect();
        group.throughput(Throughput::Bytes((elems * 4) as u64));
        group.bench_function(format!("encode_framed_{elems}"), |b| {
            b.iter(|| black_box(encode_framed(black_box(&data))))
        });
        let framed = encode_framed(&data);
        group.bench_function(format!("decode_framed_{elems}"), |b| {
            b.iter(|| {
                let v: Vec<f32> = decode_framed(black_box(&framed)).unwrap();
                black_box(v)
            })
        });
        group.bench_function(format!("f32_checksum_{elems}"), |b| {
            b.iter(|| black_box(f32_checksum(black_box(&data))))
        });
        let bytes: Vec<u8> = vec![0xAB; elems];
        group.bench_function(format!("crc64_{elems}B"), |b| {
            b.iter(|| black_box(crc64(black_box(&bytes))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);

//! Watchdog ablation: hang-detection latency as a function of the
//! configured timeout (DESIGN.md ablation #1). Detection latency directly
//! adds to every recovery, but short timeouts risk false positives on
//! slow-but-healthy collectives.

use collectives::{CollectiveObserver, CollectiveTicket};
use criterion::{criterion_group, criterion_main, Criterion};
use proxy::Watchdog;
use simcore::RankId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn detection_latency(timeout_ms: u64) -> Duration {
    let fired = Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    let wd = Watchdog::spawn(Duration::from_millis(timeout_ms), move || {
        f.store(true, Ordering::SeqCst);
    })
    .expect("spawn watchdog");
    let obs = wd.observer();
    let start = Instant::now();
    obs.collective_started(&CollectiveTicket {
        comm: collectives::CommId(0),
        generation: 0,
        rank: RankId(0),
        kind: collectives::CollKind::AllReduce,
        entered_at: start,
    });
    while !fired.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_micros(200));
    }
    start.elapsed()
}

fn bench_watchdog(c: &mut Criterion) {
    let mut group = c.benchmark_group("watchdog_detection_latency");
    group.sample_size(10);
    for timeout_ms in [5u64, 20, 50] {
        group.bench_function(format!("timeout_{timeout_ms}ms"), |b| {
            b.iter(|| detection_latency(timeout_ms))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_watchdog);
criterion_main!(benches);

//! Steady-state overhead micro-benchmarks (Table 3's mechanism costs).
//!
//! Measures the host-side execution cost of one training iteration under
//! (a) the direct executor and (b) the intercepting proxy client with
//! replay logging — the interception overhead the paper reports as
//! "nearly zero".

use cluster::FailureInjector;
use criterion::{criterion_group, criterion_main, Criterion};
use dltrain::{JobSetup, RankTrainer, TrainConfig};
use proxy::{DirectExecutor, ProxyClient};
use simcore::cost::CostModel;
use simcore::{GpuId, RankId};
use simgpu::Gpu;
use std::hint::black_box;

fn bench_minibatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("minibatch");
    group.sample_size(20);
    group.bench_function("direct_executor", |b| {
        let cfg = TrainConfig::tiny_dp(1);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let gpu = Gpu::new(GpuId(0), CostModel::v100());
        let exec = DirectExecutor::new(RankId(0), 0, gpu, setup.world.clone());
        let mut tr =
            RankTrainer::new(exec, cfg, &setup.per_rank[0], FailureInjector::none()).unwrap();
        b.iter(|| {
            black_box(tr.train_step().unwrap());
        });
    });
    group.bench_function("proxy_client_logged", |b| {
        let cfg = TrainConfig::tiny_dp(1);
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), 8);
        let gpu = Gpu::new(GpuId(0), CostModel::v100());
        let mut client = ProxyClient::new(RankId(0), 0, gpu, setup.world.clone());
        client.set_verify_schedule(None, None);
        let mut tr =
            RankTrainer::new(client, cfg, &setup.per_rank[0], FailureInjector::none()).unwrap();
        b.iter(|| {
            black_box(tr.train_step().unwrap());
        });
    });
    group.finish();
}

fn bench_checkpoint_snapshot(c: &mut Criterion) {
    // The user-level save path: snapshotting all persistent buffers.
    let mut group = c.benchmark_group("jit_checkpoint");
    group.sample_size(20);
    for n_params in [8usize, 64, 256] {
        group.bench_function(format!("snapshot_{n_params}_buffers"), |b| {
            let mut gpu = Gpu::new(GpuId(0), CostModel::v100());
            for i in 0..n_params {
                gpu.exec(&simgpu::DeviceCall::Malloc {
                    site: simgpu::AllocSite::new(format!("p{i}"), 256),
                    elems: 256,
                    logical_bytes: 1024,
                    tag: simgpu::BufferTag::Param,
                })
                .unwrap();
            }
            b.iter(|| black_box(gpu.snapshot_persistent()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minibatch, bench_checkpoint_snapshot);
criterion_main!(benches);

//! Recovery-path benchmarks (Tables 4-7): host-side cost of the recovery
//! machinery itself — reset, object re-creation, replay, checkpoint
//! assembly — on small functional jobs.

use cluster::SharedStore;
use criterion::{criterion_group, criterion_main, Criterion};
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind};
use simcore::layout::ParallelLayout;
use simcore::{JobId, RankId};
use simgpu::BufferTag;
use std::hint::black_box;

fn sample_state(iteration: u64, buffers: usize, elems: usize) -> TrainState {
    TrainState {
        iteration,
        opt_t: iteration as u32,
        buffers: (0..buffers)
            .map(|i| (format!("p{i}"), BufferTag::Param, vec![i as f32; elems]))
            .collect(),
        logical_bytes: (buffers * elems * 4) as u64,
    }
}

fn bench_checkpoint_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_io");
    group.sample_size(20);
    for (buffers, elems) in [(16usize, 1024usize), (64, 4096)] {
        let state = sample_state(3, buffers, elems);
        group.bench_function(format!("write_{buffers}x{elems}"), |b| {
            let store = SharedStore::new();
            b.iter(|| {
                checkpoint::write_checkpoint(
                    &store,
                    JobId(0),
                    CkptKind::Jit,
                    RankId(0),
                    0,
                    0,
                    0,
                    black_box(&state),
                )
                .unwrap()
            });
        });
        group.bench_function(format!("read_validate_{buffers}x{elems}"), |b| {
            let store = SharedStore::new();
            checkpoint::write_checkpoint(
                &store,
                JobId(0),
                CkptKind::Jit,
                RankId(0),
                0,
                0,
                0,
                &state,
            )
            .unwrap();
            b.iter(|| {
                black_box(
                    checkpoint::read_checkpoint(&store, JobId(0), CkptKind::Jit, 3, 0, 0, 0)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_assembly(c: &mut Criterion) {
    // Checkpoint assembly over many candidate iterations and cells.
    let mut group = c.benchmark_group("assembly");
    group.sample_size(20);
    let layout = ParallelLayout::three_d(2, 2, 2);
    let store = SharedStore::new();
    for it in 0..20u64 {
        for (stage, part) in layout.cells() {
            for dp in 0..2 {
                checkpoint::write_checkpoint(
                    &store,
                    JobId(0),
                    CkptKind::Jit,
                    RankId(0),
                    stage,
                    part,
                    dp,
                    &sample_state(it, 4, 64),
                )
                .unwrap();
            }
        }
    }
    group.bench_function("assemble_20_iters_4_cells", |b| {
        b.iter(|| black_box(checkpoint::assemble(&store, JobId(0), &layout).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint_io, bench_assembly);
criterion_main!(benches);

//! Transparent-interception micro-benchmarks: the per-op hot path at
//! several flush capacities and replay with/without compaction. The
//! acceptance numbers ship via `proxy_bench` (BENCH_proxy.json); this
//! harness exists for regression tracking on the same code paths.

use bench::proxybench::{build_replay_workload, measure_per_op};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_interception(c: &mut Criterion) {
    let mut group = c.benchmark_group("interception");
    let ops = 2_000usize;
    group.throughput(Throughput::Elements(ops as u64));
    group.bench_function("direct", |b| {
        b.iter(|| black_box(measure_per_op(None, ops, 1).unwrap()))
    });
    for cap in [1usize, 64, 256] {
        group.bench_function(format!("proxied_cap{cap}"), |b| {
            b.iter(|| black_box(measure_per_op(Some(cap), ops, 1).unwrap()))
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    let mut client = build_replay_workload(2_000).unwrap();
    group.throughput(Throughput::Elements(client.replay_log_len() as u64));
    group.bench_function("full", |b| {
        b.iter(|| {
            client.reset_in_place().unwrap();
            black_box(client.replay_full().unwrap())
        })
    });
    group.bench_function("compacted", |b| {
        b.iter(|| {
            client.reset_in_place().unwrap();
            black_box(client.replay().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interception, bench_replay);
criterion_main!(benches);

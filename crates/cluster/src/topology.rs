//! Node and GPU inventory.
//!
//! Models the paper's testbeds: nodes of 8×V100-32GB or 4×A100-80GB, with
//! per-GPU health and allocation that can exclude failed devices —
//! rescheduling after a hard error "on a set of nodes which excludes any
//! failing GPU(s)" (§3, step 3).

use simcore::cost::GpuGeneration;
use simcore::{GpuId, NodeId, SimError, SimResult};
use std::collections::{HashMap, HashSet};

/// A host node and the GPUs attached to it.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node identity.
    pub id: NodeId,
    /// GPUs attached (global ids).
    pub gpus: Vec<GpuId>,
    /// Node-level health (false after a node failure).
    pub healthy: bool,
}

/// Cluster inventory: nodes, GPUs, and health.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// GPU generation (uniform per cluster, as in the paper's testbeds).
    pub generation: GpuGeneration,
    nodes: Vec<Node>,
    gpu_health: HashMap<GpuId, bool>,
    gpu_node: HashMap<GpuId, NodeId>,
}

impl Cluster {
    /// Builds a cluster of `n_nodes` homogeneous nodes.
    pub fn new(generation: GpuGeneration, n_nodes: usize) -> Self {
        let per_node = generation.gpus_per_node();
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut gpu_health = HashMap::new();
        let mut gpu_node = HashMap::new();
        let mut next_gpu = 0u32;
        for n in 0..n_nodes {
            let id = NodeId(n as u32);
            let gpus: Vec<GpuId> = (0..per_node)
                .map(|_| {
                    let g = GpuId(next_gpu);
                    next_gpu += 1;
                    gpu_health.insert(g, true);
                    gpu_node.insert(g, id);
                    g
                })
                .collect();
            nodes.push(Node {
                id,
                gpus,
                healthy: true,
            });
        }
        Cluster {
            generation,
            nodes,
            gpu_health,
            gpu_node,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.gpu_health.len()
    }

    /// Number of currently healthy GPUs.
    pub fn healthy_gpus(&self) -> usize {
        self.gpu_health.values().filter(|h| **h).count()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node hosting a GPU.
    pub fn node_of(&self, gpu: GpuId) -> SimResult<NodeId> {
        self.gpu_node
            .get(&gpu)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(gpu.to_string()))
    }

    /// True when two GPUs share a node (selects NVLink vs NIC transfer
    /// paths).
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        match (self.gpu_node.get(&a), self.gpu_node.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The node id of every GPU in `gpus`, in order — the real-placement
    /// node assignment the collective layer consumes
    /// (`Communicator::set_topology`): ring hop classes, inter-hop
    /// counts, and the hierarchical engine's per-node group sizes are all
    /// derived from it. Errors on a GPU the cluster doesn't know.
    pub fn node_assignment(&self, gpus: &[GpuId]) -> SimResult<Vec<usize>> {
        gpus.iter()
            .map(|g| self.node_of(*g).map(|n| n.index()))
            .collect()
    }

    /// Classifies each hop of the ring `gpus[i] → gpus[(i+1) mod n]` as
    /// intra-node (`true`) or inter-node (`false`) from the real
    /// placement — the link classes the chunked ring cost model consumes.
    /// A singleton (or empty) ring has no hops.
    pub fn ring_hop_classes(&self, gpus: &[GpuId]) -> Vec<bool> {
        let n = gpus.len();
        if n <= 1 {
            return Vec::new();
        }
        (0..n)
            .map(|i| self.same_node(gpus[i], gpus[(i + 1) % n]))
            .collect()
    }

    /// Marks a GPU failed (hard error).
    pub fn mark_gpu_failed(&mut self, gpu: GpuId) {
        if let Some(h) = self.gpu_health.get_mut(&gpu) {
            *h = false;
        }
    }

    /// Marks an entire node failed.
    pub fn mark_node_failed(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.iter_mut().find(|n| n.id == node) {
            n.healthy = false;
            for g in n.gpus.clone() {
                self.gpu_health.insert(g, false);
            }
        }
    }

    /// True if a GPU is healthy.
    pub fn gpu_healthy(&self, gpu: GpuId) -> bool {
        self.gpu_health.get(&gpu).copied().unwrap_or(false)
    }

    /// Allocates `n` healthy GPUs, excluding `exclude`, preferring to fill
    /// whole nodes (minimizes cross-node traffic, matching schedulers that
    /// pack data-parallel groups onto NVLink islands).
    pub fn allocate(&self, n: usize, exclude: &HashSet<GpuId>) -> SimResult<Vec<GpuId>> {
        let mut out = Vec::with_capacity(n);
        for node in &self.nodes {
            if !node.healthy {
                continue;
            }
            for &g in &node.gpus {
                if out.len() == n {
                    break;
                }
                if self.gpu_healthy(g) && !exclude.contains(&g) {
                    out.push(g);
                }
            }
            if out.len() == n {
                break;
            }
        }
        if out.len() < n {
            return Err(SimError::Scheduling(format!(
                "need {n} GPUs, only {} available",
                out.len()
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_testbed_shapes() {
        let v = Cluster::new(GpuGeneration::V100_32G, 4);
        assert_eq!(v.total_gpus(), 32);
        assert_eq!(v.nodes().len(), 4);
        assert_eq!(v.nodes()[0].gpus.len(), 8);
        let a = Cluster::new(GpuGeneration::A100_80G, 2);
        assert_eq!(a.total_gpus(), 8);
        assert_eq!(a.nodes()[0].gpus.len(), 4);
    }

    #[test]
    fn same_node_detection() {
        let c = Cluster::new(GpuGeneration::V100_32G, 2);
        assert!(c.same_node(GpuId(0), GpuId(7)));
        assert!(!c.same_node(GpuId(7), GpuId(8)));
    }

    #[test]
    fn allocation_prefers_whole_nodes_and_respects_exclusion() {
        let c = Cluster::new(GpuGeneration::V100_32G, 2);
        let got = c.allocate(8, &HashSet::new()).unwrap();
        // All from node 0.
        assert!(got.iter().all(|g| c.node_of(*g).unwrap() == NodeId(0)));
        let exclude: HashSet<GpuId> = [GpuId(0)].into_iter().collect();
        let got = c.allocate(8, &exclude).unwrap();
        assert!(!got.contains(&GpuId(0)));
    }

    #[test]
    fn ring_hops_reflect_placement() {
        let c = Cluster::new(GpuGeneration::V100_32G, 2);
        // A ring across both nodes crosses the boundary exactly twice.
        let gpus: Vec<GpuId> = (0..16).map(GpuId).collect();
        let hops = c.ring_hop_classes(&gpus);
        assert_eq!(hops.len(), 16);
        assert_eq!(hops.iter().filter(|h| !**h).count(), 2);
        // A whole-node ring rides NVLink only.
        assert!(c.ring_hop_classes(&gpus[..8]).iter().all(|h| *h));
        // Data-parallel pairs placed on different nodes are all-NIC.
        let dp = [GpuId(0), GpuId(8)];
        assert!(c.ring_hop_classes(&dp).iter().all(|h| !*h));
        assert!(c.ring_hop_classes(&gpus[..1]).is_empty());
    }

    #[test]
    fn failed_gpus_are_skipped() {
        let mut c = Cluster::new(GpuGeneration::V100_32G, 1);
        c.mark_gpu_failed(GpuId(3));
        assert_eq!(c.healthy_gpus(), 7);
        let got = c.allocate(7, &HashSet::new()).unwrap();
        assert!(!got.contains(&GpuId(3)));
        assert!(c.allocate(8, &HashSet::new()).is_err());
    }

    #[test]
    fn node_failure_kills_all_its_gpus() {
        let mut c = Cluster::new(GpuGeneration::A100_80G, 2);
        c.mark_node_failed(NodeId(0));
        assert_eq!(c.healthy_gpus(), 4);
        let got = c.allocate(4, &HashSet::new()).unwrap();
        assert!(got.iter().all(|g| c.node_of(*g).unwrap() == NodeId(1)));
    }
}

//! The shared checkpoint store.
//!
//! Stands in for the "shared file system or object store" of §3.2/§4.3:
//! rank-addressed paths, atomic-rename-style completion via metadata
//! sidecars (written by the JIT layer), listing by prefix for checkpoint
//! assembly, and fault hooks — a write can be truncated (simulating a rank
//! dying mid-checkpoint) or a stored object corrupted (bit rot), both of
//! which the metadata/CRC protocol must detect.
//!
//! Concurrency: objects live in `STRIPES`-way lock-striped maps keyed by
//! a path hash, so per-shard checkpoint puts arriving concurrently from
//! every rank of a job land on different stripes instead of serializing
//! through one global lock. Cross-stripe operations (`list`, `len`,
//! `delete_prefix`) take the stripes one at a time; they are listing-time
//! conveniences, not hot-path operations, and per-path atomicity is all
//! the checkpoint protocol requires (completion is signalled by the
//! metadata sidecar, never by store-wide state).

use bytes::Bytes;
use simcore::sync::{Mutex, RwLock};
use simcore::{SimError, SimResult};
use std::collections::BTreeMap;

/// The pluggable persistence plane behind the checkpoint pipeline.
///
/// Everything above the store — the sharded writer, delta reuse,
/// assembly, recovery fallback chains, the multi-job coordinator — is
/// written against this trait, so the same protocol runs unchanged over
/// the in-process striped map ([`SharedStore`]), a simulated object
/// store with latency/failure injection, or a placement layer that
/// routes paths across many nodes. Object-`dyn`-safe on purpose: the
/// coordinator holds heterogeneous backends as `Arc<dyn StorageBackend>`.
///
/// Contract (what the checkpoint protocol relies on):
///
/// * `put` replaces whole objects atomically per path — readers never
///   observe a mix of two writes to the same path (torn writes are
///   modeled as explicit injected faults, not races);
/// * `get` returns exactly the bytes of some prior completed `put`;
/// * `list` sees every object whose `put` returned before `list`
///   started, sorted by path;
/// * completion/visibility is signalled only through objects (the
///   metadata sidecar), never through store-wide state.
pub trait StorageBackend: Send + Sync {
    /// Writes an object, replacing any previous version.
    fn put(&self, path: &str, data: Bytes) -> SimResult<()>;

    /// Reads an object.
    fn get(&self, path: &str) -> SimResult<Bytes>;

    /// True if the object exists (not counted as a read).
    fn exists(&self, path: &str) -> bool;

    /// Deletes an object (idempotent).
    fn delete(&self, path: &str);

    /// Lists object paths with a prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Removes all objects under a prefix, returning how many.
    fn delete_prefix(&self, prefix: &str) -> usize;

    /// Number of object reads (`get`) served so far.
    fn read_count(&self) -> u64;

    /// Number of prefix listings (`list`) served so far. Listings walk
    /// the whole keyspace on most backends, so callers that can avoid
    /// them (the delta writer's meta cache) count the savings here.
    fn list_count(&self) -> u64 {
        0
    }

    /// How many `get`s this backend can usefully serve concurrently —
    /// the parallel-restore fetch pool sizes itself to this hint.
    /// Transfer-slot-limited backends report their slot count; placement
    /// layers report the fleet-wide sum. Default: serial.
    fn read_parallelism(&self) -> usize {
        1
    }

    /// Reads that were *not* served by the object's current-ring home —
    /// e.g. a placement layer finding bytes on a previous epoch's node
    /// after a rebalance. Always `0` for flat backends.
    fn fallback_reads(&self) -> u64 {
        0
    }

    /// Total object count.
    fn object_count(&self) -> usize;

    /// Short human label for reports (`"mem"`, `"objstore"`, …).
    fn kind(&self) -> &'static str;
}

impl StorageBackend for SharedStore {
    fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        SharedStore::put(self, path, data)
    }

    fn get(&self, path: &str) -> SimResult<Bytes> {
        SharedStore::get(self, path)
    }

    fn exists(&self, path: &str) -> bool {
        SharedStore::exists(self, path)
    }

    fn delete(&self, path: &str) {
        SharedStore::delete(self, path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        SharedStore::list(self, prefix)
    }

    fn delete_prefix(&self, prefix: &str) -> usize {
        SharedStore::delete_prefix(self, prefix)
    }

    fn read_count(&self) -> u64 {
        SharedStore::read_count(self)
    }

    fn list_count(&self) -> u64 {
        SharedStore::list_count(self)
    }

    fn read_parallelism(&self) -> usize {
        // Reads only contend per stripe; the stripe count is the honest
        // concurrency hint for an in-process map.
        STRIPES
    }

    fn object_count(&self) -> usize {
        self.len()
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

/// Shared ownership of a backend is still a backend: coordinators hand
/// `Arc`s of one store to many jobs and pipeline workers.
impl<T: StorageBackend + ?Sized> StorageBackend for std::sync::Arc<T> {
    fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        (**self).put(path, data)
    }

    fn get(&self, path: &str) -> SimResult<Bytes> {
        (**self).get(path)
    }

    fn exists(&self, path: &str) -> bool {
        (**self).exists(path)
    }

    fn delete(&self, path: &str) {
        (**self).delete(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        (**self).list(prefix)
    }

    fn delete_prefix(&self, prefix: &str) -> usize {
        (**self).delete_prefix(prefix)
    }

    fn read_count(&self) -> u64 {
        (**self).read_count()
    }

    fn list_count(&self) -> u64 {
        (**self).list_count()
    }

    fn read_parallelism(&self) -> usize {
        (**self).read_parallelism()
    }

    fn fallback_reads(&self) -> u64 {
        (**self).fallback_reads()
    }

    fn object_count(&self) -> usize {
        (**self).object_count()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

/// Number of lock stripes. A small power of two: enough to de-serialize
/// the per-shard puts of a whole job's ranks, small enough to keep
/// cross-stripe scans cheap.
const STRIPES: usize = 16;

/// An armed one-shot write fault.
#[derive(Debug, Clone)]
struct WriteFault {
    /// Fraction of the payload that survives.
    fraction: f64,
    /// Only paths starting with this prefix trip the fault; `None`
    /// matches any path (the legacy "next put" behavior).
    prefix: Option<String>,
}

/// In-memory shared object store with fault injection.
#[derive(Debug, Default)]
pub struct SharedStore {
    stripes: [RwLock<BTreeMap<String, Bytes>>; STRIPES],
    /// When set, the next `put` matching the fault's path prefix stores
    /// only a fraction of its payload (simulates a writer crashing
    /// mid-write), then clears.
    truncate_next: Mutex<Option<WriteFault>>,
    /// Number of `get` calls served (object reads). Tests and benches use
    /// this to observe store traffic — e.g. that streamed replica
    /// recovery reads each checkpoint once instead of once per rank.
    reads: std::sync::atomic::AtomicU64,
    /// Number of `list` calls served (full keyspace walks). The delta
    /// writer's meta cache exists to shrink this; the bench reports it.
    lists: std::sync::atomic::AtomicU64,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SharedStore::default()
    }

    /// FNV-1a stripe selector: deterministic, cheap, well-spread for the
    /// slash-delimited checkpoint paths.
    fn stripe_of(path: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % STRIPES as u64) as usize
    }

    fn stripe(&self, path: &str) -> &RwLock<BTreeMap<String, Bytes>> {
        &self.stripes[Self::stripe_of(path)]
    }

    /// Applies (and disarms) the truncation fault if it matches `path`.
    fn apply_fault(&self, path: &str, data: Bytes) -> Bytes {
        let mut slot = self.truncate_next.lock();
        let matches = slot
            .as_ref()
            .map(|f| f.prefix.as_deref().is_none_or(|p| path.starts_with(p)))
            .unwrap_or(false);
        if !matches {
            return data;
        }
        let fault = match slot.take() {
            Some(f) => f,
            None => return data,
        };
        let keep = ((data.len() as f64) * fault.fraction) as usize;
        data.slice(..keep.min(data.len()))
    }

    /// Writes an object (replacing any previous version).
    pub fn put(&self, path: impl AsRef<str>, data: Bytes) -> SimResult<()> {
        let path = path.as_ref();
        let data = self.apply_fault(path, data);
        let mut objects = self.stripe(path).write();
        // Hot path: replace in place without re-allocating the key when
        // the object already exists (checkpoints overwrite their own
        // paths every generation).
        match objects.get_mut(path) {
            Some(slot) => *slot = data,
            None => {
                objects.insert(path.to_string(), data);
            }
        }
        Ok(())
    }

    /// Reads an object.
    pub fn get(&self, path: impl AsRef<str>) -> SimResult<Bytes> {
        let path = path.as_ref();
        self.reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stripe(path)
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| SimError::Storage(format!("no object at {path}")))
    }

    /// Number of object reads served so far.
    pub fn read_count(&self) -> u64 {
        self.reads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True if the object exists.
    pub fn exists(&self, path: impl AsRef<str>) -> bool {
        let path = path.as_ref();
        self.stripe(path).read().contains_key(path)
    }

    /// Deletes an object (idempotent).
    pub fn delete(&self, path: impl AsRef<str>) {
        let path = path.as_ref();
        self.stripe(path).write().remove(path);
    }

    /// Number of `list` calls served so far.
    pub fn list_count(&self) -> u64 {
        self.lists.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lists object paths with a prefix, sorted.
    pub fn list(&self, prefix: impl AsRef<str>) -> Vec<String> {
        let prefix = prefix.as_ref();
        self.lists
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut out: Vec<String> = Vec::new();
        for stripe in &self.stripes {
            out.extend(
                stripe
                    .read()
                    .keys()
                    .filter(|k| k.starts_with(prefix))
                    .cloned(),
            );
        }
        out.sort_unstable();
        out
    }

    /// Total object count.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.read().is_empty())
    }

    /// Size in bytes of an object.
    pub fn size_of(&self, path: impl AsRef<str>) -> SimResult<usize> {
        Ok(self.get(path)?.len())
    }

    /// Arms a one-shot fault: the next `put` (of any path) keeps only
    /// `fraction` of its payload (a writer crash mid-checkpoint).
    pub fn fail_next_write(&self, fraction: f64) {
        *self.truncate_next.lock() = Some(WriteFault {
            fraction: fraction.clamp(0.0, 1.0),
            prefix: None,
        });
    }

    /// Arms a one-shot *targeted* fault: the next `put` whose path starts
    /// with `prefix` keeps only `fraction` of its payload; puts of other
    /// paths pass through untouched and leave the fault armed. Under
    /// multi-shard checkpoint writes this is what lets a test
    /// deterministically tear one specific shard (or the metadata
    /// sidecar) while its siblings land whole.
    pub fn fail_next_write_matching(&self, prefix: impl Into<String>, fraction: f64) {
        *self.truncate_next.lock() = Some(WriteFault {
            fraction: fraction.clamp(0.0, 1.0),
            prefix: Some(prefix.into()),
        });
    }

    /// Corrupts one byte of a stored object (bit rot / partial overwrite).
    pub fn corrupt(&self, path: impl AsRef<str>) -> SimResult<()> {
        let path = path.as_ref();
        let mut objects = self.stripe(path).write();
        let data = objects
            .get(path)
            .ok_or_else(|| SimError::Storage(format!("no object at {path}")))?;
        if data.is_empty() {
            return Ok(());
        }
        let mut v = data.to_vec();
        let mid = v.len() / 2;
        v[mid] ^= 0xFF;
        match objects.get_mut(path) {
            Some(slot) => *slot = Bytes::from(v),
            None => {
                objects.insert(path.to_string(), Bytes::from(v));
            }
        }
        Ok(())
    }

    /// Removes all objects under a prefix (garbage collection of stale
    /// checkpoints).
    pub fn delete_prefix(&self, prefix: impl AsRef<str>) -> usize {
        let prefix = prefix.as_ref();
        let mut n = 0;
        for stripe in &self.stripes {
            let mut objects = stripe.write();
            let victims: Vec<String> = objects
                .keys()
                .filter(|k| k.starts_with(prefix))
                .cloned()
                .collect();
            n += victims.len();
            for v in victims {
                objects.remove(&v);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("ckpt/rank0/data", Bytes::from_static(b"hello"))?;
        assert_eq!(s.get("ckpt/rank0/data")?, Bytes::from_static(b"hello"));
        assert!(s.exists("ckpt/rank0/data"));
        assert!(!s.exists("ckpt/rank1/data"));
        Ok(())
    }

    #[test]
    fn owned_and_borrowed_keys_both_work() -> SimResult<()> {
        let s = SharedStore::new();
        s.put(String::from("a/b"), Bytes::from_static(b"x"))?;
        assert_eq!(s.get("a/b")?, Bytes::from_static(b"x"));
        assert_eq!(s.get(String::from("a/b"))?, Bytes::from_static(b"x"));
        Ok(())
    }

    #[test]
    fn missing_object_errors() {
        let s = SharedStore::new();
        assert!(matches!(s.get("nope"), Err(SimError::Storage(_))));
    }

    #[test]
    fn list_by_prefix_sorted() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("ckpt/it5/rank1", Bytes::new())?;
        s.put("ckpt/it5/rank0", Bytes::new())?;
        s.put("ckpt/it6/rank0", Bytes::new())?;
        let got = s.list("ckpt/it5/");
        assert_eq!(
            got,
            vec!["ckpt/it5/rank0".to_string(), "ckpt/it5/rank1".to_string()]
        );
        Ok(())
    }

    #[test]
    fn list_spans_all_stripes() -> SimResult<()> {
        // Many keys with a shared prefix hash to many different stripes;
        // list must still see every one of them, in sorted order.
        let s = SharedStore::new();
        let mut expect = Vec::new();
        for i in 0..200 {
            let path = format!("ckpt/it7/shard{i:05}");
            s.put(&path, Bytes::new())?;
            expect.push(path);
        }
        expect.sort_unstable();
        assert_eq!(s.list("ckpt/it7/"), expect);
        assert_eq!(s.len(), 200);
        assert_eq!(s.delete_prefix("ckpt/it7/"), 200);
        assert!(s.is_empty());
        Ok(())
    }

    #[test]
    fn truncated_write_loses_tail() -> SimResult<()> {
        let s = SharedStore::new();
        s.fail_next_write(0.5);
        s.put("x", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("x")?, 50);
        // One-shot: subsequent writes are whole.
        s.put("y", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("y")?, 100);
        Ok(())
    }

    #[test]
    fn targeted_fault_skips_non_matching_paths() -> SimResult<()> {
        let s = SharedStore::new();
        s.fail_next_write_matching("ckpt/a/shard00002", 0.25);
        // Non-matching puts pass through whole and leave the fault armed.
        s.put("ckpt/a/shard00001", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("ckpt/a/shard00001")?, 100);
        s.put("ckpt/a/shard00002", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("ckpt/a/shard00002")?, 25);
        // Disarmed after firing.
        s.put("ckpt/a/shard00002", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("ckpt/a/shard00002")?, 100);
        Ok(())
    }

    #[test]
    fn corrupt_flips_a_byte() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("x", Bytes::from(vec![0u8; 10]))?;
        s.corrupt("x")?;
        let got = s.get("x")?;
        assert!(got.iter().any(|b| *b != 0));
        Ok(())
    }

    #[test]
    fn delete_prefix_collects_garbage() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("ckpt/it5/a", Bytes::new())?;
        s.put("ckpt/it5/b", Bytes::new())?;
        s.put("ckpt/it6/a", Bytes::new())?;
        assert_eq!(s.delete_prefix("ckpt/it5/"), 2);
        assert_eq!(s.len(), 1);
        Ok(())
    }

    #[test]
    fn concurrent_puts_across_stripes() {
        // Smoke test: concurrent per-shard writers on distinct paths all
        // land (the striping must not lose or cross-wire writes).
        let s = std::sync::Arc::new(SharedStore::new());
        std::thread::scope(|scope| {
            for w in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let path = format!("ckpt/w{w}/shard{i:05}");
                        s.put(&path, Bytes::from(vec![w as u8; 16])).ok();
                    }
                });
            }
        });
        assert_eq!(s.len(), 8 * 50);
        for w in 0..8u8 {
            let got = s.get(&format!("ckpt/w{w}/shard00049")).ok();
            assert_eq!(got, Some(Bytes::from(vec![w; 16])));
        }
    }
}

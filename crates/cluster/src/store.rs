//! The shared checkpoint store.
//!
//! Stands in for the "shared file system or object store" of §3.2/§4.3:
//! rank-addressed paths, atomic-rename-style completion via metadata
//! sidecars (written by the JIT layer), listing by prefix for checkpoint
//! assembly, and fault hooks — a write can be truncated (simulating a rank
//! dying mid-checkpoint) or a stored object corrupted (bit rot), both of
//! which the metadata/CRC protocol must detect.

use bytes::Bytes;
use parking_lot::RwLock;
use simcore::{SimError, SimResult};
use std::collections::BTreeMap;

/// In-memory shared object store with fault injection.
#[derive(Debug, Default)]
pub struct SharedStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
    /// When set, the next `put` stores only this fraction of the payload
    /// (simulates a writer crashing mid-write), then clears.
    truncate_next: RwLock<Option<f64>>,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SharedStore::default()
    }

    /// Writes an object (replacing any previous version).
    pub fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        let data = {
            let mut t = self.truncate_next.write();
            match t.take() {
                Some(frac) => {
                    let keep = ((data.len() as f64) * frac) as usize;
                    data.slice(..keep.min(data.len()))
                }
                None => data,
            }
        };
        self.objects.write().insert(path.to_string(), data);
        Ok(())
    }

    /// Reads an object.
    pub fn get(&self, path: &str) -> SimResult<Bytes> {
        self.objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| SimError::Storage(format!("no object at {path}")))
    }

    /// True if the object exists.
    pub fn exists(&self, path: &str) -> bool {
        self.objects.read().contains_key(path)
    }

    /// Deletes an object (idempotent).
    pub fn delete(&self, path: &str) {
        self.objects.write().remove(path);
    }

    /// Lists object paths with a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Total object count.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Size in bytes of an object.
    pub fn size_of(&self, path: &str) -> SimResult<usize> {
        Ok(self.get(path)?.len())
    }

    /// Arms a one-shot fault: the next `put` keeps only `fraction` of its
    /// payload (a writer crash mid-checkpoint).
    pub fn fail_next_write(&self, fraction: f64) {
        *self.truncate_next.write() = Some(fraction.clamp(0.0, 1.0));
    }

    /// Corrupts one byte of a stored object (bit rot / partial overwrite).
    pub fn corrupt(&self, path: &str) -> SimResult<()> {
        let mut objects = self.objects.write();
        let data = objects
            .get(path)
            .ok_or_else(|| SimError::Storage(format!("no object at {path}")))?;
        if data.is_empty() {
            return Ok(());
        }
        let mut v = data.to_vec();
        let mid = v.len() / 2;
        v[mid] ^= 0xFF;
        objects.insert(path.to_string(), Bytes::from(v));
        Ok(())
    }

    /// Removes all objects under a prefix (garbage collection of stale
    /// checkpoints).
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let mut objects = self.objects.write();
        let victims: Vec<String> = objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        let n = victims.len();
        for v in victims {
            objects.remove(&v);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("ckpt/rank0/data", Bytes::from_static(b"hello"))?;
        assert_eq!(s.get("ckpt/rank0/data")?, Bytes::from_static(b"hello"));
        assert!(s.exists("ckpt/rank0/data"));
        assert!(!s.exists("ckpt/rank1/data"));
        Ok(())
    }

    #[test]
    fn missing_object_errors() {
        let s = SharedStore::new();
        assert!(matches!(s.get("nope"), Err(SimError::Storage(_))));
    }

    #[test]
    fn list_by_prefix_sorted() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("ckpt/it5/rank1", Bytes::new())?;
        s.put("ckpt/it5/rank0", Bytes::new())?;
        s.put("ckpt/it6/rank0", Bytes::new())?;
        let got = s.list("ckpt/it5/");
        assert_eq!(
            got,
            vec!["ckpt/it5/rank0".to_string(), "ckpt/it5/rank1".to_string()]
        );
        Ok(())
    }

    #[test]
    fn truncated_write_loses_tail() -> SimResult<()> {
        let s = SharedStore::new();
        s.fail_next_write(0.5);
        s.put("x", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("x")?, 50);
        // One-shot: subsequent writes are whole.
        s.put("y", Bytes::from(vec![1u8; 100]))?;
        assert_eq!(s.size_of("y")?, 100);
        Ok(())
    }

    #[test]
    fn corrupt_flips_a_byte() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("x", Bytes::from(vec![0u8; 10]))?;
        s.corrupt("x")?;
        let got = s.get("x")?;
        assert!(got.iter().any(|b| *b != 0));
        Ok(())
    }

    #[test]
    fn delete_prefix_collects_garbage() -> SimResult<()> {
        let s = SharedStore::new();
        s.put("ckpt/it5/a", Bytes::new())?;
        s.put("ckpt/it5/b", Bytes::new())?;
        s.put("ckpt/it6/a", Bytes::new())?;
        assert_eq!(s.delete_prefix("ckpt/it5/"), 2);
        assert_eq!(s.len(), 1);
        Ok(())
    }
}

//! Phase-precise failure injection.
//!
//! Deterministic tests need failures that fire at an exact (iteration,
//! phase, rank) coordinate; the scaling analysis needs randomized Poisson
//! traces. [`FailureInjector`] holds a scripted schedule shared between
//! the harness and all rank threads; each rank polls it at phase
//! boundaries and applies the fault to its own device or communicator
//! (that is also where real faults manifest — at the next device/NCCL
//! call).

use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::sync::Mutex;
use simcore::RankId;
use std::sync::Arc;

/// Shared, consumable schedule of scripted failures.
#[derive(Debug, Default)]
pub struct FailureInjector {
    pending: Mutex<Vec<FailureSpec>>,
    fired: Mutex<Vec<FailureSpec>>,
}

impl FailureInjector {
    /// Creates an empty injector (no failures ever fire).
    pub fn none() -> Arc<Self> {
        Arc::new(FailureInjector::default())
    }

    /// Creates an injector with a scripted schedule.
    pub fn with_specs(specs: Vec<FailureSpec>) -> Arc<Self> {
        Arc::new(FailureInjector {
            pending: Mutex::new(specs),
            fired: Mutex::new(Vec::new()),
        })
    }

    /// Adds a failure to the schedule at runtime.
    pub fn schedule(&self, spec: FailureSpec) {
        self.pending.lock().push(spec);
    }

    /// Polled by rank `rank` entering `phase` of `iteration`: returns the
    /// fault to apply, if one is scheduled. Consumes the spec (one-shot).
    pub fn poll(&self, rank: RankId, iteration: u64, phase: Phase) -> Option<FailureKind> {
        let mut pending = self.pending.lock();
        let idx = pending
            .iter()
            .position(|s| s.rank == rank && s.iteration == iteration && s.phase == phase)?;
        let spec = pending.remove(idx);
        self.fired.lock().push(spec);
        Some(spec.kind)
    }

    /// Number of failures not yet fired.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Failures that have fired, in firing order.
    pub fn fired(&self) -> Vec<FailureSpec> {
        self.fired.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_scripted_coordinate() {
        let inj = FailureInjector::with_specs(vec![FailureSpec::new(
            3,
            Phase::Backward,
            RankId(1),
            FailureKind::StickyCuda,
        )]);
        assert_eq!(inj.poll(RankId(1), 3, Phase::Forward), None);
        assert_eq!(inj.poll(RankId(0), 3, Phase::Backward), None);
        assert_eq!(inj.poll(RankId(1), 2, Phase::Backward), None);
        assert_eq!(
            inj.poll(RankId(1), 3, Phase::Backward),
            Some(FailureKind::StickyCuda)
        );
        // Consumed.
        assert_eq!(inj.poll(RankId(1), 3, Phase::Backward), None);
        assert_eq!(inj.pending_count(), 0);
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn multiple_failures_fire_independently() {
        let inj = FailureInjector::with_specs(vec![
            FailureSpec::new(1, Phase::Forward, RankId(0), FailureKind::TransientNetwork),
            FailureSpec::new(5, Phase::OptimizerStep, RankId(2), FailureKind::GpuHardware),
        ]);
        assert_eq!(
            inj.poll(RankId(0), 1, Phase::Forward),
            Some(FailureKind::TransientNetwork)
        );
        assert_eq!(inj.pending_count(), 1);
        assert_eq!(
            inj.poll(RankId(2), 5, Phase::OptimizerStep),
            Some(FailureKind::GpuHardware)
        );
        assert_eq!(inj.pending_count(), 0);
    }

    #[test]
    fn runtime_scheduling_works() {
        let inj = FailureInjector::none();
        assert_eq!(inj.poll(RankId(0), 0, Phase::Forward), None);
        inj.schedule(FailureSpec::new(
            0,
            Phase::AllReduce,
            RankId(0),
            FailureKind::DriverCorruption,
        ));
        assert_eq!(
            inj.poll(RankId(0), 0, Phase::AllReduce),
            Some(FailureKind::DriverCorruption)
        );
    }
}

/// Converts a Poisson failure trace into scripted specs against a job's
/// iteration schedule, given the minibatch duration: each trace event
/// lands in the iteration running at its timestamp, at a phase drawn from
/// the event's fault class (transient network faults manifest at the
/// all-reduce; everything else at a uniformly chosen phase).
pub fn specs_from_trace(
    trace: &[simcore::failure::TraceEvent],
    minibatch_secs: f64,
    rng: &mut simcore::rng::DetRng,
) -> Vec<FailureSpec> {
    trace
        .iter()
        .map(|ev| {
            let iteration = (ev.at.as_secs() / minibatch_secs.max(1e-9)) as u64;
            let phase = match ev.kind {
                FailureKind::TransientNetwork => Phase::AllReduce,
                _ => {
                    let all = [
                        Phase::Forward,
                        Phase::Backward,
                        Phase::AllReduce,
                        Phase::OptimizerStep,
                    ];
                    all[rng.below(all.len() as u64) as usize]
                }
            };
            FailureSpec::new(iteration, phase, ev.rank, ev.kind)
        })
        .collect()
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use simcore::failure::{poisson_trace, FailureRate};
    use simcore::rng::DetRng;
    use simcore::SimTime;

    #[test]
    fn trace_conversion_is_deterministic_and_ordered() {
        let rate = FailureRate::per_gpu_per_day(0.2);
        let mut rng = DetRng::new(5);
        let trace = poisson_trace(rate, 16, SimTime::from_secs(86_400.0), &mut rng);
        assert!(!trace.is_empty());
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        let s1 = specs_from_trace(&trace, 0.5, &mut r1);
        let s2 = specs_from_trace(&trace, 0.5, &mut r2);
        assert_eq!(s1, s2);
        for w in s1.windows(2) {
            assert!(w[0].iteration <= w[1].iteration);
        }
        // Transient faults always land at the all-reduce.
        for s in &s1 {
            if s.kind == FailureKind::TransientNetwork {
                assert_eq!(s.phase, Phase::AllReduce);
            }
        }
    }
}

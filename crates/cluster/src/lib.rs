//! Cluster infrastructure simulation.
//!
//! The paper's recovery flows are distributed protocols between worker
//! ranks and the cluster control plane (§3.2–§3.3, §4.3): healthy ranks
//! checkpoint and notify the scheduler; the scheduler waits for at least
//! one data-parallel replica of *each* pipeline stage and tensor-parallel
//! partition to acknowledge, kills the job, and reschedules it on a node
//! set that excludes the failed GPUs; CRIU snapshots let worker CPU state
//! migrate without re-initialization. This crate provides that substrate:
//!
//! * [`topology`] — node/GPU inventory with health tracking and
//!   exclusion-aware allocation;
//! * [`store`] — the shared checkpoint store (blob/NFS equivalent) with
//!   corruption and incomplete-write simulation;
//! * [`criu`] — CRIU-style serialization of worker CPU state with cost
//!   accounting;
//! * [`injector`] — scripted, phase-precise failure injection plus Poisson
//!   traces;
//! * [`scheduler`] — job lifecycle: allocation, failure notifications,
//!   per-stage/partition checkpoint quorum, and rescheduling.

pub mod criu;
pub mod injector;
pub mod scheduler;
pub mod store;
pub mod topology;

pub use injector::FailureInjector;
pub use scheduler::{CheckpointAck, Scheduler};
pub use store::{SharedStore, StorageBackend};
pub use topology::{Cluster, Node};

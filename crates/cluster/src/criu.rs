//! CRIU-style worker-process checkpointing.
//!
//! Transparent hard-error recovery (§4.3) checkpoints the *CPU* state of
//! every worker process with CRIU and restores it on replacement nodes, so
//! the application resumes from the exact point of failure and never pays
//! job re-initialization cost — this is what drives the fixed recovery
//! cost `r` to ≈0 in eq. 8. Because the device proxy keeps all GPU/driver
//! state out of the worker process, the worker image is plain serializable
//! data.
//!
//! The simulated image is a framed, checksummed encoding of the worker's
//! logical CPU state; the snapshot/restore *cost* comes from the cost
//! model's CRIU bandwidth applied to the image's logical size.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use simcore::codec::{decode_framed, encode_framed, Decode, Encode};
use simcore::cost::CostModel;
use simcore::{SimResult, SimTime};

/// A CRIU process image: the serialized worker CPU state plus the logical
/// size used for cost accounting (worker processes of large jobs carry
/// multi-GB heaps even though our serialized state is small).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriuImage {
    /// Serialized worker state.
    pub payload: Bytes,
    /// Logical process-image size in bytes for timing.
    pub logical_bytes: u64,
}

impl CriuImage {
    /// Process-image format version. A CRIU image written before a node
    /// failure is restored on a *different* node by a freshly scheduled
    /// worker, so the payload framing must be versioned explicitly.
    pub const SCHEMA_VERSION: u16 = 1;
}

/// Takes a CRIU snapshot of `state`. Returns the image and the virtual
/// time the snapshot took.
pub fn checkpoint<T: Encode>(
    state: &T,
    logical_bytes: u64,
    cost: &CostModel,
) -> (CriuImage, SimTime) {
    let payload = encode_framed(state);
    let t = cost.criu(logical_bytes);
    (
        CriuImage {
            payload,
            logical_bytes,
        },
        t,
    )
}

/// Restores worker state from a CRIU image. Returns the state and the
/// virtual restore time.
pub fn restore<T: Decode>(image: &CriuImage, cost: &CostModel) -> SimResult<(T, SimTime)> {
    let state = decode_framed(&image.payload)?;
    Ok((state, cost.criu(image.logical_bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_restore_round_trip() {
        let cost = CostModel::v100();
        let state = (String::from("iteration"), vec![42u64, 7]);
        let (img, t_ckpt) = checkpoint(&state, 1 << 30, &cost);
        assert!(t_ckpt.as_secs() > cost.criu_base.as_secs());
        let (back, t_rst): ((String, Vec<u64>), SimTime) = restore(&img, &cost).unwrap();
        assert_eq!(back, state);
        assert!(t_rst.as_secs() > 0.0);
    }

    #[test]
    fn corrupt_image_is_rejected() {
        let cost = CostModel::v100();
        let (mut img, _) = checkpoint(&42u64, 1024, &cost);
        let mut v = img.payload.to_vec();
        let mid = v.len() / 2;
        v[mid] ^= 0x55;
        img.payload = Bytes::from(v);
        let res: SimResult<(u64, SimTime)> = restore(&img, &cost);
        assert!(res.is_err());
    }

    #[test]
    fn snapshot_time_scales_with_image_size() {
        let cost = CostModel::v100();
        let (_, small) = checkpoint(&1u64, 1 << 20, &cost);
        let (_, large) = checkpoint(&1u64, 8 << 30, &cost);
        assert!(large > small);
    }
}

//! The job scheduler and monitoring plane.
//!
//! Implements the control-plane side of user-level JIT recovery (§3,
//! steps 3–4):
//!
//! 1. healthy ranks report failure detection and checkpoint completion;
//! 2. the scheduler waits until **at least one data-parallel replica of
//!    every (pipeline stage, tensor partition) cell** has acknowledged a
//!    complete checkpoint;
//! 3. it kills the job and reschedules it on GPUs that exclude every
//!    failed device.

use crate::topology::Cluster;
use simcore::layout::ParallelLayout;
use simcore::sync::Mutex;
use simcore::{GpuId, JobId, RankId, SimError, SimResult};
use std::collections::{HashMap, HashSet};

/// A rank's "checkpoint complete" acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointAck {
    /// Acknowledging rank.
    pub rank: RankId,
    /// Iteration the checkpoint captures.
    pub iteration: u64,
    /// Pipeline stage of the rank.
    pub stage: usize,
    /// Tensor partition of the rank.
    pub part: usize,
}

#[derive(Debug)]
struct JobState {
    layout: ParallelLayout,
    assignment: Vec<GpuId>,
    failed_gpus: HashSet<GpuId>,
    acks: Vec<CheckpointAck>,
    generation: u32,
}

/// Cluster scheduler: owns the inventory and per-job recovery state.
#[derive(Debug)]
pub struct Scheduler {
    cluster: Mutex<Cluster>,
    jobs: Mutex<HashMap<JobId, JobState>>,
    next_job: Mutex<u32>,
}

impl Scheduler {
    /// Creates a scheduler over a cluster.
    pub fn new(cluster: Cluster) -> Self {
        Scheduler {
            cluster: Mutex::new(cluster),
            jobs: Mutex::new(HashMap::new()),
            next_job: Mutex::new(0),
        }
    }

    /// Admits a job: allocates `layout.world_size()` GPUs and returns the
    /// job id plus the rank→GPU assignment (rank i gets `assignment[i]`).
    pub fn submit(&self, layout: ParallelLayout) -> SimResult<(JobId, Vec<GpuId>)> {
        let n = layout.world_size();
        let assignment = self.cluster.lock().allocate(n, &HashSet::new())?;
        let id = {
            let mut next = self.next_job.lock();
            let id = JobId(*next);
            *next += 1;
            id
        };
        self.jobs.lock().insert(
            id,
            JobState {
                layout,
                assignment: assignment.clone(),
                failed_gpus: HashSet::new(),
                acks: Vec::new(),
                generation: 0,
            },
        );
        Ok((id, assignment))
    }

    /// Current rank→GPU assignment.
    pub fn assignment(&self, job: JobId) -> SimResult<Vec<GpuId>> {
        self.jobs
            .lock()
            .get(&job)
            .map(|j| j.assignment.clone())
            .ok_or_else(|| SimError::Scheduling(format!("unknown {job}")))
    }

    /// Restart generation (increments on every reschedule).
    pub fn generation(&self, job: JobId) -> SimResult<u32> {
        self.jobs
            .lock()
            .get(&job)
            .map(|j| j.generation)
            .ok_or_else(|| SimError::Scheduling(format!("unknown {job}")))
    }

    /// A rank reports that GPU `gpu` suffered a hard failure. The GPU is
    /// marked failed in the inventory and excluded from future
    /// allocations for this job.
    pub fn report_gpu_failure(&self, job: JobId, gpu: GpuId) -> SimResult<()> {
        self.cluster.lock().mark_gpu_failed(gpu);
        let mut jobs = self.jobs.lock();
        let j = jobs
            .get_mut(&job)
            .ok_or_else(|| SimError::Scheduling(format!("unknown {job}")))?;
        j.failed_gpus.insert(gpu);
        Ok(())
    }

    /// A healthy rank acknowledges a complete JIT checkpoint.
    pub fn ack_checkpoint(&self, job: JobId, ack: CheckpointAck) -> SimResult<()> {
        let mut jobs = self.jobs.lock();
        let j = jobs
            .get_mut(&job)
            .ok_or_else(|| SimError::Scheduling(format!("unknown {job}")))?;
        j.acks.push(ack);
        Ok(())
    }

    /// §3.3 quorum: true once at least one ack exists for every
    /// (stage, partition) cell of the layout. Returns the set of
    /// iterations seen (the caller resolves the i vs i+1 ambiguity).
    pub fn checkpoint_quorum(&self, job: JobId) -> SimResult<Option<Vec<u64>>> {
        let jobs = self.jobs.lock();
        let j = jobs
            .get(&job)
            .ok_or_else(|| SimError::Scheduling(format!("unknown {job}")))?;
        let mut covered: HashSet<(usize, usize)> = HashSet::new();
        let mut iterations: Vec<u64> = Vec::new();
        for ack in &j.acks {
            covered.insert((ack.stage, ack.part));
            if !iterations.contains(&ack.iteration) {
                iterations.push(ack.iteration);
            }
        }
        let all_cells = j.layout.cells();
        if all_cells.iter().all(|c| covered.contains(c)) {
            iterations.sort_unstable();
            Ok(Some(iterations))
        } else {
            Ok(None)
        }
    }

    /// Kills and reschedules the job on healthy GPUs, excluding everything
    /// that failed. Clears acks and bumps the restart generation. Returns
    /// the new assignment.
    pub fn reschedule(&self, job: JobId) -> SimResult<Vec<GpuId>> {
        // Lock order: `cluster` strictly before `jobs`, matching `submit`
        // and `report_gpu_failure` — a reversed order here could deadlock
        // against a concurrent submit during recovery.
        let cluster = self.cluster.lock();
        let mut jobs = self.jobs.lock();
        let j = jobs
            .get_mut(&job)
            .ok_or_else(|| SimError::Scheduling(format!("unknown {job}")))?;
        let n = j.layout.world_size();
        let assignment = cluster.allocate(n, &j.failed_gpus)?;
        j.assignment = assignment.clone();
        j.acks.clear();
        j.generation += 1;
        Ok(assignment)
    }

    /// Read-only access to the inventory (for topology queries).
    pub fn with_cluster<R>(&self, f: impl FnOnce(&Cluster) -> R) -> R {
        f(&self.cluster.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::cost::GpuGeneration;

    fn sched(nodes: usize) -> Scheduler {
        Scheduler::new(Cluster::new(GpuGeneration::V100_32G, nodes))
    }

    #[test]
    fn submit_allocates_world_size_gpus() {
        let s = sched(2);
        let (job, gpus) = s.submit(ParallelLayout::data_parallel(8)).unwrap();
        assert_eq!(gpus.len(), 8);
        assert_eq!(s.assignment(job).unwrap(), gpus);
        assert_eq!(s.generation(job).unwrap(), 0);
    }

    #[test]
    fn quorum_requires_every_cell() {
        let s = sched(2);
        let layout = ParallelLayout::three_d(2, 2, 2);
        let (job, _) = s.submit(layout).unwrap();
        // Acks from one dp replica of stage 0 cells only.
        s.ack_checkpoint(
            job,
            CheckpointAck {
                rank: RankId(0),
                iteration: 10,
                stage: 0,
                part: 0,
            },
        )
        .unwrap();
        s.ack_checkpoint(
            job,
            CheckpointAck {
                rank: RankId(1),
                iteration: 10,
                stage: 0,
                part: 1,
            },
        )
        .unwrap();
        assert_eq!(s.checkpoint_quorum(job).unwrap(), None);
        // Cover stage 1 cells via the other dp replica.
        s.ack_checkpoint(
            job,
            CheckpointAck {
                rank: RankId(10),
                iteration: 10,
                stage: 1,
                part: 0,
            },
        )
        .unwrap();
        s.ack_checkpoint(
            job,
            CheckpointAck {
                rank: RankId(11),
                iteration: 10,
                stage: 1,
                part: 1,
            },
        )
        .unwrap();
        assert_eq!(s.checkpoint_quorum(job).unwrap(), Some(vec![10]));
    }

    #[test]
    fn quorum_reports_mixed_iterations() {
        let s = sched(1);
        let (job, _) = s.submit(ParallelLayout::data_parallel(2)).unwrap();
        s.ack_checkpoint(
            job,
            CheckpointAck {
                rank: RankId(0),
                iteration: 11,
                stage: 0,
                part: 0,
            },
        )
        .unwrap();
        s.ack_checkpoint(
            job,
            CheckpointAck {
                rank: RankId(1),
                iteration: 10,
                stage: 0,
                part: 0,
            },
        )
        .unwrap();
        assert_eq!(s.checkpoint_quorum(job).unwrap(), Some(vec![10, 11]));
    }

    #[test]
    fn reschedule_excludes_failed_gpus_and_bumps_generation() {
        let s = sched(2);
        let (job, gpus) = s.submit(ParallelLayout::data_parallel(8)).unwrap();
        s.report_gpu_failure(job, gpus[3]).unwrap();
        let new = s.reschedule(job).unwrap();
        assert_eq!(new.len(), 8);
        assert!(!new.contains(&gpus[3]));
        assert_eq!(s.generation(job).unwrap(), 1);
        // Acks were cleared by the restart.
        assert_eq!(s.checkpoint_quorum(job).unwrap(), None);
    }

    #[test]
    fn reschedule_fails_when_capacity_exhausted() {
        let s = sched(1);
        let (job, gpus) = s.submit(ParallelLayout::data_parallel(8)).unwrap();
        s.report_gpu_failure(job, gpus[0]).unwrap();
        assert!(matches!(s.reschedule(job), Err(SimError::Scheduling(_))));
    }
}

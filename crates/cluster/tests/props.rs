//! Property-based tests for the cluster substrate: allocation safety,
//! quorum logic, store consistency, and CRIU round-trips.

use cluster::scheduler::CheckpointAck;
use cluster::{criu, Cluster, Scheduler, SharedStore};
use proptest::prelude::*;
use simcore::cost::{CostModel, GpuGeneration};
use simcore::layout::ParallelLayout;
use simcore::{GpuId, RankId};
use std::collections::HashSet;

proptest! {
    #[test]
    fn allocation_returns_distinct_healthy_gpus(
        nodes in 1usize..6,
        want in 1usize..16,
        kill in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let mut c = Cluster::new(GpuGeneration::V100_32G, nodes);
        let total = c.total_gpus();
        for k in &kill {
            c.mark_gpu_failed(GpuId((*k as usize % total) as u32));
        }
        let healthy = c.healthy_gpus();
        match c.allocate(want, &HashSet::new()) {
            Ok(got) => {
                prop_assert!(want <= healthy);
                prop_assert_eq!(got.len(), want);
                let set: HashSet<_> = got.iter().collect();
                prop_assert_eq!(set.len(), want, "no duplicates");
                for g in &got {
                    prop_assert!(c.gpu_healthy(*g));
                }
            }
            Err(_) => prop_assert!(want > healthy),
        }
    }

    #[test]
    fn quorum_holds_iff_every_cell_is_acked(
        dp in 1usize..4, pp in 1usize..4, tp in 1usize..3,
        acked_cells in proptest::collection::hash_set((0usize..4, 0usize..3), 0..12),
    ) {
        let layout = ParallelLayout::three_d(dp, pp, tp);
        let nodes = layout.world_size() / 8 + 1;
        let s = Scheduler::new(Cluster::new(GpuGeneration::V100_32G, nodes.max(2)));
        let Ok((job, _)) = s.submit(layout) else {
            return Ok(()); // capacity miss — not what we're testing
        };
        let valid: Vec<(usize, usize)> = acked_cells
            .into_iter()
            .filter(|(st, pt)| *st < pp && *pt < tp)
            .collect();
        for (stage, part) in &valid {
            s.ack_checkpoint(job, CheckpointAck { rank: RankId(0), iteration: 5, stage: *stage, part: *part }).unwrap();
        }
        let covered: HashSet<(usize, usize)> = valid.into_iter().collect();
        let all: HashSet<(usize, usize)> = layout.cells().into_iter().collect();
        let quorum = s.checkpoint_quorum(job).unwrap();
        prop_assert_eq!(quorum.is_some(), covered == all);
    }

    #[test]
    fn reschedule_never_reuses_reported_gpus(
        fail_idx in proptest::collection::hash_set(0usize..8, 1..4),
    ) {
        let s = Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2));
        let (job, gpus) = s.submit(ParallelLayout::data_parallel(8)).unwrap();
        let mut failed = Vec::new();
        for i in &fail_idx {
            s.report_gpu_failure(job, gpus[*i]).unwrap();
            failed.push(gpus[*i]);
        }
        let new = s.reschedule(job).unwrap();
        for f in failed {
            prop_assert!(!new.contains(&f));
        }
    }

    #[test]
    fn store_survives_arbitrary_put_delete_interleavings(
        ops in proptest::collection::vec((any::<bool>(), 0u8..8, proptest::collection::vec(any::<u8>(), 0..32)), 0..64),
    ) {
        let store = SharedStore::new();
        let mut model: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
        for (is_put, key, data) in ops {
            let path = format!("obj/{key}");
            if is_put {
                store.put(&path, bytes::Bytes::from(data.clone())).unwrap();
                model.insert(path, data);
            } else {
                store.delete(&path);
                model.remove(&path);
            }
        }
        prop_assert_eq!(store.len(), model.len());
        for (path, data) in &model {
            prop_assert_eq!(store.get(path).unwrap().to_vec(), data.clone());
        }
        prop_assert_eq!(store.list("obj/").len(), model.len());
    }

    #[test]
    fn criu_round_trips_arbitrary_states(
        label in ".*",
        nums in proptest::collection::vec(any::<u64>(), 0..64),
        logical in 1u64..(8 << 30),
    ) {
        let cost = CostModel::v100();
        let state = (label, nums);
        let (img, t) = criu::checkpoint(&state, logical, &cost);
        prop_assert!(t.as_secs() >= cost.criu_base.as_secs());
        let (back, _): ((String, Vec<u64>), _) = criu::restore(&img, &cost).unwrap();
        prop_assert_eq!(back, state);
    }
}

//! Deterministic random number generation.
//!
//! Training semantics preservation ("exact floating point match of training
//! losses with and without JIT-checkpointing", §6.2) requires every source
//! of randomness to be seeded, serializable, and restorable: the data
//! loader, weight initialization, and failure traces. [`DetRng`] wraps a
//! small, fast, stable PRNG (SplitMix64 seeded xoshiro256**) whose full
//! state can be checkpointed and restored bit-exactly — the equivalent of
//! saving `torch.get_rng_state()` in a checkpoint.

use serde::{Deserialize, Serialize};

/// A deterministic, checkpointable PRNG.
///
/// The algorithm is xoshiro256** with SplitMix64 seeding. It is implemented
/// locally (rather than relying on `rand`'s `StdRng`) because `StdRng`
/// explicitly does not guarantee stability across crate versions, and
/// checkpoint files must be replayable across builds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream, e.g. one per rank: streams with
    /// different `stream_id` from the same parent are decorrelated.
    pub fn derive(&self, stream_id: u64) -> Self {
        let mut sm = self.s[0] ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F);
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[-scale, scale)`, for weight initialization.
    pub fn uniform_symmetric(&mut self, scale: f32) -> f32 {
        ((self.uniform() as f32) * 2.0 - 1.0) * scale
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Snapshots the full generator state (for checkpoint files).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restores a generator from a snapshot taken with [`DetRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn state_round_trip_resumes_exactly() {
        let mut a = DetRng::new(77);
        for _ in 0..10 {
            a.next_u64();
        }
        let snap = a.state();
        let ahead: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let mut restored = DetRng::from_state(snap);
        let replay: Vec<u64> = (0..16).map(|_| restored.next_u64()).collect();
        assert_eq!(ahead, replay);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(5);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let root = DetRng::new(9);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = DetRng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}

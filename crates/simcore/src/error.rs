//! Common error type for the simulation stack.
//!
//! The workspace avoids `thiserror` (not in the approved dependency set),
//! so the error enum implements `Display`/`Error` by hand. Variants mirror
//! the failure surfaces of the real stack the paper targets: CUDA error
//! codes, NCCL aborts, storage failures, and protocol violations.

use crate::ids::{GpuId, RankId};
use std::fmt;

/// Result alias used across the simulation crates.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by the simulated device, network, and cluster layers.
///
/// These play the role of CUDA error codes, NCCL failures, and
/// infrastructure faults in the real system. The transparent JIT layer
/// catches them below the framework; the user-level layer lets them reach
/// the training script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device API failed because the GPU has a hard (unrecoverable)
    /// hardware fault. Equivalent to e.g. an uncorrectable ECC error.
    GpuHardware(GpuId),
    /// A device API failed with a CUDA "sticky" error: the context is
    /// poisoned and every subsequent call fails until the driver state is
    /// cleared (proxy-server restart).
    CudaSticky(GpuId),
    /// GPU or NIC driver state is suspected to be corrupted; the device is
    /// still accessible but unreliable.
    DriverCorrupted(GpuId),
    /// A transient network fault interrupted a collective.
    NetworkTransient,
    /// A collective was aborted (e.g. by the watchdog after a hang).
    CollectiveAborted,
    /// A collective timed out waiting for a peer: the signature of a
    /// failure on some *other* rank.
    CollectiveTimeout { rank: RankId },
    /// An invalid handle (buffer, stream, event, communicator) was used.
    InvalidHandle(String),
    /// Out of simulated device memory.
    OutOfMemory { requested: u64, available: u64 },
    /// The shared checkpoint store rejected or lost an object.
    Storage(String),
    /// A checkpoint file exists but is incomplete or corrupt (metadata
    /// sidecar missing or checksum mismatch).
    CorruptCheckpoint(String),
    /// No usable checkpoint could be assembled for recovery.
    NoCheckpointAvailable(String),
    /// The binary codec met malformed input.
    Codec(String),
    /// A protocol invariant was violated (bug surface, kept as an error so
    /// tests can assert on it rather than panicking the whole harness).
    Protocol(String),
    /// The scheduler could not satisfy an allocation request.
    Scheduling(String),
    /// The worker process was killed (simulated SIGKILL from the launcher).
    WorkerKilled(RankId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::GpuHardware(g) => write!(f, "hard GPU hardware error on {g}"),
            SimError::CudaSticky(g) => write!(f, "sticky CUDA error on {g} (context poisoned)"),
            SimError::DriverCorrupted(g) => write!(f, "driver state corruption suspected on {g}"),
            SimError::NetworkTransient => write!(f, "transient network fault"),
            SimError::CollectiveAborted => write!(f, "collective operation aborted"),
            SimError::CollectiveTimeout { rank } => {
                write!(f, "collective timed out on {rank} (peer failure suspected)")
            }
            SimError::InvalidHandle(s) => write!(f, "invalid handle: {s}"),
            SimError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            SimError::Storage(s) => write!(f, "storage error: {s}"),
            SimError::CorruptCheckpoint(s) => write!(f, "corrupt checkpoint: {s}"),
            SimError::NoCheckpointAvailable(s) => write!(f, "no checkpoint available: {s}"),
            SimError::Codec(s) => write!(f, "codec error: {s}"),
            SimError::Protocol(s) => write!(f, "protocol violation: {s}"),
            SimError::Scheduling(s) => write!(f, "scheduling error: {s}"),
            SimError::WorkerKilled(r) => write!(f, "worker process for {r} was killed"),
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Returns true when the error indicates the GPU itself is unusable and
    /// the rank must migrate to a replacement device (§4.3 of the paper).
    pub fn is_hard(&self) -> bool {
        matches!(self, SimError::GpuHardware(_))
    }

    /// Returns true when the error is recoverable by resetting GPU/driver
    /// state without replacing hardware (§4.2 of the paper).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SimError::CudaSticky(_)
                | SimError::DriverCorrupted(_)
                | SimError::NetworkTransient
                | SimError::CollectiveAborted
                | SimError::CollectiveTimeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardness_classification() {
        assert!(SimError::GpuHardware(GpuId(0)).is_hard());
        assert!(!SimError::GpuHardware(GpuId(0)).is_recoverable());
        assert!(SimError::CudaSticky(GpuId(1)).is_recoverable());
        assert!(SimError::NetworkTransient.is_recoverable());
        assert!(!SimError::Storage("x".into()).is_recoverable());
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfMemory {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("10"));
    }
}

//! Parallelism layout: how a job's ranks map onto data-, pipeline-, and
//! tensor-parallel groups.
//!
//! The paper evaluates "3D" configurations like `2D-4P-2T` (2-way data ×
//! 4-way pipeline × 2-way tensor parallel, Table 2). Recovery correctness
//! depends on this grid: a failed rank's state lives in the data-parallel
//! *replicas of its own (pipeline stage, tensor partition) cell*, and the
//! scheduler's checkpoint quorum requires one ack per cell (§3.3).
//!
//! Rank numbering follows the Megatron convention: tensor-parallel ranks
//! are innermost, then pipeline stages, then data-parallel groups:
//! `rank = dp·(pp·tp) + stage·tp + part`.

use crate::ids::RankId;
use serde::{Deserialize, Serialize};

/// Degrees of data / pipeline / tensor parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelLayout {
    /// Data-parallel degree (replica count).
    pub dp: usize,
    /// Pipeline-parallel degree (stage count).
    pub pp: usize,
    /// Tensor-parallel degree (partition count).
    pub tp: usize,
}

/// A rank's coordinates in the parallelism grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridCoord {
    /// Data-parallel replica index.
    pub dp: usize,
    /// Pipeline stage.
    pub stage: usize,
    /// Tensor partition.
    pub part: usize,
}

impl ParallelLayout {
    /// Pure data parallelism over `n` ranks.
    pub fn data_parallel(n: usize) -> Self {
        ParallelLayout {
            dp: n,
            pp: 1,
            tp: 1,
        }
    }

    /// Full 3D layout.
    pub fn three_d(dp: usize, pp: usize, tp: usize) -> Self {
        ParallelLayout { dp, pp, tp }
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.dp * self.pp * self.tp
    }

    /// Grid coordinates of a rank.
    pub fn coord(&self, rank: RankId) -> GridCoord {
        let r = rank.index();
        let cell = self.pp * self.tp;
        GridCoord {
            dp: r / cell,
            stage: (r % cell) / self.tp,
            part: r % self.tp,
        }
    }

    /// Rank at the given grid coordinates.
    pub fn rank_at(&self, coord: GridCoord) -> RankId {
        RankId((coord.dp * self.pp * self.tp + coord.stage * self.tp + coord.part) as u32)
    }

    /// All data-parallel replicas of `rank`'s cell (including itself),
    /// in dp order — the ranks that hold identical parameter/optimizer
    /// state and can supply it during recovery.
    pub fn dp_group_of(&self, rank: RankId) -> Vec<RankId> {
        let c = self.coord(rank);
        (0..self.dp)
            .map(|dp| {
                self.rank_at(GridCoord {
                    dp,
                    stage: c.stage,
                    part: c.part,
                })
            })
            .collect()
    }

    /// Tensor-parallel group containing `rank` (same dp replica & stage).
    pub fn tp_group_of(&self, rank: RankId) -> Vec<RankId> {
        let c = self.coord(rank);
        (0..self.tp)
            .map(|part| {
                self.rank_at(GridCoord {
                    dp: c.dp,
                    stage: c.stage,
                    part,
                })
            })
            .collect()
    }

    /// Pipeline group containing `rank` (same dp replica & partition),
    /// ordered by stage.
    pub fn pp_group_of(&self, rank: RankId) -> Vec<RankId> {
        let c = self.coord(rank);
        (0..self.pp)
            .map(|stage| {
                self.rank_at(GridCoord {
                    dp: c.dp,
                    stage,
                    part: c.part,
                })
            })
            .collect()
    }

    /// All (stage, partition) cells — the quorum domain for §3.3.
    pub fn cells(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.pp * self.tp);
        for stage in 0..self.pp {
            for part in 0..self.tp {
                out.push((stage, part));
            }
        }
        out
    }

    /// Compact display like `2D-4P-2T`.
    pub fn label(&self) -> String {
        format!("{}D-{}P-{}T", self.dp, self.pp, self.tp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_size_and_coords_round_trip() {
        let l = ParallelLayout::three_d(2, 4, 2);
        assert_eq!(l.world_size(), 16);
        for r in 0..16 {
            let rank = RankId(r);
            let c = l.coord(rank);
            assert_eq!(l.rank_at(c), rank);
            assert!(c.dp < 2 && c.stage < 4 && c.part < 2);
        }
    }

    #[test]
    fn dp_group_holds_same_cell() {
        let l = ParallelLayout::three_d(2, 2, 2);
        let g = l.dp_group_of(RankId(5)); // coord: dp=1, stage=0, part=1
        assert_eq!(g.len(), 2);
        let c5 = l.coord(RankId(5));
        for r in &g {
            let c = l.coord(*r);
            assert_eq!((c.stage, c.part), (c5.stage, c5.part));
        }
        assert!(g.contains(&RankId(5)));
    }

    #[test]
    fn pure_dp_groups_are_everyone() {
        let l = ParallelLayout::data_parallel(4);
        assert_eq!(
            l.dp_group_of(RankId(2)),
            vec![RankId(0), RankId(1), RankId(2), RankId(3)]
        );
        assert_eq!(l.tp_group_of(RankId(2)), vec![RankId(2)]);
        assert_eq!(l.pp_group_of(RankId(2)), vec![RankId(2)]);
    }

    #[test]
    fn cells_enumerate_stage_partition_grid() {
        let l = ParallelLayout::three_d(2, 2, 3);
        let cells = l.cells();
        assert_eq!(cells.len(), 6);
        assert!(cells.contains(&(1, 2)));
    }

    #[test]
    fn label_format_matches_paper() {
        assert_eq!(ParallelLayout::three_d(2, 4, 2).label(), "2D-4P-2T");
    }

    #[test]
    fn tp_ranks_are_contiguous() {
        // Megatron convention: tensor-parallel ranks are adjacent (they
        // share NVLink).
        let l = ParallelLayout::three_d(2, 2, 2);
        let g = l.tp_group_of(RankId(0));
        assert_eq!(g, vec![RankId(0), RankId(1)]);
    }
}

//! Failure taxonomy and injection.
//!
//! The paper's failure study (§1, §5.1) finds that most training failures
//! are single-GPU or single-network-device faults — transient network
//! issues, driver-state corruption, sticky CUDA errors, or hard hardware
//! faults — while simultaneous multi-node failures are extremely rare.
//! This module encodes that taxonomy and provides both scripted failure
//! schedules (for deterministic tests) and Poisson/MTBF trace generation
//! (for the wasted-work analysis and randomized property tests).

use crate::ids::RankId;
use crate::rng::DetRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The kind of fault injected into a device or link.
///
/// Maps to the recovery-solution matrix in Table 1 and the case analysis of
/// §4.2–§4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Transient network fault (e.g. InfiniBand congestion/flap). The GPU
    /// is healthy; the in-flight collective fails or hangs. Recoverable in
    /// place without copying any state (§4.2.1 case 1).
    TransientNetwork,
    /// GPU or NIC driver state corruption. GPU memory is still readable,
    /// but driver state must be cleared by restarting the device proxy
    /// (§4.2.1 case 2).
    DriverCorruption,
    /// CUDA "sticky" error: GPU state is inaccessible, every subsequent
    /// API fails, but the hardware is fine. Cleared by a proxy restart;
    /// state is refilled from a data-parallel replica (§4.2.1 case 3).
    StickyCuda,
    /// Unrecoverable GPU hardware error; the rank must migrate to a
    /// replacement GPU, possibly on another node (§4.3).
    GpuHardware,
    /// Whole-node failure (rare). All ranks on the node are lost.
    NodeFailure,
}

impl FailureKind {
    /// Whether recovery needs a replacement GPU.
    pub fn needs_migration(self) -> bool {
        matches!(self, FailureKind::GpuHardware | FailureKind::NodeFailure)
    }

    /// Whether the failed GPU's memory remains readable during recovery.
    pub fn gpu_state_accessible(self) -> bool {
        matches!(
            self,
            FailureKind::TransientNetwork | FailureKind::DriverCorruption
        )
    }

    /// All kinds, for exhaustive sweeps in tests and benches.
    pub fn all() -> [FailureKind; 5] {
        [
            FailureKind::TransientNetwork,
            FailureKind::DriverCorruption,
            FailureKind::StickyCuda,
            FailureKind::GpuHardware,
            FailureKind::NodeFailure,
        ]
    }
}

/// Phase of a minibatch iteration at which a failure strikes.
///
/// The phase determines which recovery path runs: failures at or before the
/// gradient all-reduce roll *back* to minibatch `i` (healthy replicas are
/// parked at the barrier with unmodified state), failures inside the
/// optimizer step roll *forward* to minibatch `i+1` (§3.3, §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// During the forward pass.
    Forward,
    /// During the backward pass.
    Backward,
    /// While the gradient all-reduce is in flight.
    AllReduce,
    /// Inside the optimizer step (parameters possibly half-updated).
    OptimizerStep,
    /// Between iterations (after post-step bookkeeping, before the next
    /// forward). Equivalent to `OptimizerStep` for recovery purposes.
    BetweenIterations,
}

impl Phase {
    /// True when healthy replicas have already applied the optimizer update
    /// for this iteration by the time they detect the hang, so recovery
    /// resumes at `i + 1` rather than `i`.
    pub fn recovers_to_next_iteration(self) -> bool {
        matches!(self, Phase::OptimizerStep | Phase::BetweenIterations)
    }

    /// All phases, for exhaustive sweeps.
    pub fn all() -> [Phase; 5] {
        [
            Phase::Forward,
            Phase::Backward,
            Phase::AllReduce,
            Phase::OptimizerStep,
            Phase::BetweenIterations,
        ]
    }
}

/// A scripted failure: at iteration `iteration`, while `rank` is in
/// `phase`, inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Minibatch iteration (0-based) at which the fault fires.
    pub iteration: u64,
    /// Execution phase within that iteration.
    pub phase: Phase,
    /// The victim rank.
    pub rank: RankId,
    /// Fault class.
    pub kind: FailureKind,
}

impl FailureSpec {
    /// Convenience constructor.
    pub fn new(iteration: u64, phase: Phase, rank: RankId, kind: FailureKind) -> Self {
        FailureSpec {
            iteration,
            phase,
            rank,
            kind,
        }
    }
}

/// Failure-rate model: exponential (Poisson process) per-GPU failures.
///
/// `f` in the paper's analysis is the per-GPU failure frequency; the job
/// failure rate is `N·f`. The OPT-175B run saw ≈2 failures/day on 992
/// GPUs, i.e. `f ≈ 2e-3` per GPU per day.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FailureRate {
    /// Failures per GPU per second.
    pub per_gpu_per_sec: f64,
}

impl FailureRate {
    /// From failures per GPU per day.
    pub fn per_gpu_per_day(f: f64) -> Self {
        FailureRate {
            per_gpu_per_sec: f / 86_400.0,
        }
    }

    /// The OPT-175B observed rate: 2 failures/day over 992 GPUs.
    pub fn opt175b() -> Self {
        Self::per_gpu_per_day(2.0 / 992.0)
    }

    /// Job-level failure rate for `n` GPUs (failures per second).
    pub fn job_rate(&self, n: usize) -> f64 {
        self.per_gpu_per_sec * n as f64
    }

    /// Mean time between job failures for `n` GPUs.
    pub fn job_mtbf(&self, n: usize) -> SimTime {
        SimTime::from_secs(1.0 / self.job_rate(n))
    }
}

/// One event in a generated failure trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the failure.
    pub at: SimTime,
    /// Victim rank (uniform over the job).
    pub rank: RankId,
    /// Fault class (drawn from the observed mix).
    pub kind: FailureKind,
}

/// Generates a Poisson failure trace for a job of `n_ranks` GPUs over
/// `horizon` of simulated time.
///
/// The kind mix follows the paper's observation that most faults are
/// single-GPU/network and node failures are rare: 40% transient network,
/// 20% driver corruption, 20% sticky CUDA, 19% GPU hardware, 1% node.
pub fn poisson_trace(
    rate: FailureRate,
    n_ranks: usize,
    horizon: SimTime,
    rng: &mut DetRng,
) -> Vec<TraceEvent> {
    let lambda = rate.job_rate(n_ranks);
    let mut events = Vec::new();
    if lambda <= 0.0 {
        return events;
    }
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.uniform();
        t += -u.max(1e-300).ln() / lambda;
        if t >= horizon.as_secs() {
            break;
        }
        let rank = RankId((rng.uniform() * n_ranks as f64) as u32 % n_ranks as u32);
        let k: f64 = rng.uniform();
        let kind = if k < 0.40 {
            FailureKind::TransientNetwork
        } else if k < 0.60 {
            FailureKind::DriverCorruption
        } else if k < 0.80 {
            FailureKind::StickyCuda
        } else if k < 0.99 {
            FailureKind::GpuHardware
        } else {
            FailureKind::NodeFailure
        };
        events.push(TraceEvent {
            at: SimTime::from_secs(t),
            rank,
            kind,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(FailureKind::GpuHardware.needs_migration());
        assert!(FailureKind::NodeFailure.needs_migration());
        assert!(!FailureKind::StickyCuda.needs_migration());
        assert!(FailureKind::TransientNetwork.gpu_state_accessible());
        assert!(!FailureKind::StickyCuda.gpu_state_accessible());
    }

    #[test]
    fn phase_recovery_direction() {
        assert!(!Phase::Forward.recovers_to_next_iteration());
        assert!(!Phase::AllReduce.recovers_to_next_iteration());
        assert!(Phase::OptimizerStep.recovers_to_next_iteration());
        assert!(Phase::BetweenIterations.recovers_to_next_iteration());
    }

    #[test]
    fn opt175b_rate_matches_two_per_day() {
        let r = FailureRate::opt175b();
        let per_day = r.job_rate(992) * 86_400.0;
        assert!((per_day - 2.0).abs() < 1e-9);
    }

    #[test]
    fn job_mtbf_shrinks_with_n() {
        let r = FailureRate::per_gpu_per_day(1e-3);
        assert!(r.job_mtbf(1000) < r.job_mtbf(100));
    }

    #[test]
    fn poisson_trace_is_deterministic_and_sorted() {
        let rate = FailureRate::per_gpu_per_day(0.5);
        let mut r1 = DetRng::new(42);
        let mut r2 = DetRng::new(42);
        let t1 = poisson_trace(rate, 64, SimTime::from_secs(86_400.0 * 10.0), &mut r1);
        let t2 = poisson_trace(rate, 64, SimTime::from_secs(86_400.0 * 10.0), &mut r2);
        assert_eq!(t1.len(), t2.len());
        assert!(!t1.is_empty());
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a, b);
        }
        for w in t1.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn poisson_trace_rate_roughly_matches() {
        // With λ·T expected events, the sample count should be within a
        // loose band (this is a smoke test, not a statistics exam).
        let rate = FailureRate::per_gpu_per_day(2e-3);
        let n = 1000;
        let days = 100.0;
        let mut rng = DetRng::new(7);
        let tr = poisson_trace(rate, n, SimTime::from_secs(86_400.0 * days), &mut rng);
        let expected = rate.job_rate(n) * 86_400.0 * days;
        let got = tr.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "expected ~{expected}, got {got}"
        );
    }
}

//! Core simulation primitives shared by every crate in the workspace.
//!
//! The reproduction of *Just-In-Time Checkpointing* (EuroSys '24) runs
//! distributed training functionally (real threads, real numerics, real
//! hangs) while accounting for time on per-rank **virtual clocks** driven
//! by a calibrated [`cost::CostModel`]. This crate provides:
//!
//! * [`time`] — virtual time and the shared per-rank clock board,
//! * [`cost`] — bandwidth/latency/flop cost models for V100/A100-class
//!   simulated hardware,
//! * [`failure`] — failure kinds, injection specifications, and Poisson
//!   failure-trace generation,
//! * [`codec`] — a hand-rolled length-prefixed binary codec used for
//!   checkpoint files and CRIU images (no external format crate needed),
//! * [`rng`] — deterministic seeded RNG helpers,
//! * [`error`] — the common error type,
//! * [`ids`] — strongly-typed identifiers for ranks, GPUs, nodes, jobs.

pub mod codec;
pub mod cost;
pub mod error;
pub mod failure;
pub mod ids;
pub mod layout;
pub mod pool;
pub mod rng;
pub mod time;

pub use error::{SimError, SimResult};
pub use ids::{GpuId, JobId, NodeId, RankId};
pub use time::SimTime;

//! Core simulation primitives shared by every crate in the workspace.
//!
//! The reproduction of *Just-In-Time Checkpointing* (EuroSys '24) runs
//! distributed training functionally (real threads, real numerics, real
//! hangs) while accounting for time on per-rank **virtual clocks** driven
//! by a calibrated [`cost::CostModel`]. This crate provides:
//!
//! * [`time`] — virtual time and the shared per-rank clock board,
//! * [`cost`] — bandwidth/latency/flop cost models for V100/A100-class
//!   simulated hardware,
//! * [`failure`] — failure kinds, injection specifications, and Poisson
//!   failure-trace generation,
//! * [`codec`] — a hand-rolled length-prefixed binary codec used for
//!   checkpoint files and CRIU images (no external format crate needed),
//! * [`rng`] — deterministic seeded RNG helpers,
//! * [`sync`] — the workspace's `Mutex`/`RwLock`/`Condvar` (a
//!   `parking_lot` re-export, or instrumented lock-witness wrappers
//!   under the `lock_witness` feature),
//! * [`error`] — the common error type,
//! * [`ids`] — strongly-typed identifiers for ranks, GPUs, nodes, jobs.

pub mod codec;
pub mod cost;
pub mod error;
pub mod failure;
pub mod ids;
pub mod layout;
pub mod pool;
pub mod rng;
pub mod sync;
pub mod time;

pub use error::{SimError, SimResult};
pub use ids::{GpuId, JobId, NodeId, RankId};
pub use time::SimTime;

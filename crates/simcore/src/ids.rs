//! Strongly-typed identifiers used throughout the simulation.
//!
//! Every distributed entity (rank, GPU, node, job) gets its own newtype so
//! that e.g. a [`RankId`] can never be accidentally used where a [`GpuId`]
//! is expected — the classic source of off-by-one-world bugs in cluster
//! software.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_type!(
    /// A worker rank in a distributed training job (one rank per GPU).
    RankId,
    "rank"
);
id_type!(
    /// A physical (simulated) GPU device in the cluster inventory.
    GpuId,
    "gpu"
);
id_type!(
    /// A host node containing one or more GPUs.
    NodeId,
    "node"
);
id_type!(
    /// A training job admitted to the cluster scheduler.
    JobId,
    "job"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(RankId(3).to_string(), "rank3");
        assert_eq!(GpuId(0).to_string(), "gpu0");
        assert_eq!(NodeId(7).to_string(), "node7");
        assert_eq!(JobId(42).to_string(), "job42");
    }

    #[test]
    fn index_round_trips() {
        let r: RankId = 9usize.into();
        assert_eq!(r.index(), 9);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RankId(1) < RankId(2));
        assert_eq!(GpuId(5), GpuId(5));
    }
}

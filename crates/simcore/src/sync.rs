//! Workspace sync primitives with an optional runtime lock witness.
//!
//! Every concurrency-bearing crate imports `Mutex`/`RwLock`/`Condvar`
//! from here instead of `parking_lot` directly. Without the
//! `lock_witness` feature this module is a plain re-export — zero cost,
//! identical types. With the feature, the primitives are wrapped with
//! `#[track_caller]` instrumentation that records, to the file named by
//! the `JIT_LOCK_WITNESS` environment variable, what the test run
//! *actually did*:
//!
//! * `edge <file:line> <file:line>` — a lock acquired while another was
//!   held by the same thread (an observed lock-order edge);
//! * `wait <file:line>` — a condvar wait site that parked;
//! * `notify <file:line> held|unheld` — a condvar notify and whether any
//!   mutex was held at that moment (the PR-5 lost-wakeup tell).
//!
//! `jitlint --witness <file>` then diffs this against the static
//! acquisition graph: a runtime edge the analyzer didn't predict is an
//! analyzer blind spot (hard failure); a static edge never exercised is
//! a test-coverage gap (reported, not fatal). Records are deduplicated
//! per process, so the file stays small no matter how hot the locks are.

#[cfg(not(feature = "lock_witness"))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(feature = "lock_witness")]
pub use parking_lot::WaitTimeoutResult;
#[cfg(feature = "lock_witness")]
pub use witness::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "lock_witness")]
mod witness {
    use std::cell::RefCell;
    use std::collections::HashSet;
    use std::fmt;
    use std::io::Write as _;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::time::Duration;

    use super::WaitTimeoutResult;

    type Site = &'static Location<'static>;

    thread_local! {
        /// Stack of `(acquisition site, is_mutex)` this thread holds.
        static HELD: RefCell<Vec<(Site, bool)>> = const { RefCell::new(Vec::new()) };
    }

    fn same_site(a: Site, b: Site) -> bool {
        a.file() == b.file() && a.line() == b.line()
    }

    /// Appends one record line, once per distinct line per process.
    /// Silently a no-op when `JIT_LOCK_WITNESS` is unset.
    fn record(line: &str) {
        use std::sync::{Mutex as StdMutex, OnceLock};
        type Sink = Option<StdMutex<(HashSet<String>, std::fs::File)>>;
        static SINK: OnceLock<Sink> = OnceLock::new();
        let sink = SINK.get_or_init(|| {
            let path = std::env::var("JIT_LOCK_WITNESS").ok()?;
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()?;
            Some(StdMutex::new((HashSet::new(), file)))
        });
        let Some(sink) = sink else { return };
        let mut g = sink.lock().unwrap_or_else(|e| e.into_inner());
        if g.0.insert(line.to_string()) {
            let (_, file) = &mut *g;
            let _ = writeln!(file, "{line}");
        }
    }

    /// Records edges from every currently-held site, then pushes.
    fn on_acquire(loc: Site, mutex: bool) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            for (held, _) in h.iter() {
                if !same_site(held, loc) {
                    record(&format!(
                        "edge {}:{} {}:{}",
                        held.file(),
                        held.line(),
                        loc.file(),
                        loc.line()
                    ));
                }
            }
            h.push((loc, mutex));
        });
    }

    /// Pops the most recent entry for `loc` (guards may drop out of
    /// acquisition order).
    fn on_release(loc: Site) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|(l, _)| same_site(l, loc)) {
                h.remove(pos);
            }
        });
    }

    /// A `parking_lot::Mutex` that reports acquisitions to the witness.
    pub struct Mutex<T: ?Sized> {
        inner: parking_lot::Mutex<T>,
    }

    /// Instrumented mutex guard; releases its witness entry on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        loc: Site,
        inner: parking_lot::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: parking_lot::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex, recording an order edge from every lock
        /// this thread already holds.
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let loc = Location::caller();
            let inner = self.inner.lock();
            on_acquire(loc, true);
            MutexGuard { loc, inner }
        }

        /// Tries to acquire without blocking.
        #[track_caller]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let loc = Location::caller();
            let inner = self.inner.try_lock()?;
            on_acquire(loc, true);
            Some(MutexGuard { loc, inner })
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            on_release(self.loc);
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A `parking_lot::RwLock` that reports acquisitions to the witness.
    pub struct RwLock<T: ?Sized> {
        inner: parking_lot::RwLock<T>,
    }

    /// Instrumented shared guard.
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        loc: Site,
        inner: parking_lot::RwLockReadGuard<'a, T>,
    }

    /// Instrumented exclusive guard.
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        loc: Site,
        inner: parking_lot::RwLockWriteGuard<'a, T>,
    }

    impl<T> RwLock<T> {
        /// Creates the lock.
        pub const fn new(value: T) -> Self {
            RwLock {
                inner: parking_lot::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared access.
        #[track_caller]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let loc = Location::caller();
            let inner = self.inner.read();
            on_acquire(loc, false);
            RwLockReadGuard { loc, inner }
        }

        /// Acquires exclusive access.
        #[track_caller]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let loc = Location::caller();
            let inner = self.inner.write();
            on_acquire(loc, false);
            RwLockWriteGuard { loc, inner }
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            on_release(self.loc);
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            on_release(self.loc);
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// A `parking_lot::Condvar` that reports wait/notify pairings.
    pub struct Condvar {
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        /// Creates the condvar.
        pub const fn new() -> Self {
            Condvar {
                inner: parking_lot::Condvar::new(),
            }
        }

        /// Parks until notified. The guard's witness entry is suspended
        /// for the park (the wait releases its lock) and re-registered —
        /// with fresh order edges — on re-acquisition.
        #[track_caller]
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let loc = Location::caller();
            record(&format!("wait {}:{}", loc.file(), loc.line()));
            on_release(guard.loc);
            self.inner.wait(&mut guard.inner);
            on_acquire(guard.loc, true);
        }

        /// Parks until notified or `timeout` elapses.
        #[track_caller]
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            let loc = Location::caller();
            record(&format!("wait {}:{}", loc.file(), loc.line()));
            on_release(guard.loc);
            let result = self.inner.wait_for(&mut guard.inner, timeout);
            on_acquire(guard.loc, true);
            result
        }

        /// Wakes one waiter, recording whether a mutex was held.
        #[track_caller]
        pub fn notify_one(&self) {
            note_notify(Location::caller());
            self.inner.notify_one();
        }

        /// Wakes every waiter, recording whether a mutex was held.
        #[track_caller]
        pub fn notify_all(&self) {
            note_notify(Location::caller());
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Condvar { .. }")
        }
    }

    fn note_notify(loc: Site) {
        let held = HELD.with(|h| h.borrow().iter().any(|(_, mutex)| *mutex));
        record(&format!(
            "notify {}:{} {}",
            loc.file(),
            loc.line(),
            if held { "held" } else { "unheld" }
        ));
    }
}

#[cfg(all(test, feature = "lock_witness"))]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn guards_nest_and_release() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        drop(ga);
        drop(gb);
        let ga = a.lock();
        assert_eq!(*ga, 1);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().map_err(|_| "worker panicked").expect("join");
    }
}

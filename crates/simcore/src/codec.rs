//! A small length-prefixed binary codec for checkpoint files and CRIU
//! images.
//!
//! The approved dependency set has `serde` but no serialization *format*
//! crate, so checkpoint payloads use this hand-rolled codec instead: a
//! flat, little-endian, length-prefixed encoding with explicit field order
//! and a trailing CRC for corruption detection. This is also closer to how
//! production checkpoint writers work — they stream tensors, they do not
//! reflect over object graphs.
//!
//! The [`Encode`]/[`Decode`] traits are implemented for the primitive
//! types, `String`, `Vec<T>`, `Option<T>`, and tuples; higher layers
//! compose them for their state structs.

use crate::error::{SimError, SimResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes a value into a byte buffer.
pub trait Encode {
    /// Appends the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Deserializes a value from a byte buffer.
pub trait Decode: Sized {
    /// Reads a value from the front of `buf`, consuming its bytes.
    fn decode(buf: &mut Bytes) -> SimResult<Self>;
}

fn need(buf: &Bytes, n: usize) -> SimResult<()> {
    if buf.remaining() < n {
        return Err(SimError::Codec(format!(
            "truncated input: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

macro_rules! codec_num {
    ($t:ty, $put:ident, $get:ident, $size:expr) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $t {
            fn decode(buf: &mut Bytes) -> SimResult<Self> {
                need(buf, $size)?;
                Ok(buf.$get())
            }
        }
    };
}

codec_num!(u8, put_u8, get_u8, 1);
codec_num!(u16, put_u16_le, get_u16_le, 2);
codec_num!(u32, put_u32_le, get_u32_le, 4);
codec_num!(u64, put_u64_le, get_u64_le, 8);
codec_num!(i64, put_i64_le, get_i64_le, 8);
codec_num!(f32, put_f32_le, get_f32_le, 4);
codec_num!(f64, put_f64_le, get_f64_le, 8);

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SimError::Codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok(u64::decode(buf)? as usize)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        let len = u64::decode(buf)? as usize;
        need(buf, len)?;
        let raw = buf.split_to(len);
        String::from_utf8(raw.to_vec())
            .map_err(|e| SimError::Codec(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        let len = u64::decode(buf)? as usize;
        // Guard against absurd lengths from corrupt input.
        if len > buf.remaining().saturating_mul(8).saturating_add(1024) {
            return Err(SimError::Codec(format!(
                "implausible vector length {len} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(SimError::Codec(format!("invalid option tag {other}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl Encode for [u64; 4] {
    fn encode(&self, buf: &mut BytesMut) {
        for v in self {
            v.encode(buf);
        }
    }
}

impl Decode for [u64; 4] {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok([
            u64::decode(buf)?,
            u64::decode(buf)?,
            u64::decode(buf)?,
            u64::decode(buf)?,
        ])
    }
}

/// CRC-64 (ECMA polynomial) over a byte slice; used as the integrity check
/// trailer on checkpoint payloads and for GPU-buffer checksums during
/// replay-log verification (§4.1).
pub fn crc64(data: &[u8]) -> u64 {
    const POLY: u64 = 0x42F0_E1EB_A9EA_3693;
    let mut crc: u64 = !0;
    for &b in data {
        crc ^= (b as u64) << 56;
        for _ in 0..8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    !crc
}

/// Checksum for a float buffer: stable across runs because it hashes the
/// exact bit patterns (used to compare GPU buffers before/after replay).
pub fn f32_checksum(data: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    crc64(&bytes)
}

/// Encodes a value into a framed, checksummed message:
/// `magic(4) | payload_len(8) | payload | crc64(8)`.
pub fn encode_framed<T: Encode>(value: &T) -> Bytes {
    const MAGIC: &[u8; 4] = b"JITC";
    let mut payload = BytesMut::new();
    value.encode(&mut payload);
    let mut out = BytesMut::with_capacity(payload.len() + 20);
    out.put_slice(MAGIC);
    (payload.len() as u64).encode(&mut out);
    let crc = crc64(&payload);
    out.put_slice(&payload);
    crc.encode(&mut out);
    out.freeze()
}

/// Decodes a framed message produced by [`encode_framed`], verifying the
/// magic and CRC. Corruption is reported as [`SimError::Codec`].
pub fn decode_framed<T: Decode>(raw: &Bytes) -> SimResult<T> {
    let mut buf = raw.clone();
    need(&buf, 4)?;
    let magic = buf.split_to(4);
    if &magic[..] != b"JITC" {
        return Err(SimError::Codec("bad magic".into()));
    }
    let len = u64::decode(&mut buf)? as usize;
    need(&buf, len + 8)?;
    let payload = buf.split_to(len);
    let stored_crc = u64::decode(&mut buf)?;
    if crc64(&payload) != stored_crc {
        return Err(SimError::Codec(
            "checksum mismatch (corrupt payload)".into(),
        ));
    }
    let mut p = payload;
    let value = T::decode(&mut p)?;
    if p.has_remaining() {
        return Err(SimError::Codec(format!(
            "{} trailing bytes after decode",
            p.remaining()
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let framed = encode_framed(&v);
        let back: T = decode_framed(&framed).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(123456789u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(3.5f32);
        round_trip(f64::MIN_POSITIVE);
        round_trip(true);
        round_trip(String::from("hello checkpoint"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1.0f32, -2.5, 3.25]);
        round_trip(Option::<u64>::None);
        round_trip(Some(7u32));
        round_trip((String::from("k"), vec![1u64, 2, 3]));
        round_trip([1u64, 2, 3, 4]);
    }

    #[test]
    fn corruption_is_detected() {
        let framed = encode_framed(&vec![1.0f32; 64]);
        let mut bad = framed.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let res: SimResult<Vec<f32>> = decode_framed(&Bytes::from(bad));
        assert!(matches!(res, Err(SimError::Codec(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let framed = encode_framed(&String::from("state"));
        let cut = framed.slice(..framed.len() - 3);
        let res: SimResult<String> = decode_framed(&cut);
        assert!(res.is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let framed = encode_framed(&1u64);
        let mut bad = framed.to_vec();
        bad[0] = b'X';
        let res: SimResult<u64> = decode_framed(&Bytes::from(bad));
        assert!(res.is_err());
    }

    #[test]
    fn f32_checksum_distinguishes_nearby_buffers() {
        let a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(f32_checksum(&a), f32_checksum(&b));
        b[1] = f32::from_bits(2.0f32.to_bits() + 1);
        assert_ne!(f32_checksum(&a), f32_checksum(&b));
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(b""), crc64(b""));
        assert_ne!(crc64(b"a"), crc64(b"b"));
        assert_ne!(crc64(b"ab"), crc64(b"ba"));
    }
}

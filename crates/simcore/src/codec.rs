//! A small length-prefixed binary codec for checkpoint files and CRIU
//! images.
//!
//! The approved dependency set has `serde` but no serialization *format*
//! crate, so checkpoint payloads use this hand-rolled codec instead: a
//! flat, little-endian, length-prefixed encoding with explicit field order
//! and a trailing CRC for corruption detection. This is also closer to how
//! production checkpoint writers work — they stream tensors, they do not
//! reflect over object graphs.
//!
//! The [`Encode`]/[`Decode`] traits are implemented for the primitive
//! types, `String`, `Vec<T>`, `Option<T>`, and tuples; higher layers
//! compose them for their state structs.

use crate::error::{SimError, SimResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes a value into a byte buffer.
pub trait Encode {
    /// Appends the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Deserializes a value from a byte buffer.
pub trait Decode: Sized {
    /// Reads a value from the front of `buf`, consuming its bytes.
    fn decode(buf: &mut Bytes) -> SimResult<Self>;
}

fn need(buf: &Bytes, n: usize) -> SimResult<()> {
    if buf.remaining() < n {
        return Err(SimError::Codec(format!(
            "truncated input: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

macro_rules! codec_num {
    ($t:ty, $put:ident, $get:ident, $size:expr) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $t {
            fn decode(buf: &mut Bytes) -> SimResult<Self> {
                need(buf, $size)?;
                Ok(buf.$get())
            }
        }
    };
}

codec_num!(u8, put_u8, get_u8, 1);
codec_num!(u16, put_u16_le, get_u16_le, 2);
codec_num!(u32, put_u32_le, get_u32_le, 4);
codec_num!(u64, put_u64_le, get_u64_le, 8);
codec_num!(i64, put_i64_le, get_i64_le, 8);
codec_num!(f32, put_f32_le, get_f32_le, 4);
codec_num!(f64, put_f64_le, get_f64_le, 8);

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SimError::Codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok(u64::decode(buf)? as usize)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        let len = u64::decode(buf)? as usize;
        need(buf, len)?;
        let raw = buf.split_to(len);
        String::from_utf8(raw.to_vec())
            .map_err(|e| SimError::Codec(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        let len = u64::decode(buf)? as usize;
        // Guard against absurd lengths from corrupt input.
        if len > buf.remaining().saturating_mul(8).saturating_add(1024) {
            return Err(SimError::Codec(format!(
                "implausible vector length {len} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

/// Bulk encode of an `f32` slice, wire-compatible with the generic
/// `Vec<f32>` [`Encode`] impl (`u64` length prefix, then each value LE).
///
/// The generic path costs one `put_f32_le` call — a bounds check and a
/// 4-byte `extend_from_slice` — per element; for a multi-hundred-MiB
/// training state that per-element overhead dominates checkpoint encode
/// time. Here values are staged through a stack scratch block and
/// appended in 4 KiB strides, which the compiler turns into a vectorized
/// byte shuffle plus a plain memcpy.
pub fn encode_f32_slice(data: &[f32], buf: &mut BytesMut) {
    (data.len() as u64).encode(buf);
    buf.reserve(data.len() * 4);
    let mut scratch = [0u8; 4096];
    for chunk in data.chunks(1024) {
        let raw = &mut scratch[..chunk.len() * 4];
        for (i, v) in chunk.iter().enumerate() {
            raw[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(raw);
    }
}

/// Bulk decode counterpart of [`encode_f32_slice`]; also accepts streams
/// written by the generic `Vec<f32>` [`Decode`] impl (same wire format).
pub fn decode_f32_slice(buf: &mut Bytes) -> SimResult<Vec<f32>> {
    let len = u64::decode(buf)? as usize;
    need(buf, len.saturating_mul(4))?;
    let raw = buf.split_to(len * 4);
    let mut out = Vec::with_capacity(len);
    for c in raw.chunks_exact(4) {
        out.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    }
    Ok(out)
}

/// Number of bytes [`encode_f32_slice`] will append for `data`.
pub fn f32_slice_encoded_len(data: &[f32]) -> usize {
    8 + data.len() * 4
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(SimError::Codec(format!("invalid option tag {other}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl Encode for [u64; 4] {
    fn encode(&self, buf: &mut BytesMut) {
        for v in self {
            v.encode(buf);
        }
    }
}

impl Decode for [u64; 4] {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok([
            u64::decode(buf)?,
            u64::decode(buf)?,
            u64::decode(buf)?,
            u64::decode(buf)?,
        ])
    }
}

/// CRC-64 ECMA generator polynomial (MSB-first form).
const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Slice-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic one-byte-at-a-time table; `TABLES[n]` advances a byte's
/// contribution `n` additional zero bytes, which lets the hot loop fold
/// eight input bytes per step instead of running the 8-cycles-per-bit
/// shift register of the bitwise form.
const fn crc64_tables() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut k = 0;
        while k < 8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ CRC64_POLY
            } else {
                crc << 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[n - 1][i];
            t[n][i] = (prev << 8) ^ t[0][(prev >> 56) as usize];
            i += 1;
        }
        n += 1;
    }
    t
}

static CRC64_TABLES: [[u64; 256]; 8] = crc64_tables();

/// CRC-64 (ECMA polynomial) over a byte slice; used as the integrity check
/// trailer on checkpoint payloads and for GPU-buffer checksums during
/// replay-log verification (§4.1).
///
/// Table-driven slice-by-8: folds eight input bytes per table lookup
/// round. Produces bit-identical output to [`crc64_bitwise`] (the
/// reference implementation) at roughly an order of magnitude higher
/// throughput — checkpoint stall `o` is dominated by this function plus
/// the payload memcpy, so it sits squarely on the §5 critical path.
pub fn crc64(data: &[u8]) -> u64 {
    let t = &CRC64_TABLES;
    let mut crc: u64 = !0;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let x = crc ^ u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        crc = t[7][(x >> 56) as usize]
            ^ t[6][(x >> 48) as usize & 0xFF]
            ^ t[5][(x >> 40) as usize & 0xFF]
            ^ t[4][(x >> 32) as usize & 0xFF]
            ^ t[3][(x >> 24) as usize & 0xFF]
            ^ t[2][(x >> 16) as usize & 0xFF]
            ^ t[1][(x >> 8) as usize & 0xFF]
            ^ t[0][x as usize & 0xFF];
    }
    for &b in chunks.remainder() {
        crc = (crc << 8) ^ t[0][((crc >> 56) ^ b as u64) as usize & 0xFF];
    }
    !crc
}

/// Reference bit-at-a-time CRC-64: the seed implementation, kept as the
/// ground truth the table-driven [`crc64`] is regression-tested against,
/// and as the "monolithic" baseline in the checkpoint benchmarks.
pub fn crc64_bitwise(data: &[u8]) -> u64 {
    let mut crc: u64 = !0;
    for &b in data {
        crc ^= (b as u64) << 56;
        for _ in 0..8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ CRC64_POLY
            } else {
                crc << 1
            };
        }
    }
    !crc
}

/// Checksum for a float buffer: stable across runs because it hashes the
/// exact bit patterns (used to compare GPU buffers before/after replay).
pub fn f32_checksum(data: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    crc64(&bytes)
}

/// Magic prefix of one framed shard produced by [`Encoder`].
pub const SHARD_MAGIC: &[u8; 4] = b"JITS";

/// Framed-shard overhead: `magic(4) | index(4) | payload_len(8)` header
/// plus the `crc64(8)` trailer.
pub const SHARD_FRAME_OVERHEAD: usize = 4 + 4 + 8 + 8;

/// Streaming sharded encoder: values stream in through [`Encoder::write`]
/// and come out as a sequence of independently checksummed,
/// length-prefixed shards of (at most) a configurable payload size,
/// instead of one flat buffer.
///
/// Each shard is framed as
/// `magic "JITS" (4) | shard_index (4, LE) | payload_len (8, LE) |
/// payload | crc64(payload) (8, LE)`. The concatenation of all shard
/// payloads, in index order, is byte-identical to what a plain
/// [`Encode`] pass over the same values would have produced — sharding
/// changes the container, never the content. Downstream layers can
/// therefore checksum, persist, and validate shards independently (the
/// checkpoint pipeline fans them out across worker threads and store
/// stripes) while decoders see a single logical byte stream.
#[derive(Debug)]
pub struct Encoder {
    shard_payload: usize,
    staged: BytesMut,
    shards: Vec<Bytes>,
}

impl Encoder {
    /// Creates an encoder producing shards of at most `shard_payload`
    /// payload bytes (clamped to at least 1).
    pub fn new(shard_payload: usize) -> Encoder {
        Encoder {
            shard_payload: shard_payload.max(1),
            staged: BytesMut::new(),
            shards: Vec::new(),
        }
    }

    /// Appends a value to the logical stream, sealing shards as they fill.
    pub fn write<T: Encode>(&mut self, value: &T) {
        value.encode(&mut self.staged);
        if self.staged.len() >= self.shard_payload {
            let mut whole = std::mem::take(&mut self.staged).freeze();
            while whole.len() >= self.shard_payload {
                self.seal(whole.split_to(self.shard_payload));
            }
            self.staged.extend_from_slice(&whole);
        }
    }

    fn seal(&mut self, payload: Bytes) {
        let framed = frame_shard(self.shards.len() as u32, &payload);
        self.shards.push(framed);
    }

    /// Seals the trailing partial shard (if any) and returns all shards in
    /// index order. An empty stream yields one empty shard so that every
    /// encode produces at least one verifiable object.
    pub fn finish(mut self) -> Vec<Bytes> {
        if !self.staged.is_empty() || self.shards.is_empty() {
            let payload = std::mem::take(&mut self.staged).freeze();
            self.seal(payload);
        }
        self.shards
    }
}

/// Frames one shard: `JITS | index | payload_len | payload | crc64`.
pub fn frame_shard(index: u32, payload: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(payload.len() + SHARD_FRAME_OVERHEAD);
    out.put_slice(SHARD_MAGIC);
    out.put_u32_le(index);
    out.put_u64_le(payload.len() as u64);
    out.put_slice(payload);
    out.put_u64_le(crc64(payload));
    out.freeze()
}

/// Decodes one framed shard from the front of `buf`, consuming its bytes
/// and verifying magic and CRC. Returns `(index, payload)`.
pub fn decode_shard(buf: &mut Bytes) -> SimResult<(u32, Bytes)> {
    need(buf, 4)?;
    let magic = buf.split_to(4);
    if &magic[..] != SHARD_MAGIC {
        return Err(SimError::Codec("bad shard magic".into()));
    }
    let index = u32::decode(buf)?;
    let len = u64::decode(buf)? as usize;
    need(buf, len + 8)?;
    let payload = buf.split_to(len);
    let stored_crc = u64::decode(buf)?;
    if crc64(&payload) != stored_crc {
        return Err(SimError::Codec(format!(
            "shard {index}: checksum mismatch (corrupt payload)"
        )));
    }
    Ok((index, payload))
}

/// Concatenates framed shards into one self-describing blob (the inverse
/// of [`split_shards`]); used where a single `Bytes` must travel through
/// an interface that predates sharding (e.g. the CRIU image).
pub fn concat_shards(shards: &[Bytes]) -> Bytes {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    let mut out = BytesMut::with_capacity(total);
    for s in shards {
        out.put_slice(s);
    }
    out.freeze()
}

/// Splits a [`concat_shards`] blob back into the logical payload stream,
/// verifying every shard's magic, CRC, and index contiguity.
pub fn split_shards(raw: &Bytes) -> SimResult<Bytes> {
    let mut buf = raw.clone();
    let mut payloads = BytesMut::new();
    let mut expect: u32 = 0;
    while buf.has_remaining() {
        let (index, payload) = decode_shard(&mut buf)?;
        if index != expect {
            return Err(SimError::Codec(format!(
                "shard index {index} out of order (expected {expect})"
            )));
        }
        payloads.put_slice(&payload);
        expect = expect.saturating_add(1);
    }
    if expect == 0 {
        return Err(SimError::Codec("empty sharded stream".into()));
    }
    Ok(payloads.freeze())
}

/// Encodes a value into a framed, checksummed message:
/// `magic(4) | payload_len(8) | payload | crc64(8)`.
pub fn encode_framed<T: Encode>(value: &T) -> Bytes {
    const MAGIC: &[u8; 4] = b"JITC";
    let mut payload = BytesMut::new();
    value.encode(&mut payload);
    let mut out = BytesMut::with_capacity(payload.len() + 20);
    out.put_slice(MAGIC);
    (payload.len() as u64).encode(&mut out);
    let crc = crc64(&payload);
    out.put_slice(&payload);
    crc.encode(&mut out);
    out.freeze()
}

/// Decodes a framed message produced by [`encode_framed`], verifying the
/// magic and CRC. Corruption is reported as [`SimError::Codec`].
pub fn decode_framed<T: Decode>(raw: &Bytes) -> SimResult<T> {
    let mut buf = raw.clone();
    need(&buf, 4)?;
    let magic = buf.split_to(4);
    if &magic[..] != b"JITC" {
        return Err(SimError::Codec("bad magic".into()));
    }
    let len = u64::decode(&mut buf)? as usize;
    need(&buf, len + 8)?;
    let payload = buf.split_to(len);
    let stored_crc = u64::decode(&mut buf)?;
    if crc64(&payload) != stored_crc {
        return Err(SimError::Codec(
            "checksum mismatch (corrupt payload)".into(),
        ));
    }
    let mut p = payload;
    let value = T::decode(&mut p)?;
    if p.has_remaining() {
        return Err(SimError::Codec(format!(
            "{} trailing bytes after decode",
            p.remaining()
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let framed = encode_framed(&v);
        let back: T = decode_framed(&framed).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(123456789u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(3.5f32);
        round_trip(f64::MIN_POSITIVE);
        round_trip(true);
        round_trip(String::from("hello checkpoint"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1.0f32, -2.5, 3.25]);
        round_trip(Option::<u64>::None);
        round_trip(Some(7u32));
        round_trip((String::from("k"), vec![1u64, 2, 3]));
        round_trip([1u64, 2, 3, 4]);
    }

    #[test]
    fn corruption_is_detected() {
        let framed = encode_framed(&vec![1.0f32; 64]);
        let mut bad = framed.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let res: SimResult<Vec<f32>> = decode_framed(&Bytes::from(bad));
        assert!(matches!(res, Err(SimError::Codec(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let framed = encode_framed(&String::from("state"));
        let cut = framed.slice(..framed.len() - 3);
        let res: SimResult<String> = decode_framed(&cut);
        assert!(res.is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let framed = encode_framed(&1u64);
        let mut bad = framed.to_vec();
        bad[0] = b'X';
        let res: SimResult<u64> = decode_framed(&Bytes::from(bad));
        assert!(res.is_err());
    }

    #[test]
    fn bulk_f32_matches_generic_vec_encoding() {
        for n in [0usize, 1, 3, 1023, 1024, 1025, 2500] {
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 3.0).collect();
            let mut generic = BytesMut::new();
            data.encode(&mut generic);
            let mut bulk = BytesMut::new();
            encode_f32_slice(&data, &mut bulk);
            assert_eq!(&generic[..], &bulk[..], "n {n}");
            assert_eq!(bulk.len(), f32_slice_encoded_len(&data));
            let mut cursor = bulk.freeze();
            let back = decode_f32_slice(&mut cursor).unwrap();
            assert_eq!(back, data);
            let mut cursor2 = generic.freeze();
            let back2: Vec<f32> = Vec::decode(&mut cursor2).unwrap();
            assert_eq!(back2, data);
        }
    }

    #[test]
    fn bulk_f32_decode_rejects_truncation() {
        let mut buf = BytesMut::new();
        encode_f32_slice(&[1.0, 2.0, 3.0], &mut buf);
        let framed = buf.freeze();
        let mut cut = framed.slice(..framed.len() - 2);
        assert!(decode_f32_slice(&mut cut).is_err());
    }

    #[test]
    fn f32_checksum_distinguishes_nearby_buffers() {
        let a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(f32_checksum(&a), f32_checksum(&b));
        b[1] = f32::from_bits(2.0f32.to_bits() + 1);
        assert_ne!(f32_checksum(&a), f32_checksum(&b));
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(b""), crc64(b""));
        assert_ne!(crc64(b"a"), crc64(b"b"));
        assert_ne!(crc64(b"ab"), crc64(b"ba"));
    }

    #[test]
    fn crc64_table_matches_bitwise_reference() {
        // Lengths straddling the 8-byte fold boundary, plus a long run.
        let mut data = Vec::new();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            while data.len() < len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                data.push((x >> 33) as u8);
            }
            assert_eq!(
                crc64(&data[..len]),
                crc64_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn encoder_payload_stream_matches_flat_encode() {
        let v1 = vec![1.5f32; 1000];
        let v2 = String::from("checkpoint entry");
        let mut flat = BytesMut::new();
        v1.encode(&mut flat);
        v2.encode(&mut flat);
        for shard_size in [1usize, 7, 64, 1 << 20] {
            let mut enc = Encoder::new(shard_size);
            enc.write(&v1);
            enc.write(&v2);
            let shards = enc.finish();
            let blob = concat_shards(&shards);
            let stream = split_shards(&blob).unwrap();
            assert_eq!(&stream[..], &flat[..], "shard_size {shard_size}");
            // Every non-final shard is exactly shard_size bytes.
            for s in &shards[..shards.len() - 1] {
                assert_eq!(s.len(), shard_size + SHARD_FRAME_OVERHEAD);
            }
        }
    }

    #[test]
    fn empty_stream_yields_one_empty_shard() {
        let shards = Encoder::new(64).finish();
        assert_eq!(shards.len(), 1);
        let stream = split_shards(&concat_shards(&shards)).unwrap();
        assert!(stream.is_empty());
    }

    #[test]
    fn shard_corruption_is_detected_with_index() {
        let mut enc = Encoder::new(16);
        enc.write(&vec![0u64; 32]);
        let shards = enc.finish();
        assert!(shards.len() > 2);
        let mut blob = concat_shards(&shards).to_vec();
        // Flip a payload byte inside the second shard.
        let off = shards[0].len() + SHARD_FRAME_OVERHEAD - 8;
        blob[off] ^= 0xFF;
        let err = split_shards(&Bytes::from(blob)).unwrap_err();
        assert!(format!("{err}").contains("shard 1"), "{err}");
    }

    #[test]
    fn shard_reordering_is_detected() {
        let mut enc = Encoder::new(8);
        enc.write(&vec![7u64; 8]);
        let mut shards = enc.finish();
        assert!(shards.len() >= 2);
        shards.swap(0, 1);
        assert!(split_shards(&concat_shards(&shards)).is_err());
    }
}

//! Virtual time.
//!
//! Every rank in a simulated job owns a logical clock measured in seconds
//! of simulated wall-clock time. Device APIs, collectives, storage writes,
//! and recovery steps advance these clocks through the
//! [`crate::cost::CostModel`]; the evaluation tables are read off the
//! clocks, which makes every timing result deterministic and independent of
//! host load.
//!
//! Clocks live on a shared [`ClockBoard`] so that a collective can realize
//! barrier semantics in time: on completion, all participants' clocks are
//! advanced to `max(arrival times) + collective cost`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A point (or span) of simulated time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    /// The zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value from seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Creates a time value from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimTime(ms / 1e3)
    }

    /// Creates a time value from microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimTime(us / 1e6)
    }

    /// Returns the value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1}us", self.0 * 1e6)
        }
    }
}

/// A shared board of per-rank virtual clocks.
///
/// Clocks are stored as `f64` bit patterns in atomics so that concurrent
/// rank threads can read/advance them without holding a lock across
/// blocking operations. All updates are monotone (time never goes
/// backwards), enforced by compare-and-swap loops.
#[derive(Debug)]
pub struct ClockBoard {
    clocks: Vec<AtomicU64>,
}

impl ClockBoard {
    /// Creates a board with `n` clocks, all at time zero.
    pub fn new(n: usize) -> Self {
        ClockBoard {
            clocks: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        }
    }

    /// Number of clocks on the board.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns true if the board has no clocks.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Reads rank `i`'s current time.
    pub fn now(&self, i: usize) -> SimTime {
        SimTime(f64::from_bits(self.clocks[i].load(Ordering::Acquire)))
    }

    /// Advances rank `i`'s clock by `dt`, returning the new time.
    pub fn advance(&self, i: usize, dt: SimTime) -> SimTime {
        loop {
            let cur = self.clocks[i].load(Ordering::Acquire);
            let new = (f64::from_bits(cur) + dt.0).to_bits();
            if self.clocks[i]
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return SimTime(f64::from_bits(new));
            }
        }
    }

    /// Raises rank `i`'s clock to at least `t` (monotone), returning the
    /// resulting time.
    pub fn raise_to(&self, i: usize, t: SimTime) -> SimTime {
        loop {
            let cur = self.clocks[i].load(Ordering::Acquire);
            let curf = f64::from_bits(cur);
            if curf >= t.0 {
                return SimTime(curf);
            }
            if self.clocks[i]
                .compare_exchange(cur, t.0.to_bits(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return t;
            }
        }
    }

    /// Returns the maximum clock across a set of ranks.
    pub fn max_of(&self, ranks: &[usize]) -> SimTime {
        ranks
            .iter()
            .map(|&i| self.now(i))
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Synchronizes a group at a barrier: raises every listed clock to
    /// `max(current) + cost` and returns that time. This is how collective
    /// completion is accounted.
    pub fn barrier_sync(&self, ranks: &[usize], cost: SimTime) -> SimTime {
        let t = self.max_of(ranks) + cost;
        for &i in ranks {
            self.raise_to(i, t);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let b = ClockBoard::new(2);
        b.advance(0, SimTime::from_secs(1.5));
        b.advance(0, SimTime::from_secs(0.5));
        assert!((b.now(0).as_secs() - 2.0).abs() < 1e-12);
        assert_eq!(b.now(1), SimTime::ZERO);
    }

    #[test]
    fn raise_to_is_monotone() {
        let b = ClockBoard::new(1);
        b.raise_to(0, SimTime::from_secs(5.0));
        b.raise_to(0, SimTime::from_secs(3.0));
        assert!((b.now(0).as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_sync_equalizes_to_max_plus_cost() {
        let b = ClockBoard::new(3);
        b.raise_to(0, SimTime::from_secs(1.0));
        b.raise_to(1, SimTime::from_secs(4.0));
        b.raise_to(2, SimTime::from_secs(2.0));
        let t = b.barrier_sync(&[0, 1, 2], SimTime::from_secs(0.5));
        assert!((t.as_secs() - 4.5).abs() < 1e-12);
        for i in 0..3 {
            assert!((b.now(i).as_secs() - 4.5).abs() < 1e-12);
        }
    }

    #[test]
    fn concurrent_advances_do_not_lose_updates() {
        use std::sync::Arc;
        let b = Arc::new(ClockBoard::new(1));
        let mut handles = vec![];
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    b.advance(0, SimTime::from_millis(1.0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!((b.now(0).as_secs() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_secs(2.5).to_string(), "2.500s");
        assert_eq!(SimTime::from_millis(12.0).to_string(), "12.000ms");
        assert_eq!(SimTime::from_micros(7.0).to_string(), "7.0us");
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert!((b.saturating_sub(a).as_secs() - 2.0).abs() < 1e-12);
    }
}

//! Cost models: how long simulated operations take.
//!
//! Timing in this reproduction is driven by an explicit, calibrated cost
//! model rather than host wall-clock. Each device API, collective, storage
//! write, and recovery step asks the [`CostModel`] for its duration and
//! advances the issuing rank's virtual clock by that amount.
//!
//! Calibration targets the published numbers of the paper's evaluation
//! (Tables 4–7): e.g. an effective per-rank checkpoint write bandwidth of
//! ~0.8 GB/s on 8-GPU V100 nodes reproduces the 5 s BERT-L-PT checkpoint
//! and 20.5 s GPT2-18B checkpoint, and a ~1 s per-communicator NCCL
//! rendezvous reproduces the Table 7 breakdown where communicator
//! re-creation dominates transient recovery.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Simulated GPU hardware generations used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// NVIDIA V100 32 GB (8 per node in the paper's testbed).
    V100_32G,
    /// NVIDIA A100 80 GB (4 per node in the paper's testbed).
    A100_80G,
}

impl GpuGeneration {
    /// Device memory capacity in bytes.
    pub fn memory_bytes(self) -> u64 {
        match self {
            GpuGeneration::V100_32G => 32 * (1 << 30),
            GpuGeneration::A100_80G => 80 * (1 << 30),
        }
    }

    /// GPUs per node in the simulated testbed.
    pub fn gpus_per_node(self) -> usize {
        match self {
            GpuGeneration::V100_32G => 8,
            GpuGeneration::A100_80G => 4,
        }
    }

    /// Effective training throughput in FLOP/s (mixed precision, realistic
    /// utilization, not peak datasheet numbers).
    pub fn flops_per_sec(self) -> f64 {
        match self {
            GpuGeneration::V100_32G => 60e12,
            GpuGeneration::A100_80G => 180e12,
        }
    }
}

/// Which storage tier a checkpoint (or other bulk write) lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageTier {
    /// Local persistent disk / NFS in the critical path (`PC_disk`,
    /// `torch.save` semantics).
    Disk,
    /// Host memory via a tmpfs mount (`PC_mem`, Nebula-style).
    HostMemory,
    /// Remote blob/object store (asynchronous drain target).
    RemoteBlob,
}

/// Calibrated cost parameters for the simulated cluster.
///
/// All bandwidths are bytes/second. Per-node bandwidths are shared by the
/// ranks on that node, which is why checkpoint time scales with
/// `ranks_per_node` in [`CostModel::checkpoint_write`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU generation the model is calibrated for.
    pub gpu: GpuGeneration,
    /// Per-kernel launch overhead.
    pub kernel_launch: SimTime,
    /// GPU↔host bandwidth over PCIe (per GPU).
    pub pcie_bw: f64,
    /// Intra-node GPU↔GPU bandwidth (NVLink).
    pub nvlink_bw: f64,
    /// Inter-node per-GPU network bandwidth (InfiniBand).
    pub nic_bw: f64,
    /// Per-node persistent disk write bandwidth (shared by ranks).
    pub disk_bw: f64,
    /// Per-node host-memory (tmpfs) write bandwidth (shared by ranks).
    pub tmpfs_bw: f64,
    /// Per-node remote blob store bandwidth (shared by ranks).
    pub remote_bw: f64,
    /// Base latency per collective operation (the α in α–β); also the
    /// per-hop latency of an inter-node (NIC) ring step.
    pub coll_latency: SimTime,
    /// Per-hop latency of an intra-node (NVLink) ring step.
    pub nvlink_latency: SimTime,
    /// Rendezvous + bootstrap time to create one NCCL-style communicator.
    pub comm_init: SimTime,
    /// Time to tear down communicators and device handles during recovery.
    pub comm_teardown: SimTime,
    /// Time to create one GPU object handle (stream/event).
    pub handle_create: SimTime,
    /// CRIU-style CPU process snapshot bandwidth.
    pub criu_bw: f64,
    /// Fixed CRIU snapshot/restore base cost.
    pub criu_base: SimTime,
    /// Fixed process/framework re-initialization cost on a cold restart
    /// (the fixed `r` component that transparent JIT eliminates).
    pub process_restart: SimTime,
    /// Fixed serialization overhead per checkpoint (state-dict walk etc.).
    pub serialize_overhead: SimTime,
    /// CPU-side cost to log one device API into the replay log (if it
    /// were synchronous).
    pub api_log_overhead: SimTime,
    /// Fraction of the logging cost NOT hidden by the device proxy's
    /// asynchronous execution (§4.1: logging is overlapped with device
    /// work, making the steady-state overhead "nearly zero"). The
    /// ablation benches set this to 1.0 to model synchronous logging.
    pub log_async_residual: f64,
    /// Cost of restarting the device proxy server process (clears
    /// corrupted driver state, §4.2.1 cases 2–3).
    pub proxy_restart: SimTime,
    /// CPU dispatch cost per replayed device API (recovery replays are
    /// asynchronous re-submissions; GPU re-execution overlaps, §6.4).
    pub replay_dispatch: SimTime,
}

impl CostModel {
    /// Calibrated model for a V100 32 GB testbed (8 GPUs/node).
    pub fn v100() -> Self {
        CostModel {
            gpu: GpuGeneration::V100_32G,
            kernel_launch: SimTime::from_micros(6.0),
            pcie_bw: 12e9,
            nvlink_bw: 130e9,
            nic_bw: 12.5e9,
            disk_bw: 6.4e9,
            tmpfs_bw: 8.0e9,
            remote_bw: 2.5e9,
            coll_latency: SimTime::from_micros(40.0),
            nvlink_latency: SimTime::from_micros(8.0),
            comm_init: SimTime::from_secs(1.0),
            comm_teardown: SimTime::from_secs(0.85),
            handle_create: SimTime::from_micros(120.0),
            criu_bw: 1.2e9,
            criu_base: SimTime::from_secs(2.2),
            process_restart: SimTime::from_secs(5.0),
            serialize_overhead: SimTime::from_secs(0.9),
            api_log_overhead: SimTime::from_micros(0.4),
            log_async_residual: 0.05,
            proxy_restart: SimTime::from_secs(1.5),
            replay_dispatch: SimTime::from_micros(4.0),
        }
    }

    /// Calibrated model for an A100 80 GB testbed (4 GPUs/node).
    pub fn a100() -> Self {
        CostModel {
            gpu: GpuGeneration::A100_80G,
            kernel_launch: SimTime::from_micros(5.0),
            pcie_bw: 26e9,
            nvlink_bw: 300e9,
            nic_bw: 25e9,
            disk_bw: 8.0e9,
            tmpfs_bw: 12.0e9,
            remote_bw: 4.0e9,
            coll_latency: SimTime::from_micros(30.0),
            nvlink_latency: SimTime::from_micros(6.0),
            comm_init: SimTime::from_secs(1.1),
            comm_teardown: SimTime::from_secs(0.8),
            handle_create: SimTime::from_micros(100.0),
            criu_bw: 2.0e9,
            criu_base: SimTime::from_secs(1.6),
            process_restart: SimTime::from_secs(3.5),
            serialize_overhead: SimTime::from_secs(0.6),
            api_log_overhead: SimTime::from_micros(0.3),
            log_async_residual: 0.05,
            proxy_restart: SimTime::from_secs(1.2),
            replay_dispatch: SimTime::from_micros(3.0),
        }
    }

    /// Returns the model for a GPU generation.
    pub fn for_gpu(gen: GpuGeneration) -> Self {
        match gen {
            GpuGeneration::V100_32G => Self::v100(),
            GpuGeneration::A100_80G => Self::a100(),
        }
    }

    /// Duration of a compute kernel given its FLOP count.
    pub fn kernel(&self, flops: f64) -> SimTime {
        self.kernel_launch + SimTime::from_secs(flops / self.gpu.flops_per_sec())
    }

    /// Duration of a host↔device memcpy of `bytes`.
    pub fn memcpy(&self, bytes: u64) -> SimTime {
        SimTime::from_micros(8.0) + SimTime::from_secs(bytes as f64 / self.pcie_bw)
    }

    /// Bandwidth of the bottleneck link for a collective spanning
    /// `n_ranks` with `ranks_per_node` ranks per node.
    fn coll_bottleneck_bw(&self, n_ranks: usize, ranks_per_node: usize) -> f64 {
        if n_ranks <= ranks_per_node {
            self.nvlink_bw
        } else {
            self.nic_bw
        }
    }

    /// Ring all-reduce cost for `bytes` over `n_ranks`.
    ///
    /// Uses the standard 2·(n−1)/n volume factor plus a log-scaled latency
    /// term. Degenerates to zero transfer for a single rank.
    pub fn all_reduce(&self, bytes: u64, n_ranks: usize, ranks_per_node: usize) -> SimTime {
        if n_ranks <= 1 {
            return self.coll_latency;
        }
        let n = n_ranks as f64;
        let bw = self.coll_bottleneck_bw(n_ranks, ranks_per_node);
        let transfer = 2.0 * (n - 1.0) / n * bytes as f64 / bw;
        let alpha = self.coll_latency.as_secs() * (n.log2().ceil().max(1.0));
        SimTime::from_secs(transfer + alpha)
    }

    /// All-gather / reduce-scatter cost (half the all-reduce volume).
    pub fn all_gather(&self, bytes: u64, n_ranks: usize, ranks_per_node: usize) -> SimTime {
        if n_ranks <= 1 {
            return self.coll_latency;
        }
        let n = n_ranks as f64;
        let bw = self.coll_bottleneck_bw(n_ranks, ranks_per_node);
        let transfer = (n - 1.0) / n * bytes as f64 / bw;
        let alpha = self.coll_latency.as_secs() * (n.log2().ceil().max(1.0));
        SimTime::from_secs(transfer + alpha)
    }

    /// Duration of one synchronous step of a chunked ring schedule moving
    /// one `seg_bytes` segment per rank. Every rank sends simultaneously,
    /// so the step takes as long as its slowest hop: an inter-node (NIC)
    /// hop if the ring crosses a node boundary, an NVLink hop otherwise.
    fn ring_step_secs(&self, seg_bytes: f64, crosses_nodes: bool) -> f64 {
        let (bw, lat) = if crosses_nodes {
            (self.nic_bw, self.coll_latency)
        } else {
            (self.nvlink_bw, self.nvlink_latency)
        };
        lat.as_secs() + seg_bytes / bw
    }

    /// Chunked ring all-reduce (reduce-scatter then all-gather) of `bytes`
    /// over `n_ranks`, where `inter_hops` of the ring's hops cross a node
    /// boundary (0 means the whole ring rides NVLink).
    ///
    /// Unlike the flat [`CostModel::all_reduce`] charge, the latency term
    /// reflects the actual 2·(n−1) ring steps, each gated by the slowest
    /// link class present in the ring — so a ring spanning nodes pays
    /// linear-in-n NIC hop latencies, while an intra-node ring pays much
    /// cheaper NVLink hops. The bandwidth term is the usual 2·(n−1)/n
    /// volume through the bottleneck link.
    pub fn ring_all_reduce(&self, bytes: u64, n_ranks: usize, inter_hops: usize) -> SimTime {
        if n_ranks <= 1 {
            return self.coll_latency;
        }
        let n = n_ranks as f64;
        let steps = 2.0 * (n - 1.0);
        SimTime::from_secs(steps * self.ring_step_secs(bytes as f64 / n, inter_hops > 0))
    }

    /// Chunked ring all-gather / reduce-scatter / broadcast cost: n−1 ring
    /// steps (half the all-reduce volume).
    pub fn ring_all_gather(&self, bytes: u64, n_ranks: usize, inter_hops: usize) -> SimTime {
        if n_ranks <= 1 {
            return self.coll_latency;
        }
        let n = n_ranks as f64;
        let steps = n - 1.0;
        SimTime::from_secs(steps * self.ring_step_secs(bytes as f64 / n, inter_hops > 0))
    }

    /// Two-level hierarchical all-reduce of `bytes` over nodes holding
    /// `node_sizes[i]` ranks each: reduce-scatter on each intra-node ring
    /// (NVLink hops), a ring all-reduce across one leader per node (NIC
    /// hops), then an intra-node all-gather.
    ///
    /// With `m = max(node_sizes)` and `k` nodes, the schedule is
    /// `2·(m−1)` NVLink steps of `B/m` plus `2·(k−1)` NIC steps of `B/k`.
    /// The NIC *bandwidth* term matches the flat ring's (the same bytes
    /// cross the same links), but the NIC *latency* term collapses from
    /// `2·(n−1)` hops to `2·(k−1)` — the whole point of the hierarchy at
    /// multi-node scale, where the flat ring's per-hop α dominates.
    /// Degenerates to the pure-NVLink flat ring on a single node.
    pub fn hier_all_reduce(&self, bytes: u64, node_sizes: &[usize]) -> SimTime {
        let n: usize = node_sizes.iter().sum();
        if n <= 1 {
            return self.coll_latency;
        }
        let k = node_sizes.iter().filter(|s| **s > 0).count();
        let m = node_sizes.iter().copied().max().unwrap_or(1).max(1);
        let mut secs = 0.0;
        if m > 1 {
            // Intra-node reduce-scatter + all-gather phases.
            secs += 2.0 * (m as f64 - 1.0) * self.ring_step_secs(bytes as f64 / m as f64, false);
        }
        if k > 1 {
            // Leader ring all-reduce across nodes.
            secs += 2.0 * (k as f64 - 1.0) * self.ring_step_secs(bytes as f64 / k as f64, true);
        }
        SimTime::from_secs(secs)
    }

    /// Hierarchical all-gather / reduce-scatter / broadcast cost: half
    /// the all-reduce schedule — `(m−1)` NVLink steps of `B/m` plus
    /// `(k−1)` NIC steps of `B/k`.
    pub fn hier_all_gather(&self, bytes: u64, node_sizes: &[usize]) -> SimTime {
        let n: usize = node_sizes.iter().sum();
        if n <= 1 {
            return self.coll_latency;
        }
        let k = node_sizes.iter().filter(|s| **s > 0).count();
        let m = node_sizes.iter().copied().max().unwrap_or(1).max(1);
        let mut secs = 0.0;
        if m > 1 {
            secs += (m as f64 - 1.0) * self.ring_step_secs(bytes as f64 / m as f64, false);
        }
        if k > 1 {
            secs += (k as f64 - 1.0) * self.ring_step_secs(bytes as f64 / k as f64, true);
        }
        SimTime::from_secs(secs)
    }

    /// CPU-side cost to CRC-frame one recovery-stream shard of `bytes`
    /// (a host-memory pass over the payload).
    pub fn shard_encode(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.tmpfs_bw)
    }

    /// Point-to-point transfer cost (pipeline activations, replica state
    /// copies). Chooses NVLink within a node, NIC across nodes.
    pub fn p2p(&self, bytes: u64, same_node: bool) -> SimTime {
        let bw = if same_node {
            self.nvlink_bw
        } else {
            self.nic_bw
        };
        self.coll_latency + SimTime::from_secs(bytes as f64 / bw)
    }

    /// Storage-tier write bandwidth per node.
    pub fn tier_bw(&self, tier: StorageTier) -> f64 {
        match tier {
            StorageTier::Disk => self.disk_bw,
            StorageTier::HostMemory => self.tmpfs_bw,
            StorageTier::RemoteBlob => self.remote_bw,
        }
    }

    /// Time for one rank to write a checkpoint of `bytes` to `tier`, when
    /// `ranks_per_node` ranks write concurrently through the same node.
    ///
    /// Includes the GPU→host copy (PCIe) and the fixed serialization
    /// overhead; the node storage bandwidth is divided among the writers.
    pub fn checkpoint_write(
        &self,
        bytes: u64,
        tier: StorageTier,
        ranks_per_node: usize,
    ) -> SimTime {
        let share = self.tier_bw(tier) / ranks_per_node.max(1) as f64;
        let d2h = bytes as f64 / self.pcie_bw;
        let store = bytes as f64 / share;
        self.serialize_overhead + SimTime::from_secs(d2h.max(0.0) + store)
    }

    /// Time for one rank to read a checkpoint of `bytes` from `tier`.
    pub fn checkpoint_read(&self, bytes: u64, tier: StorageTier, ranks_per_node: usize) -> SimTime {
        let share = self.tier_bw(tier) / ranks_per_node.max(1) as f64;
        let h2d = bytes as f64 / self.pcie_bw;
        SimTime::from_secs(bytes as f64 / share + h2d)
    }

    /// Snapshot-only cost (GPU→host copy while GPU stays paused); used by
    /// CheckFreq-style pipelined checkpointing for the stalled portion.
    pub fn snapshot_to_host(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.pcie_bw)
    }

    /// Cost of a CRIU-style CPU process checkpoint or restore of
    /// `cpu_state_bytes`.
    pub fn criu(&self, cpu_state_bytes: u64) -> SimTime {
        self.criu_base + SimTime::from_secs(cpu_state_bytes as f64 / self.criu_bw)
    }

    /// Effective charged per-call logging cost after async overlap.
    pub fn effective_log_overhead(&self) -> SimTime {
        SimTime::from_secs(self.api_log_overhead.as_secs() * self.log_async_residual)
    }

    /// Rendezvous time to (re)create `n_comms` communicators.
    pub fn comm_init_time(&self, n_comms: usize) -> SimTime {
        SimTime::from_secs(self.comm_init.as_secs() * n_comms as f64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_checkpoint_write_matches_paper_ballpark() {
        // BERT-L-PT: 0.334 B params × 14 B/param ≈ 4.7 GB per rank on an
        // 8-GPU node; the paper measures 5.0 s (Table 4).
        let cm = CostModel::v100();
        let bytes = (0.334e9 * 14.0) as u64;
        let t = cm.checkpoint_write(bytes, StorageTier::Disk, 8).as_secs();
        assert!((3.0..8.0).contains(&t), "got {t}");
    }

    #[test]
    fn all_reduce_scales_with_ranks_and_bytes() {
        let cm = CostModel::v100();
        let small = cm.all_reduce(1 << 20, 8, 8);
        let large = cm.all_reduce(1 << 30, 8, 8);
        assert!(large > small);
        let intra = cm.all_reduce(1 << 30, 8, 8);
        let inter = cm.all_reduce(1 << 30, 16, 8);
        assert!(inter > intra, "crossing nodes must be slower");
    }

    #[test]
    fn ring_cost_tracks_link_classes() {
        let cm = CostModel::v100();
        // An all-NVLink ring is cheaper than one crossing nodes.
        let intra = cm.ring_all_reduce(1 << 30, 8, 0);
        let inter = cm.ring_all_reduce(1 << 30, 8, 2);
        assert!(intra < inter, "NIC hops must dominate the ring step");
        // Hop latency scales linearly with ring length, unlike the flat
        // log-scaled charge.
        let lat_small = cm.ring_all_reduce(0, 4, 1).as_secs();
        let lat_big = cm.ring_all_reduce(0, 16, 1).as_secs();
        assert!((lat_big / lat_small - 5.0).abs() < 1e-9, "2(n-1) steps");
        // At large payloads the ring converges to the classic 2(n-1)/n
        // volume through the bottleneck link (the flat model's bw term).
        let flat = cm.all_reduce(1 << 30, 16, 8).as_secs();
        let ring = cm.ring_all_reduce(1 << 30, 16, 2).as_secs();
        assert!((ring / flat - 1.0).abs() < 0.05, "ring {ring} flat {flat}");
        // Single rank degenerates like the flat model.
        assert_eq!(cm.ring_all_reduce(1 << 30, 1, 0), cm.coll_latency);
        // All-gather is n-1 steps, half the all-reduce schedule.
        let ag = cm.ring_all_gather(1 << 30, 8, 1).as_secs();
        let ar = cm.ring_all_reduce(1 << 30, 8, 1).as_secs();
        assert!((ar / ag - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hier_cost_beats_flat_ring_at_multi_node_scale() {
        let cm = CostModel::v100();
        let payload = 4 << 20; // the gradient-bucket case
        for nodes in [2usize, 8, 32, 128, 256] {
            let node_sizes = vec![8usize; nodes];
            let world = nodes * 8;
            let flat = cm.ring_all_reduce(payload, world, 2).as_secs();
            let hier = cm.hier_all_reduce(payload, &node_sizes).as_secs();
            assert!(
                hier < flat,
                "hier must beat the flat ring at {world} ranks: {hier} vs {flat}"
            );
        }
        // At world 2048 the flat ring's 2·(n−1) NIC α term dominates;
        // the hierarchy collapses it to 2·(k−1).
        let flat = cm.ring_all_reduce(payload, 2048, 2).as_secs();
        let hier = cm.hier_all_reduce(payload, &vec![8usize; 256]).as_secs();
        assert!(flat / hier > 5.0, "flat {flat} hier {hier}");
    }

    #[test]
    fn hier_cost_degenerates_on_a_single_node() {
        let cm = CostModel::v100();
        // One node: the hier schedule *is* the pure-NVLink flat ring.
        assert_eq!(
            cm.hier_all_reduce(1 << 20, &[8]),
            cm.ring_all_reduce(1 << 20, 8, 0)
        );
        assert_eq!(
            cm.hier_all_gather(1 << 20, &[8]),
            cm.ring_all_gather(1 << 20, 8, 0)
        );
        // One rank per node: pure inter-node leader ring.
        assert_eq!(
            cm.hier_all_reduce(1 << 20, &[1, 1, 1, 1]),
            cm.ring_all_reduce(1 << 20, 4, 4)
        );
        // Single rank degenerates like the flat model.
        assert_eq!(cm.hier_all_reduce(1 << 30, &[1]), cm.coll_latency);
        assert_eq!(cm.hier_all_gather(1 << 30, &[1]), cm.coll_latency);
    }

    #[test]
    fn hier_all_gather_is_half_the_all_reduce_schedule() {
        let cm = CostModel::v100();
        let sizes = vec![8usize; 4];
        let ar = cm.hier_all_reduce(1 << 24, &sizes).as_secs();
        let ag = cm.hier_all_gather(1 << 24, &sizes).as_secs();
        assert!((ar / ag - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_collective_is_latency_only() {
        let cm = CostModel::v100();
        assert_eq!(cm.all_reduce(1 << 30, 1, 8), cm.coll_latency);
        assert_eq!(cm.all_gather(1 << 30, 1, 8), cm.coll_latency);
    }

    #[test]
    fn comm_init_dominates_transient_recovery_shape() {
        // Table 7: recreating NCCL communicators is ~1 s per communicator.
        let cm = CostModel::v100();
        let t = cm.comm_init_time(8).as_secs();
        assert!((7.0..10.0).contains(&t));
    }

    #[test]
    fn host_memory_faster_than_disk_faster_than_blob() {
        let cm = CostModel::v100();
        let b = 4 << 30;
        let mem = cm.checkpoint_write(b, StorageTier::HostMemory, 8);
        let disk = cm.checkpoint_write(b, StorageTier::Disk, 8);
        let blob = cm.checkpoint_write(b, StorageTier::RemoteBlob, 8);
        assert!(mem < disk && disk < blob);
    }

    #[test]
    fn a100_is_faster_than_v100() {
        let v = CostModel::v100();
        let a = CostModel::a100();
        assert!(a.kernel(1e12) < v.kernel(1e12));
        assert!(a.memcpy(1 << 30) < v.memcpy(1 << 30));
    }

    #[test]
    fn gpu_generation_properties() {
        assert_eq!(GpuGeneration::V100_32G.gpus_per_node(), 8);
        assert_eq!(GpuGeneration::A100_80G.gpus_per_node(), 4);
        assert!(GpuGeneration::A100_80G.memory_bytes() > GpuGeneration::V100_32G.memory_bytes());
    }
}

//! Bounded fan-out worker pool.
//!
//! One shared pattern serves every CPU-parallel stage of the pipeline:
//! the checkpoint writer fans shard encode/CRC/put work out across
//! threads, and the proxy's recovery path fans replay-log decode out
//! across per-stream lanes. Both need the same guarantees:
//!
//! * **bounded**: at most `workers` OS threads, scoped to the call (no
//!   detached threads, no global pool to poison);
//! * **lossless under spawn failure**: the calling thread always runs
//!   the worker loop itself, so a failed `spawn_scoped` degrades to less
//!   parallelism, never to lost work items;
//! * **complete**: a shared atomic cursor hands out each index exactly
//!   once, and `thread::scope` joins everything before returning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work(i)` for every `i in 0..n` across at most `workers` threads
/// (including the calling thread). Returns after all items complete.
///
/// `work` must be safe to call concurrently from multiple threads;
/// per-item results should be written to index-addressed slots (e.g. a
/// `Mutex<Vec<Option<T>>>`) so no ordering is lost.
pub fn fan_out<F>(n: usize, workers: usize, name_prefix: &str, work: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let next = AtomicUsize::new(0);
    let run = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        work(i);
    };
    let pool = workers.clamp(1, n);
    std::thread::scope(|s| {
        let run = &run;
        for w in 1..pool {
            let _ = std::thread::Builder::new()
                .name(format!("{name_prefix}-w{w}"))
                .spawn_scoped(s, run);
        }
        run();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        fan_out(1000, 4, "test", |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_items_is_a_no_op() {
        fan_out(0, 4, "test", |_| unreachable!("no items to hand out"));
    }

    #[test]
    fn single_worker_runs_on_calling_thread() {
        let tid = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        fan_out(8, 1, "test", |i| {
            assert_eq!(std::thread::current().id(), tid);
            seen.lock().push(i);
        });
        let mut got = seen.into_inner();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn results_land_in_index_addressed_slots() {
        let out: Mutex<Vec<Option<usize>>> = Mutex::new(vec![None; 100]);
        fan_out(100, 8, "test", |i| {
            out.lock()[i] = Some(i * i);
        });
        let got = out.into_inner();
        assert!(got.iter().enumerate().all(|(i, v)| *v == Some(i * i)));
    }
}

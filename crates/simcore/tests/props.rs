//! Property-based tests for the simulation core: codec round-trips under
//! arbitrary inputs, corruption detection, analysis-grade math helpers,
//! clock monotonicity, and layout bijectivity.

use proptest::prelude::*;
use simcore::codec::{decode_framed, encode_framed, f32_checksum};
use simcore::layout::ParallelLayout;
use simcore::rng::DetRng;
use simcore::time::{ClockBoard, SimTime};
use simcore::RankId;

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_f32_vectors(data in proptest::collection::vec(any::<f32>(), 0..512)) {
        let framed = encode_framed(&data);
        let back: Vec<f32> = decode_framed(&framed).unwrap();
        // Compare bit patterns (NaN-safe).
        prop_assert_eq!(data.len(), back.len());
        for (a, b) in data.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_round_trips_nested_structures(
        pairs in proptest::collection::vec((".*", proptest::collection::vec(any::<u64>(), 0..16)), 0..8)
    ) {
        let framed = encode_framed(&pairs);
        let back: Vec<(String, Vec<u64>)> = decode_framed(&framed).unwrap();
        prop_assert_eq!(back, pairs);
    }

    #[test]
    fn any_single_byte_flip_is_detected(
        data in proptest::collection::vec(any::<u64>(), 1..64),
        idx in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let framed = encode_framed(&data);
        let mut bad = framed.to_vec();
        let i = idx.index(bad.len());
        bad[i] ^= 1 << bit;
        // Either the magic, length, payload, or CRC broke — never a clean
        // decode of different data.
        let res: Result<Vec<u64>, _> = decode_framed(&bytes::Bytes::from(bad));
        match res {
            Err(_) => {}
            Ok(v) => prop_assert_eq!(v, data, "silent corruption"),
        }
    }

    #[test]
    fn checksum_detects_any_single_element_change(
        data in proptest::collection::vec(-1e6f32..1e6, 1..256),
        idx in any::<proptest::sample::Index>(),
    ) {
        let mut other = data.clone();
        let i = idx.index(other.len());
        other[i] = f32::from_bits(other[i].to_bits() ^ 1);
        prop_assert_ne!(f32_checksum(&data), f32_checksum(&other));
    }

    #[test]
    fn crc64_table_driven_equals_bitwise_reference(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // The slice-by-8 implementation must be bit-identical to the
        // seed's bit-at-a-time form on arbitrary inputs and lengths
        // (including lengths straddling the 8-byte fold boundary).
        prop_assert_eq!(
            simcore::codec::crc64(&data),
            simcore::codec::crc64_bitwise(&data)
        );
    }

    #[test]
    fn sharded_encoder_stream_equals_flat_encode(
        data in proptest::collection::vec(any::<u64>(), 0..256),
        tail in ".*",
        shard_size in 1usize..512,
    ) {
        use simcore::codec::Encode;
        let mut flat = bytes::BytesMut::new();
        data.encode(&mut flat);
        tail.encode(&mut flat);
        let mut enc = simcore::codec::Encoder::new(shard_size);
        enc.write(&data);
        enc.write(&tail);
        let shards = enc.finish();
        let stream = simcore::codec::split_shards(&simcore::codec::concat_shards(&shards)).unwrap();
        prop_assert_eq!(&stream[..], &flat[..]);
        // Shard framing is exact: every non-final payload is shard_size.
        for s in &shards[..shards.len() - 1] {
            prop_assert_eq!(s.len(), shard_size + simcore::codec::SHARD_FRAME_OVERHEAD);
        }
    }

    #[test]
    fn det_rng_state_resume_is_exact(seed in any::<u64>(), skip in 0usize..64, take in 1usize..64) {
        let mut r = DetRng::new(seed);
        for _ in 0..skip { r.next_u64(); }
        let snap = r.state();
        let ahead: Vec<u64> = (0..take).map(|_| r.next_u64()).collect();
        let mut resumed = DetRng::from_state(snap);
        let replay: Vec<u64> = (0..take).map(|_| resumed.next_u64()).collect();
        prop_assert_eq!(ahead, replay);
    }

    #[test]
    fn clock_advance_is_monotone(steps in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let b = ClockBoard::new(1);
        let mut last = 0.0;
        for s in steps {
            let t = b.advance(0, SimTime::from_secs(s));
            prop_assert!(t.as_secs() >= last);
            last = t.as_secs();
        }
    }

    #[test]
    fn barrier_sync_never_rewinds_any_clock(
        starts in proptest::collection::vec(0.0f64..1000.0, 2..8),
        cost in 0.0f64..10.0,
    ) {
        let n = starts.len();
        let b = ClockBoard::new(n);
        for (i, s) in starts.iter().enumerate() {
            b.raise_to(i, SimTime::from_secs(*s));
        }
        let idxs: Vec<usize> = (0..n).collect();
        let t = b.barrier_sync(&idxs, SimTime::from_secs(cost));
        let max = starts.iter().fold(0.0f64, |a, b| a.max(*b));
        prop_assert!((t.as_secs() - (max + cost)).abs() < 1e-9);
        for (i, s) in starts.iter().enumerate() {
            prop_assert!(b.now(i).as_secs() >= *s);
        }
    }

    #[test]
    fn layout_coord_rank_bijection(dp in 1usize..5, pp in 1usize..5, tp in 1usize..5) {
        let l = ParallelLayout::three_d(dp, pp, tp);
        for r in 0..l.world_size() {
            let rank = RankId(r as u32);
            let c = l.coord(rank);
            prop_assert_eq!(l.rank_at(c), rank);
        }
        // dp groups partition the world per (stage, part) cell.
        let mut seen = std::collections::HashSet::new();
        for (stage, part) in l.cells() {
            let g = l.dp_group_of(l.rank_at(simcore::layout::GridCoord { dp: 0, stage, part }));
            prop_assert_eq!(g.len(), dp);
            for r in g {
                prop_assert!(seen.insert(r), "cells must not overlap");
            }
        }
        prop_assert_eq!(seen.len(), l.world_size());
    }

    #[test]
    fn optimal_frequency_beats_any_other(
        o in 0.1f64..60.0,
        f_day in 1e-4f64..0.1,
        n in 1usize..10_000,
        scale in 0.05f64..20.0,
    ) {
        // c* from eq. 3 minimizes eq. 1 over the positive axis.
        use simcore::failure::FailureRate;
        let f = FailureRate::per_gpu_per_day(f_day).per_gpu_per_sec;
        let c_star = (n as f64 * f / (2.0 * o)).sqrt();
        let w = |c: f64| c * o + n as f64 * f / (2.0 * c);
        prop_assert!(w(c_star) <= w(c_star * scale) + 1e-12);
    }
}

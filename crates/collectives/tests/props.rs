//! Property-based tests for the collective layer: reduction correctness
//! against sequential reference computation, idempotent re-delivery, and
//! determinism across rank arrival orders.

use collectives::{CommWorld, NullObserver, ReduceOp};
use proptest::prelude::*;
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::RankId;
use std::sync::Arc;

fn run_ranks<T: Send + 'static>(
    n: usize,
    f: impl Fn(usize) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let f = f.clone();
            std::thread::spawn(move || f(i))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_reduce_sum_matches_sequential_reference(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 4),
            2..5,
        )
    ) {
        let n = rows.len();
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        // Sequential reference with the same (rank-ordered) summation.
        let mut expect = rows[0].clone();
        for r in &rows[1..] {
            for (a, b) in expect.iter_mut().zip(r) {
                *a += b;
            }
        }
        let rows2 = rows.clone();
        let results = run_ranks(n, move |i| {
            comm.all_reduce(RankId(i as u32), 0, rows2[i].clone(), ReduceOp::Sum, 16, &NullObserver)
                .unwrap()
        });
        for r in results {
            prop_assert_eq!(&r, &expect, "bit-exact rank-ordered sum");
        }
    }

    #[test]
    fn all_gather_preserves_rank_order_regardless_of_arrival(
        n in 2usize..5,
        stagger in proptest::collection::vec(0u64..5, 5),
    ) {
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        let stagger = Arc::new(stagger);
        let results = run_ranks(n, move |i| {
            std::thread::sleep(std::time::Duration::from_millis(stagger[i % stagger.len()]));
            comm.all_gather(RankId(i as u32), 0, vec![i as f32], 4, &NullObserver).unwrap()
        });
        let expect: Vec<f32> = (0..n).map(|i| i as f32).collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn reduce_scatter_shards_recompose_the_reduction(
        n in 2usize..5,
        base in proptest::collection::vec(-50.0f32..50.0, 8),
    ) {
        let len = (base.len() / n) * n;
        prop_assume!(len > 0);
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        let contributions: Vec<Vec<f32>> = (0..n)
            .map(|i| base[..len].iter().map(|v| v + i as f32).collect())
            .collect();
        let mut expect = vec![0.0f32; len];
        for c in &contributions {
            for (a, b) in expect.iter_mut().zip(c) {
                *a += b;
            }
        }
        let contributions = Arc::new(contributions);
        let shards = run_ranks(n, move |i| {
            comm.reduce_scatter(
                RankId(i as u32), 0, contributions[i].clone(), ReduceOp::Sum, 16, &NullObserver,
            ).unwrap()
        });
        let recomposed: Vec<f32> = shards.concat();
        prop_assert_eq!(recomposed, expect);
    }

    #[test]
    fn completed_collectives_are_served_idempotently(
        vals in proptest::collection::vec(-10.0f32..10.0, 2),
    ) {
        // A rank re-issuing a completed generation (replay) gets the
        // cached result instantly without peers re-participating.
        let n = 2;
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm(vec![RankId(0), RankId(1)], vec![0, 1]);
        let vals2 = vals.clone();
        let c2 = comm.clone();
        let first = run_ranks(n, move |i| {
            c2.all_reduce(RankId(i as u32), 0, vec![vals2[i]], ReduceOp::Sum, 4, &NullObserver)
                .unwrap()
        });
        // Replay on rank 0 only.
        let replay = comm
            .all_reduce(RankId(0), 0, vec![vals[0]], ReduceOp::Sum, 4, &NullObserver)
            .unwrap();
        prop_assert_eq!(&replay, &first[0]);
        prop_assert_eq!(comm.completed_slots(), 1);
    }

    #[test]
    fn mailbox_is_idempotent_and_seq_addressed(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<f32>(), 1..8), 1..6)
    ) {
        let clock = Arc::new(ClockBoard::new(2));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        for (seq, m) in msgs.iter().enumerate() {
            world.send(RankId(0), 0, RankId(1), 9, seq as u64, m.clone(), 16, true).unwrap();
        }
        // Receive out of order, twice each.
        for (seq, m) in msgs.iter().enumerate().rev() {
            for _ in 0..2 {
                let got = world.recv(RankId(0), RankId(1), 1, 9, seq as u64).unwrap();
                prop_assert_eq!(got.len(), m.len());
                for (a, b) in got.iter().zip(m) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}

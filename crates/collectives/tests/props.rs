//! Property-based tests for the collective layer: reduction correctness
//! against sequential reference computation, idempotent re-delivery,
//! determinism across rank arrival orders, and the in-network gradient
//! ledger's reconstruction guarantee.

use collectives::ledger::reconstruct_member_output;
use collectives::{
    CollEngine, CommWorld, GradLedger, LedgerConfig, NullObserver, ReduceOp, RingConfig,
};
use proptest::prelude::*;
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::RankId;
use std::sync::Arc;

fn run_ranks<T: Send + 'static>(
    n: usize,
    f: impl Fn(usize) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let f = f.clone();
            std::thread::spawn(move || f(i))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Runs the full collective suite (all-reduce, all-gather, broadcast,
/// and — when the payload divides evenly — reduce-scatter) on a fresh
/// world under the given data-plane engine, returning each rank's
/// outputs in operation order.
fn run_suite(rows: Arc<Vec<Vec<f32>>>, op: ReduceOp, engine: CollEngine) -> Vec<Vec<Vec<f32>>> {
    run_suite_topo(rows, op, engine, None)
}

/// `run_suite` with an explicit node assignment (`node_of[i]` = node of
/// rank `i`), exercising engines under arbitrary — including scattered —
/// placements.
fn run_suite_topo(
    rows: Arc<Vec<Vec<f32>>>,
    op: ReduceOp,
    engine: CollEngine,
    node_of: Option<Vec<usize>>,
) -> Vec<Vec<Vec<f32>>> {
    let n = rows.len();
    let rs_len = (rows[0].len() / n) * n;
    let clock = Arc::new(ClockBoard::new(n));
    let world = CommWorld::new(clock, CostModel::v100(), 8);
    let mut comm = world
        .create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect())
        .set_engine(engine);
    if let Some(node_of) = node_of {
        comm = comm.set_topology(node_of);
    }
    run_ranks(n, move |i| {
        let rank = RankId(i as u32);
        let root = RankId((n - 1) as u32);
        let mut out = Vec::new();
        out.push(
            comm.all_reduce(rank, 0, rows[i].clone(), op, 64, &NullObserver)
                .unwrap(),
        );
        out.push(
            comm.all_gather(rank, 1, rows[i].clone(), 64, &NullObserver)
                .unwrap(),
        );
        let payload = (rank == root).then(|| rows[i].clone());
        out.push(
            comm.broadcast(rank, 2, root, payload, 64, &NullObserver)
                .unwrap(),
        );
        if rs_len > 0 {
            out.push(
                comm.reduce_scatter(rank, 3, rows[i][..rs_len].to_vec(), op, 64, &NullObserver)
                    .unwrap(),
            );
        }
        out
    })
}

/// `run_suite_topo` with a [`GradLedger`] attached to every member
/// before any collective runs, returning each rank's outputs and its
/// ledger.
fn run_suite_ledgers(
    rows: Arc<Vec<Vec<f32>>>,
    op: ReduceOp,
    engine: CollEngine,
    node_of: Option<Vec<usize>>,
    ledger_cfg: LedgerConfig,
) -> (Vec<Vec<Vec<f32>>>, Vec<Arc<GradLedger>>) {
    let n = rows.len();
    let rs_len = (rows[0].len() / n) * n;
    let clock = Arc::new(ClockBoard::new(n));
    let world = CommWorld::new(clock, CostModel::v100(), 8);
    let mut comm = world
        .create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect())
        .set_engine(engine);
    if let Some(node_of) = node_of {
        comm = comm.set_topology(node_of);
    }
    let ledgers: Vec<Arc<GradLedger>> = (0..n)
        .map(|i| {
            let l = GradLedger::new(ledger_cfg);
            comm.attach_ledger(RankId(i as u32), l.clone()).unwrap();
            l
        })
        .collect();
    let outs = run_ranks(n, move |i| {
        let rank = RankId(i as u32);
        let root = RankId((n - 1) as u32);
        let mut out = Vec::new();
        out.push(
            comm.all_reduce(rank, 0, rows[i].clone(), op, 64, &NullObserver)
                .unwrap(),
        );
        out.push(
            comm.all_gather(rank, 1, rows[i].clone(), 64, &NullObserver)
                .unwrap(),
        );
        let payload = (rank == root).then(|| rows[i].clone());
        out.push(
            comm.broadcast(rank, 2, root, payload, 64, &NullObserver)
                .unwrap(),
        );
        if rs_len > 0 {
            out.push(
                comm.reduce_scatter(rank, 3, rows[i][..rs_len].to_vec(), op, 64, &NullObserver)
                    .unwrap(),
            );
        }
        out
    });
    (outs, ledgers)
}

fn to_bits(results: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<u32>>> {
    results
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_engine_is_bit_identical_to_slot_reference(
        rows in (1usize..97).prop_flat_map(|len| proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, len),
            2..6,
        )),
        // Chunk sizes from degenerate (1 byte → 1 element) through
        // non-aligned to larger-than-payload, so partial trailing
        // chunks and the single-chunk fast case are all exercised.
        chunk_bytes in 1usize..600,
        op in prop::sample::select(vec![ReduceOp::Sum, ReduceOp::Avg, ReduceOp::Max]),
        workers in 1usize..4,
    ) {
        let rows = Arc::new(rows);
        let slot = run_suite(rows.clone(), op, CollEngine::Slot);
        let ring = run_suite(
            rows,
            op,
            CollEngine::Ring(RingConfig::uniform(chunk_bytes, workers)),
        );
        prop_assert_eq!(
            to_bits(&slot),
            to_bits(&ring),
            "chunked ring output must be bit-identical to the slot reference"
        );
    }

    #[test]
    fn hier_engine_is_bit_identical_under_random_placement(
        // Worlds 2..=6 cover non-power-of-two sizes; node ids drawn from
        // a tiny pool give single-node-degenerate, scattered, and uneven
        // groupings (the hierarchy is a cost schedule, never arithmetic,
        // so every placement must reduce identically).
        (rows, node_of) in (2usize..7).prop_flat_map(|n| (
            (1usize..97).prop_flat_map(move |len| proptest::collection::vec(
                proptest::collection::vec(-100.0f32..100.0, len),
                n,
            )),
            proptest::collection::vec(0usize..3, n),
        )),
        chunk_bytes in 1usize..600,
        op in prop::sample::select(vec![ReduceOp::Sum, ReduceOp::Avg, ReduceOp::Max]),
        workers in 1usize..4,
    ) {
        let rows = Arc::new(rows);
        let slot = run_suite(rows.clone(), op, CollEngine::Slot);
        let hier = run_suite_topo(
            rows.clone(),
            op,
            CollEngine::Hier(RingConfig::uniform(chunk_bytes, workers)),
            Some(node_of.clone()),
        );
        prop_assert_eq!(
            to_bits(&slot),
            to_bits(&hier),
            "hier output must be bit-identical to the slot reference"
        );
        let ring = run_suite_topo(
            rows,
            op,
            CollEngine::Ring(RingConfig::uniform(chunk_bytes.max(7), workers)),
            Some(node_of),
        );
        prop_assert_eq!(
            to_bits(&hier),
            to_bits(&ring),
            "hier and ring engines must agree bitwise under the same placement"
        );
    }

    #[test]
    fn all_reduce_sum_matches_sequential_reference(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 4),
            2..5,
        )
    ) {
        let n = rows.len();
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        // Sequential reference with the same (rank-ordered) summation.
        let mut expect = rows[0].clone();
        for r in &rows[1..] {
            for (a, b) in expect.iter_mut().zip(r) {
                *a += b;
            }
        }
        let rows2 = rows.clone();
        let results = run_ranks(n, move |i| {
            comm.all_reduce(RankId(i as u32), 0, rows2[i].clone(), ReduceOp::Sum, 16, &NullObserver)
                .unwrap()
        });
        for r in results {
            prop_assert_eq!(&r, &expect, "bit-exact rank-ordered sum");
        }
    }

    #[test]
    fn all_gather_preserves_rank_order_regardless_of_arrival(
        n in 2usize..5,
        stagger in proptest::collection::vec(0u64..5, 5),
    ) {
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        let stagger = Arc::new(stagger);
        let results = run_ranks(n, move |i| {
            std::thread::sleep(std::time::Duration::from_millis(stagger[i % stagger.len()]));
            comm.all_gather(RankId(i as u32), 0, vec![i as f32], 4, &NullObserver).unwrap()
        });
        let expect: Vec<f32> = (0..n).map(|i| i as f32).collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn reduce_scatter_shards_recompose_the_reduction(
        n in 2usize..5,
        base in proptest::collection::vec(-50.0f32..50.0, 8),
    ) {
        let len = (base.len() / n) * n;
        prop_assume!(len > 0);
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        let contributions: Vec<Vec<f32>> = (0..n)
            .map(|i| base[..len].iter().map(|v| v + i as f32).collect())
            .collect();
        let mut expect = vec![0.0f32; len];
        for c in &contributions {
            for (a, b) in expect.iter_mut().zip(c) {
                *a += b;
            }
        }
        let contributions = Arc::new(contributions);
        let shards = run_ranks(n, move |i| {
            comm.reduce_scatter(
                RankId(i as u32), 0, contributions[i].clone(), ReduceOp::Sum, 16, &NullObserver,
            ).unwrap()
        });
        let recomposed: Vec<f32> = shards.concat();
        prop_assert_eq!(recomposed, expect);
    }

    #[test]
    fn completed_collectives_are_served_idempotently(
        vals in proptest::collection::vec(-10.0f32..10.0, 2),
    ) {
        // A rank re-issuing a completed generation (replay) gets the
        // cached result instantly without peers re-participating.
        let n = 2;
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm(vec![RankId(0), RankId(1)], vec![0, 1]);
        let vals2 = vals.clone();
        let c2 = comm.clone();
        let first = run_ranks(n, move |i| {
            c2.all_reduce(RankId(i as u32), 0, vec![vals2[i]], ReduceOp::Sum, 4, &NullObserver)
                .unwrap()
        });
        // Replay on rank 0 only.
        let replay = comm
            .all_reduce(RankId(0), 0, vec![vals[0]], ReduceOp::Sum, 4, &NullObserver)
            .unwrap();
        prop_assert_eq!(&replay, &first[0]);
        prop_assert_eq!(comm.completed_slots(), 1);
    }

    #[test]
    fn ledger_reconstructs_lost_member_across_kinds_engines_and_placements(
        // Random world size, payloads, placement, engine, chunking, and
        // victim: after the suite completes, any single member's output
        // for EVERY collective kind must be rebuildable bitwise from the
        // survivors' ledgers alone. Random chunk sizes put shard
        // boundaries mid-chunk; random node maps exercise the hier
        // schedule's tap points.
        (rows, node_of, failed) in (2usize..7).prop_flat_map(|n| (
            (1usize..97).prop_flat_map(move |len| proptest::collection::vec(
                proptest::collection::vec(-100.0f32..100.0, len),
                n,
            )),
            proptest::collection::vec(0usize..3, n),
            0..n,
        )),
        engine_pick in 0usize..3,
        chunk_bytes in 1usize..600,
        op in prop::sample::select(vec![ReduceOp::Sum, ReduceOp::Avg, ReduceOp::Max]),
    ) {
        let engine = match engine_pick {
            0 => CollEngine::Slot,
            1 => CollEngine::Ring(RingConfig::uniform(chunk_bytes, 2)),
            _ => CollEngine::Hier(RingConfig::uniform(chunk_bytes, 2)),
        };
        let rows = Arc::new(rows);
        let (outs, ledgers) = run_suite_ledgers(
            rows.clone(),
            op,
            engine,
            Some(node_of),
            LedgerConfig::unbounded(),
        );
        let mut survivors: Vec<Option<Arc<GradLedger>>> =
            ledgers.into_iter().map(Some).collect();
        survivors[failed] = None;
        // One generation per collective kind, in suite order.
        for (gen, want) in outs[failed].iter().enumerate() {
            let got = reconstruct_member_output(gen as u64, failed, &survivors);
            let got = got.expect("single member loss is always covered");
            let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(
                got_bits, want_bits,
                "gen {} of member {} must reconstruct bitwise", gen, failed
            );
        }
    }

    #[test]
    fn ledger_memory_never_exceeds_its_cap(
        n in 2usize..5,
        lens in proptest::collection::vec(1usize..64, 1..8),
        cap_bytes in 16usize..2048,
    ) {
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world
            .create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        let cfg = LedgerConfig { cap_bytes, epoch_window: u64::MAX };
        let ledgers: Vec<Arc<GradLedger>> = (0..n)
            .map(|i| {
                let l = GradLedger::new(cfg);
                comm.attach_ledger(RankId(i as u32), l.clone()).unwrap();
                l
            })
            .collect();
        let lens = Arc::new(lens);
        let lens2 = lens.clone();
        run_ranks(n, move |i| {
            for (g, &len) in lens2.iter().enumerate() {
                comm.all_reduce(
                    RankId(i as u32), g as u64, vec![i as f32; len],
                    ReduceOp::Sum, 64, &NullObserver,
                ).unwrap();
            }
        });
        for (i, l) in ledgers.iter().enumerate() {
            prop_assert!(
                l.pinned_bytes() <= cap_bytes,
                "member {} pins {} bytes over cap {}", i, l.pinned_bytes(), cap_bytes
            );
        }
    }

    /// Epoch-window eviction under arbitrary interleavings of
    /// `begin_epoch` advances and records, cross-checked against a
    /// straight-line model applying the documented rules: entries
    /// outside `[epoch + 1 - window, epoch]` go at the epoch boundary,
    /// the byte cap evicts FIFO on record, and retained generations
    /// stay in insertion order with exact pinned-byte accounting.
    #[test]
    fn ledger_epoch_window_evicts_exactly_like_the_model(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u64..3).prop_map(Some),        // begin_epoch advance by delta
                Just(None),                      // record one generation
            ],
            1..60,
        ),
        epoch_window in 1u64..4,
        cap_bytes in 64usize..4096,
        members in 2usize..5,
    ) {
        let cfg = LedgerConfig { cap_bytes, epoch_window };
        let ledger = GradLedger::new(cfg);

        // Reference model: (epoch, gen, retained_bytes), front = oldest.
        let mut model: std::collections::VecDeque<(u64, u64, usize)> =
            std::collections::VecDeque::new();
        let mut epoch = 0u64;
        let mut gen = 0u64;

        for op in ops {
            match op {
                Some(delta) => {
                    epoch += delta;
                    ledger.begin_epoch(epoch);
                    let keep_from = (epoch + 1).saturating_sub(epoch_window);
                    while model.front().is_some_and(|&(e, _, _)| e < keep_from) {
                        model.pop_front();
                    }
                }
                None => {
                    let len = 8 + (gen as usize * 7) % 120;
                    let pos = gen as usize % members;
                    ledger.record(
                        gen,
                        collectives::CollKind::AllReduce,
                        pos,
                        members,
                        Arc::new(vec![0.5; len]),
                    );
                    let bytes: usize = collectives::ledger::retained_ranges(len, members, pos)
                        .iter()
                        .map(|r| (r.end - r.start) * 4)
                        .sum();
                    model.push_back((epoch, gen, bytes));
                    let mut pinned: usize = model.iter().map(|&(_, _, b)| b).sum();
                    while pinned > cap_bytes {
                        let Some((_, _, b)) = model.pop_front() else { break };
                        pinned -= b;
                    }
                    gen += 1;
                }
            }

            // Exact agreement with the model after every step.
            let manifest = ledger.manifest();
            let got: Vec<(u64, u64)> = manifest.iter().map(|m| (m.epoch, m.gen)).collect();
            let want: Vec<(u64, u64)> = model.iter().map(|&(e, g, _)| (e, g)).collect();
            prop_assert_eq!(got, want, "retained set diverged from model");
            let want_pinned: usize = model.iter().map(|&(_, _, b)| b).sum();
            prop_assert_eq!(ledger.pinned_bytes(), want_pinned, "pinned accounting");
            prop_assert!(ledger.pinned_bytes() <= cap_bytes);
            // Window invariant: nothing retained from before the window.
            let keep_from = (epoch + 1).saturating_sub(epoch_window);
            prop_assert!(
                manifest.iter().all(|m| m.epoch >= keep_from),
                "entry older than the epoch window survived"
            );
            // FIFO: generations strictly increase front to back.
            prop_assert!(manifest.windows(2).all(|w| w[0].gen < w[1].gen));
        }
    }

    #[test]
    fn mailbox_is_idempotent_and_seq_addressed(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<f32>(), 1..8), 1..6)
    ) {
        let clock = Arc::new(ClockBoard::new(2));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        for (seq, m) in msgs.iter().enumerate() {
            world.send(RankId(0), 0, RankId(1), 9, seq as u64, m.clone(), 16, true).unwrap();
        }
        // Receive out of order, twice each.
        for (seq, m) in msgs.iter().enumerate().rev() {
            for _ in 0..2 {
                let got = world.recv(RankId(0), RankId(1), 1, 9, seq as u64).unwrap();
                prop_assert_eq!(got.len(), m.len());
                for (a, b) in got.iter().zip(m) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}

//! The process-wide communicator registry and point-to-point transport.
//!
//! [`CommWorld`] plays the role of the NCCL bootstrap service plus the
//! framework's process group registry: it creates communicators (each
//! creation is a costed rendezvous), tracks the live set (Table 7's
//! "recreate NCCL communicators" step is `live_comms() × comm_init`), and
//! provides the send/recv mailboxes that pipeline parallelism uses for
//! activations and gradients.
//!
//! Job teardown during recovery calls [`CommWorld::abort_all`], which is
//! the `ncclCommAbort`-on-everything step that releases every rank parked
//! in a hung collective.

use crate::comm::Communicator;
use bytes::Bytes;
use simcore::cost::CostModel;
use simcore::sync::{Condvar, Mutex};
use simcore::time::ClockBoard;
use simcore::{RankId, SimError, SimResult, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Communicator handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

impl fmt::Display for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comm{}", self.0)
    }
}

type MailKey = (RankId, RankId, u64, u64); // (src, dst, tag, seq)

struct Message {
    data: Vec<f32>,
    /// Virtual time at which the message is available at the receiver.
    available_at: SimTime,
}

/// A CRC-framed shard in flight on the recovery-stream path. `Bytes` makes
/// idempotent re-delivery a refcount bump, not a payload copy.
struct ByteMessage {
    frame: Bytes,
    available_at: SimTime,
}

#[derive(Default)]
struct MailState {
    inbox: HashMap<MailKey, Message>,
    byte_inbox: HashMap<MailKey, ByteMessage>,
    /// Threads currently parked in [`CommWorld::recv`] /
    /// [`CommWorld::recv_bytes`].
    waiters: usize,
}

/// Registry of communicators plus p2p mailboxes for one job.
pub struct CommWorld {
    clock: Arc<ClockBoard>,
    cost: CostModel,
    ranks_per_node: usize,
    next_comm: AtomicU64,
    comms: Mutex<HashMap<CommId, Arc<Communicator>>>,
    mail: Mutex<MailState>,
    mail_cv: Condvar,
    aborted: AtomicBool,
}

impl CommWorld {
    /// Creates a world for a job whose ranks map 1:1 onto `clock` slots.
    pub fn new(clock: Arc<ClockBoard>, cost: CostModel, ranks_per_node: usize) -> Arc<Self> {
        Arc::new(CommWorld {
            clock,
            cost,
            ranks_per_node,
            next_comm: AtomicU64::new(1),
            comms: Mutex::new(HashMap::new()),
            mail: Mutex::new(MailState::default()),
            mail_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        })
    }

    /// The shared clock board.
    pub fn clock(&self) -> &Arc<ClockBoard> {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Creates and registers a communicator over `ranks` whose clocks live
    /// at `clock_idx`. Creation itself is free; charging the NCCL
    /// bootstrap cost is done by having every member call
    /// [`Communicator::rendezvous`].
    pub fn create_comm(&self, ranks: Vec<RankId>, clock_idx: Vec<usize>) -> Arc<Communicator> {
        let id = CommId(self.next_comm.fetch_add(1, Ordering::Relaxed));
        let comm = Communicator::new(
            id,
            ranks,
            clock_idx,
            self.ranks_per_node,
            self.clock.clone(),
            self.cost.clone(),
        );
        self.comms.lock().insert(id, comm.clone());
        comm
    }

    /// Allocates a fresh communicator id (used by `split_comm`, which
    /// builds its children directly).
    pub(crate) fn alloc_comm_id(&self) -> CommId {
        CommId(self.next_comm.fetch_add(1, Ordering::Relaxed))
    }

    /// Looks up a live communicator.
    pub fn comm(&self, id: CommId) -> SimResult<Arc<Communicator>> {
        self.comms
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| SimError::InvalidHandle(id.to_string()))
    }

    /// Number of live communicators — the multiplier for the "recreate
    /// NCCL communicators" recovery step (Table 7).
    pub fn live_comms(&self) -> usize {
        self.comms.lock().len()
    }

    /// Ids of all live communicators, sorted.
    pub fn comm_ids(&self) -> Vec<CommId> {
        let mut ids: Vec<CommId> = self.comms.lock().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Removes a communicator from the registry (teardown during
    /// recovery). The communicator should be aborted first.
    pub fn drop_comm(&self, id: CommId) {
        self.comms.lock().remove(&id);
    }

    /// Re-registers a rebuilt communicator under its id. Configuration
    /// changes (hang timeout, engine, ring topology) return fresh `Arc`s
    /// with empty slot state; the registry must point at the instance the
    /// ranks actually synchronize through, or [`CommWorld::abort_all`]
    /// would release only the stale original.
    pub fn replace_comm(&self, comm: Arc<Communicator>) {
        self.comms.lock().insert(comm.id, comm);
    }

    /// Aborts every communicator and wakes all mailbox waiters: the
    /// release-everything step of job teardown.
    pub fn abort_all(&self) {
        self.aborted.store(true, Ordering::Release);
        // Snapshot the registry first: each abort() takes that
        // communicator's state lock, and holding the registry lock across
        // those acquisitions would order `comms` before every comm's
        // `state` — exactly the long-hold shape `guard_across_call` bans.
        let comms: Vec<Arc<Communicator>> = self.comms.lock().values().cloned().collect();
        for comm in comms {
            comm.abort();
        }
        // Wake mailbox waiters while holding their lock: a receiver that
        // checked the abort flag but has not parked yet would otherwise
        // miss this notify and sleep through teardown (the PR-5
        // lost-wakeup class, here on the p2p path).
        let _mail = self.mail.lock();
        self.mail_cv.notify_all();
    }

    /// True after [`CommWorld::abort_all`] until [`CommWorld::reset`].
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Clears abort state and drops dead communicators; called by the
    /// recovery engine before rebuilding the communication layer.
    ///
    /// Mailbox contents are deliberately KEPT: p2p messages are keyed by
    /// `(src, dst, tag, seq)` where `seq` is the sender's minibatch
    /// iteration, and delivery is idempotent (copy, not consume). During
    /// recovery a pipeline stage that rolls back may legitimately replay a
    /// receive whose producing stage has already advanced past that
    /// iteration — the original message must still be findable.
    pub fn reset(&self) {
        self.comms.lock().clear();
        self.aborted.store(false, Ordering::Release);
    }

    /// Garbage-collects mailbox messages with `seq < floor` (older than
    /// any iteration recovery could still roll back to).
    pub fn prune_mail_below(&self, floor: u64) {
        let mut mail = self.mail.lock();
        mail.inbox.retain(|k, _| k.3 >= floor);
        mail.byte_inbox.retain(|k, _| k.3 >= floor);
    }

    /// Non-blocking (buffered) point-to-point send, used by pipeline
    /// parallelism. `seq` is the sender's minibatch iteration: the message
    /// key is fully deterministic, so a replayed send simply overwrites
    /// the identical original (idempotent).
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &self,
        src: RankId,
        src_clock_idx: usize,
        dst: RankId,
        tag: u64,
        seq: u64,
        data: Vec<f32>,
        logical_bytes: u64,
        same_node: bool,
    ) -> SimResult<()> {
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        let now = self.clock.now(src_clock_idx);
        let cost = self.cost.p2p(logical_bytes, same_node);
        let available_at = now + cost;
        let mut mail = self.mail.lock();
        mail.inbox
            .insert((src, dst, tag, seq), Message { data, available_at });
        self.mail_cv.notify_all();
        Ok(())
    }

    /// Blocking point-to-point receive of `(src, tag, seq)`. Delivery is
    /// idempotent: the message is copied, not consumed, so a rolled-back
    /// receiver can replay the receive. Raises the receiver's clock to
    /// the message's availability time.
    pub fn recv(
        &self,
        src: RankId,
        dst: RankId,
        dst_clock_idx: usize,
        tag: u64,
        seq: u64,
    ) -> SimResult<Vec<f32>> {
        let mut mail = self.mail.lock();
        let key = (src, dst, tag, seq);
        loop {
            // Delivery wins over abort (see the collective wait loop).
            if let Some(msg) = mail.inbox.get(&key) {
                self.clock.raise_to(dst_clock_idx, msg.available_at);
                return Ok(msg.data.clone());
            }
            if self.is_aborted() {
                return Err(SimError::CollectiveAborted);
            }
            mail.waiters += 1;
            self.mail_cv.notify_all(); // Wake `wait_for_mail_waiters` observers.
            self.mail_cv.wait_for(&mut mail, Duration::from_millis(2));
            mail.waiters -= 1;
        }
    }

    /// Non-blocking send of a CRC-framed byte shard (the pipelined
    /// replica-recovery stream). Semantics mirror [`CommWorld::send`]:
    /// buffered, keyed by `(src, dst, tag, seq)`, idempotent overwrite,
    /// availability charged from the sender's clock plus the p2p cost of
    /// the frame. `frame` is a zero-copy slice of the encoder's output.
    #[allow(clippy::too_many_arguments)]
    pub fn send_bytes(
        &self,
        src: RankId,
        src_clock_idx: usize,
        dst: RankId,
        tag: u64,
        seq: u64,
        frame: Bytes,
        same_node: bool,
    ) -> SimResult<()> {
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        let now = self.clock.now(src_clock_idx);
        let cost = self.cost.p2p(frame.len() as u64, same_node);
        let available_at = now + cost;
        let mut mail = self.mail.lock();
        mail.byte_inbox.insert(
            (src, dst, tag, seq),
            ByteMessage {
                frame,
                available_at,
            },
        );
        self.mail_cv.notify_all();
        Ok(())
    }

    /// Blocking receive of a byte shard; idempotent (refcount copy, not
    /// consume). Raises the receiver's clock to the frame's availability
    /// time. Delivery wins over abort, like [`CommWorld::recv`].
    pub fn recv_bytes(
        &self,
        src: RankId,
        dst: RankId,
        dst_clock_idx: usize,
        tag: u64,
        seq: u64,
    ) -> SimResult<Bytes> {
        let mut mail = self.mail.lock();
        let key = (src, dst, tag, seq);
        loop {
            if let Some(msg) = mail.byte_inbox.get(&key) {
                self.clock.raise_to(dst_clock_idx, msg.available_at);
                return Ok(msg.frame.clone());
            }
            if self.is_aborted() {
                return Err(SimError::CollectiveAborted);
            }
            mail.waiters += 1;
            self.mail_cv.notify_all(); // Wake `wait_for_mail_waiters` observers.
            self.mail_cv.wait_for(&mut mail, Duration::from_millis(2));
            mail.waiters -= 1;
        }
    }

    /// Non-blocking probe for a byte shard: `Ok(Some)` if available,
    /// `Ok(None)` if not yet sent, `Err` if the world is aborted. The
    /// recovery stream uses this to detect a dead replica without
    /// committing to a blocking wait.
    pub fn try_recv_bytes(
        &self,
        src: RankId,
        dst: RankId,
        dst_clock_idx: usize,
        tag: u64,
        seq: u64,
    ) -> SimResult<Option<Bytes>> {
        let mail = self.mail.lock();
        if let Some(msg) = mail.byte_inbox.get(&(src, dst, tag, seq)) {
            self.clock.raise_to(dst_clock_idx, msg.available_at);
            return Ok(Some(msg.frame.clone()));
        }
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        Ok(None)
    }

    /// Blocks until at least `n` threads are parked in
    /// [`CommWorld::recv`], or `timeout` elapses (returns `false` on
    /// timeout). Mirror of [`Communicator::wait_for_parked`] for the p2p
    /// mailboxes: harnesses assert "the receiver is blocked" by waiting
    /// on the mailbox condvar rather than sleeping a guessed interval.
    pub fn wait_for_mail_waiters(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut mail = self.mail.lock();
        while mail.waiters < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.mail_cv.wait_for(&mut mail, deadline - now);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use std::thread;

    fn world(n: usize) -> (Arc<CommWorld>, Arc<ClockBoard>) {
        let clock = Arc::new(ClockBoard::new(n));
        let w = CommWorld::new(clock.clone(), CostModel::v100(), 8);
        (w, clock)
    }

    #[test]
    fn create_and_lookup_comms() {
        let (w, _) = world(4);
        let c = w.create_comm(vec![RankId(0), RankId(1)], vec![0, 1]);
        assert_eq!(w.live_comms(), 1);
        assert_eq!(w.comm(c.id).unwrap().size(), 2);
        w.drop_comm(c.id);
        assert_eq!(w.live_comms(), 0);
        assert!(w.comm(c.id).is_err());
    }

    #[test]
    fn send_recv_round_trip_with_clock_raise() {
        let (w, clock) = world(2);
        clock.raise_to(0, SimTime::from_secs(5.0));
        w.send(RankId(0), 0, RankId(1), 7, 0, vec![1.0, 2.0], 1 << 20, true)
            .unwrap();
        let got = w.recv(RankId(0), RankId(1), 1, 7, 0).unwrap();
        assert_eq!(got, vec![1.0, 2.0]);
        // Receiver clock raised past sender's send time.
        assert!(clock.now(1).as_secs() > 5.0);
    }

    #[test]
    fn recv_blocks_until_send() {
        let (w, _) = world(2);
        let w2 = w.clone();
        let h = thread::spawn(move || w2.recv(RankId(0), RankId(1), 1, 0, 0));
        assert!(w.wait_for_mail_waiters(1, Duration::from_secs(5)));
        assert!(!h.is_finished());
        w.send(RankId(0), 0, RankId(1), 0, 0, vec![3.0], 4, true)
            .unwrap();
        assert_eq!(h.join().unwrap().unwrap(), vec![3.0]);
    }

    #[test]
    fn messages_pair_by_sequence_and_are_idempotent() {
        let (w, _) = world(2);
        w.send(RankId(0), 0, RankId(1), 0, 0, vec![1.0], 4, true)
            .unwrap();
        w.send(RankId(0), 0, RankId(1), 0, 1, vec![2.0], 4, true)
            .unwrap();
        assert_eq!(w.recv(RankId(0), RankId(1), 1, 0, 1).unwrap(), vec![2.0]);
        assert_eq!(w.recv(RankId(0), RankId(1), 1, 0, 0).unwrap(), vec![1.0]);
        // Idempotent re-delivery (a rolled-back receiver replays).
        assert_eq!(w.recv(RankId(0), RankId(1), 1, 0, 0).unwrap(), vec![1.0]);
        // Replayed send overwrites with identical content, harmlessly.
        w.send(RankId(0), 0, RankId(1), 0, 0, vec![1.0], 4, true)
            .unwrap();
        assert_eq!(w.recv(RankId(0), RankId(1), 1, 0, 0).unwrap(), vec![1.0]);
        // GC drops old iterations.
        w.prune_mail_below(1);
        let w2 = w.clone();
        let h = thread::spawn(move || w2.recv(RankId(0), RankId(1), 1, 0, 0));
        assert!(w.wait_for_mail_waiters(1, Duration::from_secs(5)));
        assert!(!h.is_finished(), "pruned message is gone");
        w.abort_all();
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn abort_all_releases_comm_waiters_and_mail_waiters() {
        let (w, _) = world(3);
        let comm = w.create_comm(vec![RankId(0), RankId(1)], vec![0, 1]);
        let c = comm.clone();
        let h_coll = thread::spawn(move || c.barrier(RankId(0), 0, &NullObserver));
        let w2 = w.clone();
        let h_mail = thread::spawn(move || w2.recv(RankId(0), RankId(2), 2, 0, 0));
        assert!(comm.wait_for_parked(1, Duration::from_secs(5)));
        assert!(w.wait_for_mail_waiters(1, Duration::from_secs(5)));
        assert!(!h_coll.is_finished());
        assert!(!h_mail.is_finished());
        w.abort_all();
        assert_eq!(
            h_coll.join().unwrap().unwrap_err(),
            SimError::CollectiveAborted
        );
        assert_eq!(
            h_mail.join().unwrap().unwrap_err(),
            SimError::CollectiveAborted
        );
        // Reset restores service.
        w.reset();
        assert!(!w.is_aborted());
        assert_eq!(w.live_comms(), 0);
    }

    #[test]
    fn send_after_abort_is_rejected() {
        let (w, _) = world(2);
        w.abort_all();
        let err = w
            .send(RankId(0), 0, RankId(1), 0, 0, vec![1.0], 4, true)
            .unwrap_err();
        assert_eq!(err, SimError::CollectiveAborted);
    }

    #[test]
    fn comm_ids_are_unique_and_sorted() {
        let (w, _) = world(2);
        let a = w.create_comm(vec![RankId(0)], vec![0]);
        let b = w.create_comm(vec![RankId(1)], vec![1]);
        assert_ne!(a.id, b.id);
        let ids = w.comm_ids();
        assert_eq!(ids.len(), 2);
        assert!(ids[0] < ids[1]);
    }
}

//! Chunked ring and hierarchical collective engines.
//!
//! The slot-based reference protocol in [`crate::comm`] reduces every
//! collective in a single pass over full `Vec<f32>` copies: the last
//! arrival clones contribution 0, streams the whole vector through cache
//! once per peer, and then every rank clones the complete result out of
//! the slot. That is 2·n full-payload touches beyond the unavoidable
//! n−1 accumulation passes.
//!
//! The ring engine keeps the exact same matched-slot rendezvous (which is
//! what gives collectives their barrier/hang/abort semantics — see the
//! crate docs) but replaces the data plane:
//!
//! * contributions are folded into a single accumulator **eagerly in rank
//!   order** as they arrive (out-of-order arrivals park until their
//!   rank-order turn), so memory stays one accumulator plus the
//!   out-of-order window instead of all n parked vectors;
//! * each fold is split into fixed-size **chunks** reduced in parallel on
//!   the bounded [`simcore::pool::fan_out`] scope pool, each chunk
//!   accumulated in canonical rank order (rank order, not ring-hop order,
//!   so results stay bit-identical to the reference — the determinism the
//!   paper's exact-loss-match validation requires);
//! * the result is delivered as a **shared** `Arc` instead of a private
//!   full-vector clone per rank.
//!
//! The **hierarchical engine** ([`CollEngine::Hier`]) runs the same
//! bit-identical data plane but charges the two-level schedule of
//! [`simcore::cost::CostModel::hier_all_reduce`]: reduce-scatter on each
//! intra-node ring (NVLink hops), a ring across one leader per node (NIC
//! hops), then an intra-node all-gather. Hierarchy in this simulator is a
//! *cost-schedule* property — which simulated links carry the traffic and
//! how many per-hop latencies serialize — never an arithmetic one: every
//! engine accumulates elementwise in strict global rank order, which is
//! why `Hier`, `Ring`, and `Slot` are bit-identical by construction (see
//! DESIGN.md §11).
//!
//! The simulated *time* of a ring collective is charged by
//! [`simcore::cost::CostModel::ring_all_reduce`] /
//! [`ring_all_gather`](simcore::cost::CostModel::ring_all_gather), which
//! model the 2·(n−1) synchronous ring steps with per-hop link classes
//! (NVLink vs NIC) instead of the flat per-byte charge — see
//! [`hop_classes_from_nodes`] for how hops are classified.

use crate::comm::ReduceOp;
use simcore::cost::CostModel;
use simcore::sync::Mutex;
use simcore::{pool, RankId, SimError, SimResult};

/// Default chunk granularity for intra-node (NVLink) rings. 128 KiB keeps
/// a chunk's accumulator and one peer slice comfortably inside L2 while
/// amortizing per-chunk dispatch.
pub const DEFAULT_NVLINK_CHUNK_BYTES: usize = 128 * 1024;

/// Default chunk granularity for rings with inter-node (NIC) hops. The
/// slower link tolerates a coarser chunk; see [`RingConfig::from_cost`]
/// for the bandwidth-delay-product rationale.
pub const DEFAULT_NIC_CHUNK_BYTES: usize = 256 * 1024;

/// Tuning knobs for the chunked ring / hierarchical engines.
///
/// Chunk size is configurable **per hop class**: a ring that rides NVLink
/// only uses `nvlink_chunk_bytes`; a ring with NIC hops uses
/// `nic_chunk_bytes` (the pipe that must stay full is the slow one). The
/// hierarchical engine blocks its data plane at the NVLink granularity —
/// the intra-node phases carry the `2·(m−1)/m` bulk of the volume.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Chunk granularity in bytes for all-NVLink rings (clamped to ≥ 4).
    pub nvlink_chunk_bytes: usize,
    /// Chunk granularity in bytes for rings with NIC hops (clamped to ≥ 4).
    pub nic_chunk_bytes: usize,
    /// Upper bound on reduction workers; the effective pool is
    /// `min(workers, chunks)` and degrades to the calling thread.
    pub workers: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            nvlink_chunk_bytes: DEFAULT_NVLINK_CHUNK_BYTES,
            nic_chunk_bytes: DEFAULT_NIC_CHUNK_BYTES,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Rounds a byte count down to a power of two inside `[32 KiB, 512 KiB]`.
fn chunk_from_bdp(bytes: f64) -> usize {
    let clamped = (bytes as usize).clamp(32 * 1024, 512 * 1024);
    1usize << (usize::BITS - 1 - clamped.leading_zeros())
}

impl RingConfig {
    /// Per-hop-class chunk defaults derived from the cost model: the
    /// bandwidth-delay product of each link class (the segment size below
    /// which a ring step is latency- rather than bandwidth-bound), rounded
    /// to a power of two and clamped to a cache-friendly range. For the
    /// V100 model this yields 512 KiB NVLink / 256 KiB NIC chunks; the
    /// wall-clock sensitivity is measured by the `chunk_sweep` section of
    /// `BENCH_coll.json`.
    pub fn from_cost(cost: &CostModel) -> Self {
        RingConfig {
            nvlink_chunk_bytes: chunk_from_bdp(cost.nvlink_bw * cost.nvlink_latency.as_secs()),
            nic_chunk_bytes: chunk_from_bdp(cost.nic_bw * cost.coll_latency.as_secs()),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Uniform chunking across both hop classes (tests and sweeps).
    pub fn uniform(chunk_bytes: usize, workers: usize) -> Self {
        RingConfig {
            nvlink_chunk_bytes: chunk_bytes,
            nic_chunk_bytes: chunk_bytes,
            workers,
        }
    }

    /// The chunk size for a ring whose slowest hop class is `inter_node`.
    pub fn chunk_bytes_for(&self, inter_node: bool) -> usize {
        if inter_node {
            self.nic_chunk_bytes
        } else {
            self.nvlink_chunk_bytes
        }
    }

    pub(crate) fn chunk_elems(&self, inter_node: bool) -> usize {
        (self.chunk_bytes_for(inter_node) / std::mem::size_of::<f32>()).max(1)
    }
}

/// Which data-plane engine a communicator runs.
#[derive(Debug, Clone, Copy)]
pub enum CollEngine {
    /// The original matched-slot reference: monolithic single-threaded
    /// reduction, private result copy per rank, flat α–β cost.
    Slot,
    /// Chunked ring reduce-scatter + all-gather with shared delivery and
    /// ring-hop topology-aware cost.
    Ring(RingConfig),
    /// Two-level hierarchical schedule: intra-node reduce-scatter, leader
    /// ring across nodes, intra-node all-gather. Same bit-identical data
    /// plane as `Ring`; the cost model charges
    /// [`simcore::cost::CostModel::hier_all_reduce`] instead of the flat
    /// 2·(n−1)-hop ring.
    Hier(RingConfig),
}

impl Default for CollEngine {
    fn default() -> Self {
        CollEngine::Ring(RingConfig::default())
    }
}

/// Contiguous-placement fallback node assignment: member `i` of `ranks`
/// lives on node `ranks[i].index() / ranks_per_node`. Schedulers that know
/// the real GPU placement override this via `Communicator::set_topology`
/// with `cluster::Cluster::node_assignment`.
pub fn contiguous_node_assignment(ranks: &[RankId], ranks_per_node: usize) -> Vec<usize> {
    let rpn = ranks_per_node.max(1);
    ranks.iter().map(|r| r.index() / rpn).collect()
}

/// Classifies each hop of the member-order ring `i → (i+1) mod n` as
/// intra-node (`true`) or inter-node (`false`) from a node assignment
/// (`node_of[i]` = node of member `i`). A singleton or empty group has no
/// hops.
pub fn hop_classes_from_nodes(node_of: &[usize]) -> Vec<bool> {
    let n = node_of.len();
    if n <= 1 {
        return Vec::new();
    }
    (0..n).map(|i| node_of[i] == node_of[(i + 1) % n]).collect()
}

/// Classifies ring hops under the contiguous placement convention
/// (`ranks_per_node` consecutive global rank ids per node) — the fallback
/// when no real placement is known.
pub fn ring_hop_classes(ranks: &[RankId], ranks_per_node: usize) -> Vec<bool> {
    hop_classes_from_nodes(&contiguous_node_assignment(ranks, ranks_per_node))
}

/// Ranks per node under a node assignment, in first-appearance order —
/// the `node_sizes` input of the hierarchical cost model.
pub fn node_group_sizes(node_of: &[usize]) -> Vec<usize> {
    let mut nodes: Vec<usize> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for &node in node_of {
        match nodes.iter().position(|n| *n == node) {
            Some(i) => sizes[i] += 1,
            None => {
                nodes.push(node);
                sizes.push(1);
            }
        }
    }
    sizes
}

#[inline(always)]
fn fold(op: ReduceOp, a: f32, b: f32) -> f32 {
    match op {
        ReduceOp::Sum | ReduceOp::Avg => a + b,
        ReduceOp::Max => a.max(b),
    }
}

fn accumulate_chunk(dst: &mut [f32], peers: &[&[f32]], lo: usize, op: ReduceOp) {
    let hi = lo + dst.len();
    // Fold four peers per pass: per-element accumulation order is still
    // strict rank order (bit-identity with the monolithic reference), but
    // four concurrent read streams expose memory-level parallelism where
    // one-peer-at-a-time passes serialize on a single cold stream.
    let mut rest = peers;
    while rest.len() >= 4 {
        let (g, tail) = rest.split_at(4);
        let (p0, p1, p2, p3) = (&g[0][lo..hi], &g[1][lo..hi], &g[2][lo..hi], &g[3][lo..hi]);
        for ((((a, b0), b1), b2), b3) in dst.iter_mut().zip(p0).zip(p1).zip(p2).zip(p3) {
            *a = fold(op, fold(op, fold(op, fold(op, *a, *b0), *b1), *b2), *b3);
        }
        rest = tail;
    }
    for c in rest {
        for (a, b) in dst.iter_mut().zip(&c[lo..hi]) {
            *a = fold(op, *a, *b);
        }
    }
}

/// Scales every element once — the `Avg` finalization. Applied exactly
/// once per collective, after all n contributions are folded, so the
/// eager streaming path and the monolithic reference stay bit-identical
/// (elementwise `× 1/n` commutes with chunking, not with re-folding).
pub fn scale_in_place(dst: &mut [f32], n: usize) {
    let inv = 1.0 / n as f32;
    for a in dst.iter_mut() {
        *a *= inv;
    }
}

/// Chunk-parallel elementwise fold of `peers` (in rank order) into `acc`,
/// blocked at `chunk_elems` granularity across the bounded scope pool.
/// Does NOT apply `Avg` scaling — callers finalize with
/// [`scale_in_place`] once all contributions are in.
pub fn accumulate_into(
    acc: &mut [f32],
    peers: &[&[f32]],
    op: ReduceOp,
    chunk_elems: usize,
    workers: usize,
) -> SimResult<()> {
    let len = acc.len();
    for c in peers {
        if c.len() != len {
            return Err(SimError::Protocol(format!(
                "ragged collective: {} vs {}",
                c.len(),
                len
            )));
        }
    }
    if len == 0 || peers.is_empty() {
        return Ok(());
    }
    let chunk = chunk_elems.max(1);
    let n_chunks = len.div_ceil(chunk);
    let workers = workers.clamp(1, n_chunks);
    if workers == 1 {
        for (c, dst) in acc.chunks_mut(chunk).enumerate() {
            accumulate_chunk(dst, peers, c * chunk, op);
        }
    } else {
        // Disjoint per-chunk output slices behind uncontended mutexes:
        // each index is handed out exactly once, so locks never block.
        let parts: Vec<Mutex<&mut [f32]>> = acc.chunks_mut(chunk).map(Mutex::new).collect();
        pool::fan_out(n_chunks, workers, "ring-reduce", |c| {
            let mut dst = parts[c].lock();
            accumulate_chunk(&mut dst, peers, c * chunk, op);
        });
    }
    Ok(())
}

/// Chunked parallel reduction that takes ownership of the rank-order
/// first contribution and accumulates the `peers` (ranks 1..n) into it in
/// place, then finalizes (`Avg` scales once over `peers.len() + 1`
/// contributions). This is the zero-allocation completion path: the first
/// buffer *becomes* the result — no `vec![0.0; len]` zero-fill, no seed
/// memcpy, no result allocation. Bit-identical to the monolithic slot
/// reference (same element-wise accumulation order).
pub fn reduce_seeded(
    mut seed: Vec<f32>,
    peers: &[&[f32]],
    op: ReduceOp,
    cfg: &RingConfig,
) -> SimResult<Vec<f32>> {
    accumulate_into(&mut seed, peers, op, cfg.chunk_elems(false), cfg.workers)?;
    if op == ReduceOp::Avg {
        scale_in_place(&mut seed, peers.len() + 1);
    }
    Ok(seed)
}

/// Chunked parallel reduction of `contribs` (in rank order). Bit-identical
/// to the slot reference: each element is accumulated rank 0 → rank n−1
/// and (for `Avg`) scaled once at the end, exactly as the monolithic loop
/// does — chunking only regroups independent elements.
pub fn reduce_chunked(contribs: &[&[f32]], op: ReduceOp, cfg: &RingConfig) -> SimResult<Vec<f32>> {
    let first = contribs
        .first()
        .ok_or_else(|| SimError::Protocol("reduce without contribution".into()))?;
    reduce_seeded(first.to_vec(), &contribs[1..], op, cfg)
}

/// All-gather data plane: rank-order concatenation assembled in a single
/// linear pass (the ring win for gather is shared delivery plus the
/// per-hop cost model, not the copy itself).
pub fn gather_chunked(contribs: &[&[f32]]) -> Vec<f32> {
    let total: usize = contribs.iter().map(|c| c.len()).sum();
    let mut out = Vec::with_capacity(total);
    for c in contribs {
        out.extend_from_slice(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((r * 31 + i * 7) % 97) as f32 * 0.37 - 11.0)
                    .collect()
            })
            .collect()
    }

    fn slot_reference(contribs: &[&[f32]], op: ReduceOp) -> Vec<f32> {
        // The monolithic rank-order loop from the slot engine.
        let mut acc = contribs[0].to_vec();
        for c in &contribs[1..] {
            for (a, b) in acc.iter_mut().zip(*c) {
                match op {
                    ReduceOp::Sum | ReduceOp::Avg => *a += b,
                    ReduceOp::Max => *a = a.max(*b),
                }
            }
        }
        if op == ReduceOp::Avg {
            let inv = 1.0 / contribs.len() as f32;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }

    #[test]
    fn chunked_reduce_matches_reference_bitwise() {
        for op in [ReduceOp::Sum, ReduceOp::Avg, ReduceOp::Max] {
            // Non-chunk-aligned length and more chunks than workers.
            for len in [1usize, 7, 1023, 4096, 4097] {
                let data = vecs(5, len);
                let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
                let cfg = RingConfig::uniform(1024, 4);
                let got = reduce_chunked(&refs, op, &cfg).unwrap();
                let want = slot_reference(&refs, op);
                assert_eq!(
                    got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "op {op:?} len {len}"
                );
            }
        }
    }

    #[test]
    fn incremental_folds_match_batch_reduction_bitwise() {
        // The streaming slot folds arrivals one (or a few) at a time;
        // the per-element accumulation order is identical to one batch
        // reduction, so the results must match to the bit.
        for op in [ReduceOp::Sum, ReduceOp::Avg, ReduceOp::Max] {
            let data = vecs(6, 1021);
            let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
            let want = slot_reference(&refs, op);
            let mut acc = data[0].clone();
            // Uneven fold runs: 1, then 3, then 1 peers.
            accumulate_into(&mut acc, &refs[1..2], op, 256, 2).unwrap();
            accumulate_into(&mut acc, &refs[2..5], op, 256, 2).unwrap();
            accumulate_into(&mut acc, &refs[5..6], op, 256, 2).unwrap();
            if op == ReduceOp::Avg {
                scale_in_place(&mut acc, 6);
            }
            assert_eq!(
                acc.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "op {op:?}"
            );
        }
    }

    #[test]
    fn ragged_contributions_are_rejected() {
        let a = vec![1.0f32; 8];
        let b = vec![1.0f32; 9];
        let refs: Vec<&[f32]> = vec![&a, &b];
        let err = reduce_chunked(&refs, ReduceOp::Sum, &RingConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)));
    }

    #[test]
    fn hop_classes_follow_contiguous_placement() {
        let ranks: Vec<RankId> = (0..16).map(RankId).collect();
        let hops = ring_hop_classes(&ranks, 8);
        // Hops 0..6 intra, 7 crosses to node 1, 8..14 intra, 15 wraps back.
        assert_eq!(hops.iter().filter(|h| !**h).count(), 2);
        assert!(!hops[7] && !hops[15]);
        // Single-node ring is all-NVLink; sub-node comms too.
        assert!(ring_hop_classes(&ranks[..8], 8).iter().all(|h| *h));
        // A dp comm spanning nodes (ranks 0 and 8) is all inter-node.
        let dp = vec![RankId(0), RankId(8)];
        assert!(ring_hop_classes(&dp, 8).iter().all(|h| !*h));
        assert!(ring_hop_classes(&ranks[..1], 8).is_empty());
    }

    #[test]
    fn hop_classes_handle_non_contiguous_placement() {
        // Ranks 0..4 scattered as nodes [0, 1, 0, 1]: every hop crosses —
        // exactly the placement the contiguous heuristic gets wrong.
        let node_of = vec![0usize, 1, 0, 1];
        assert!(hop_classes_from_nodes(&node_of).iter().all(|h| !*h));
        // Grouped non-contiguously: [0, 0, 1, 1, 0] has hops at 1→2,
        // 3→4 and the 4→0 wrap intra.
        let hops = hop_classes_from_nodes(&[0, 0, 1, 1, 0]);
        assert_eq!(hops, vec![true, false, true, false, true]);
        assert!(hop_classes_from_nodes(&[7]).is_empty());
    }

    #[test]
    fn node_group_sizes_count_members_per_node() {
        assert_eq!(node_group_sizes(&[0, 0, 1, 1, 0, 2]), vec![3, 2, 1]);
        assert_eq!(node_group_sizes(&[5, 5, 5]), vec![3]);
        assert!(node_group_sizes(&[]).is_empty());
    }

    #[test]
    fn chunk_defaults_follow_the_cost_model_bdp() {
        let cfg = RingConfig::from_cost(&CostModel::v100());
        // V100: NVLink BDP = 130 GB/s × 8 µs ≈ 1.04 MB → clamped 512 KiB;
        // NIC BDP = 12.5 GB/s × 40 µs = 500 KB → 256 KiB.
        assert_eq!(cfg.nvlink_chunk_bytes, 512 * 1024);
        assert_eq!(cfg.nic_chunk_bytes, 256 * 1024);
        assert!(cfg.chunk_bytes_for(false) > cfg.chunk_bytes_for(true));
    }
}

//! Chunked ring collective engine.
//!
//! The slot-based reference protocol in [`crate::comm`] reduces every
//! collective in a single pass over full `Vec<f32>` copies: the last
//! arrival clones contribution 0, streams the whole vector through cache
//! once per peer, and then every rank clones the complete result out of
//! the slot. That is 2·n full-payload touches beyond the unavoidable
//! n−1 accumulation passes.
//!
//! The ring engine keeps the exact same matched-slot rendezvous (which is
//! what gives collectives their barrier/hang/abort semantics — see the
//! crate docs) but replaces the data plane:
//!
//! * the payload is split into fixed-size **chunks**, the unit that moves
//!   through the 2·(n−1) per-rank ring steps of reduce-scatter +
//!   all-gather; chunks are zero-copy subslices of the parked
//!   contributions, never re-materialized;
//! * chunks are reduced **in parallel** on the bounded
//!   [`simcore::pool::fan_out`] scope pool, each chunk accumulated in
//!   canonical rank order (rank order, not ring-hop order, so results
//!   stay bit-identical to the reference — the determinism the paper's
//!   exact-loss-match validation requires);
//! * the result is delivered as a **shared** `Arc` (each rank's ring
//!   segment lands in place exactly once), instead of a private
//!   full-vector clone per rank.
//!
//! Chunking also cache-blocks the reduction: a chunk's accumulator stays
//! resident across all n−1 peer passes instead of streaming the full
//! payload through cache n−1 times, which is where most of the measured
//! single-core win comes from (see `BENCH_coll.json`).
//!
//! The simulated *time* of a ring collective is charged by
//! [`simcore::cost::CostModel::ring_all_reduce`] /
//! [`ring_all_gather`](simcore::cost::CostModel::ring_all_gather), which
//! model the 2·(n−1) synchronous ring steps with per-hop link classes
//! (NVLink vs NIC) instead of the flat per-byte charge — see
//! [`ring_hop_classes`] for how hops are classified.

use crate::comm::ReduceOp;
use simcore::sync::Mutex;
use simcore::{pool, RankId, SimError, SimResult};

/// Default chunk granularity. 128 KiB keeps a chunk's accumulator and one
/// peer slice comfortably inside L2 while amortizing per-chunk dispatch.
pub const DEFAULT_CHUNK_BYTES: usize = 128 * 1024;

/// Tuning knobs for the chunked ring engine.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Chunk granularity in bytes of f32 payload (clamped to ≥ 4).
    pub chunk_bytes: usize,
    /// Upper bound on reduction workers; the effective pool is
    /// `min(workers, chunks)` and degrades to the calling thread.
    pub workers: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl RingConfig {
    fn chunk_elems(&self) -> usize {
        (self.chunk_bytes / std::mem::size_of::<f32>()).max(1)
    }
}

/// Which data-plane engine a communicator runs.
#[derive(Debug, Clone, Copy)]
pub enum CollEngine {
    /// The original matched-slot reference: monolithic single-threaded
    /// reduction, private result copy per rank, flat α–β cost.
    Slot,
    /// Chunked ring reduce-scatter + all-gather with shared delivery and
    /// ring-hop topology-aware cost.
    Ring(RingConfig),
}

impl Default for CollEngine {
    fn default() -> Self {
        CollEngine::Ring(RingConfig::default())
    }
}

/// Classifies each hop of the rank-order ring `ranks[i] → ranks[i+1 mod n]`
/// as intra-node (`true`) or inter-node (`false`) under the contiguous
/// placement convention (`ranks_per_node` consecutive global rank ids per
/// node). [`cluster` topology]: schedulers that know the real GPU
/// placement override this via `Communicator::set_ring_topology`.
pub fn ring_hop_classes(ranks: &[RankId], ranks_per_node: usize) -> Vec<bool> {
    let n = ranks.len();
    if n <= 1 {
        return Vec::new();
    }
    let rpn = ranks_per_node.max(1);
    (0..n)
        .map(|i| {
            let a = ranks[i].index() / rpn;
            let b = ranks[(i + 1) % n].index() / rpn;
            a == b
        })
        .collect()
}

fn check_equal_lengths(contribs: &[&[f32]]) -> SimResult<usize> {
    let len = contribs
        .first()
        .map(|c| c.len())
        .ok_or_else(|| SimError::Protocol("reduce without contribution".into()))?;
    for c in contribs {
        if c.len() != len {
            return Err(SimError::Protocol(format!(
                "ragged collective: {} vs {}",
                c.len(),
                len
            )));
        }
    }
    Ok(len)
}

#[inline(always)]
fn fold(op: ReduceOp, a: f32, b: f32) -> f32 {
    match op {
        ReduceOp::Sum | ReduceOp::Avg => a + b,
        ReduceOp::Max => a.max(b),
    }
}

fn accumulate_chunk(dst: &mut [f32], peers: &[&[f32]], lo: usize, n: usize, op: ReduceOp) {
    let hi = lo + dst.len();
    // Fold four peers per pass: per-element accumulation order is still
    // strict rank order (bit-identity with the monolithic reference), but
    // four concurrent read streams expose memory-level parallelism where
    // one-peer-at-a-time passes serialize on a single cold stream.
    let mut rest = peers;
    while rest.len() >= 4 {
        let (g, tail) = rest.split_at(4);
        let (p0, p1, p2, p3) = (&g[0][lo..hi], &g[1][lo..hi], &g[2][lo..hi], &g[3][lo..hi]);
        for ((((a, b0), b1), b2), b3) in dst.iter_mut().zip(p0).zip(p1).zip(p2).zip(p3) {
            *a = fold(op, fold(op, fold(op, fold(op, *a, *b0), *b1), *b2), *b3);
        }
        rest = tail;
    }
    for c in rest {
        for (a, b) in dst.iter_mut().zip(&c[lo..hi]) {
            *a = fold(op, *a, *b);
        }
    }
    if op == ReduceOp::Avg {
        let inv = 1.0 / n as f32;
        for a in dst.iter_mut() {
            *a *= inv;
        }
    }
}

/// Chunked parallel reduction of `contribs` (in rank order). Bit-identical
/// to the slot reference: each element is accumulated rank 0 → rank n−1
/// and (for `Avg`) scaled once at the end, exactly as the monolithic loop
/// does — chunking only regroups independent elements.
pub fn reduce_chunked(contribs: &[&[f32]], op: ReduceOp, cfg: &RingConfig) -> SimResult<Vec<f32>> {
    check_equal_lengths(contribs)?;
    reduce_seeded(contribs[0].to_vec(), &contribs[1..], op, cfg)
}

/// Chunked parallel reduction that takes ownership of the rank-order
/// first contribution and accumulates the `peers` (ranks 1..n) into it in
/// place. This is the zero-allocation hot path: the communicator already
/// owns every parked contribution, so the first buffer *becomes* the
/// result — no `vec![0.0; len]` zero-fill, no seed memcpy, no result
/// allocation. Bit-identical to [`reduce_chunked`] (same element-wise
/// accumulation order); `Avg` scales once at the end over `peers.len()+1`
/// contributions.
pub fn reduce_seeded(
    mut seed: Vec<f32>,
    peers: &[&[f32]],
    op: ReduceOp,
    cfg: &RingConfig,
) -> SimResult<Vec<f32>> {
    let len = seed.len();
    for c in peers {
        if c.len() != len {
            return Err(SimError::Protocol(format!(
                "ragged collective: {} vs {}",
                c.len(),
                len
            )));
        }
    }
    if len == 0 {
        return Ok(seed);
    }
    let n = peers.len() + 1;
    let chunk = cfg.chunk_elems();
    let n_chunks = len.div_ceil(chunk);
    let workers = cfg.workers.clamp(1, n_chunks);
    if workers == 1 {
        for (c, dst) in seed.chunks_mut(chunk).enumerate() {
            accumulate_chunk(dst, peers, c * chunk, n, op);
        }
    } else {
        // Disjoint per-chunk output slices behind uncontended mutexes:
        // each index is handed out exactly once, so locks never block.
        let parts: Vec<Mutex<&mut [f32]>> = seed.chunks_mut(chunk).map(Mutex::new).collect();
        pool::fan_out(n_chunks, workers, "ring-reduce", |c| {
            let mut dst = parts[c].lock();
            accumulate_chunk(&mut dst, peers, c * chunk, n, op);
        });
    }
    Ok(seed)
}

/// All-gather data plane: rank-order concatenation assembled in a single
/// linear pass (the ring win for gather is shared delivery plus the
/// per-hop cost model, not the copy itself).
pub fn gather_chunked(contribs: &[&[f32]]) -> Vec<f32> {
    let total: usize = contribs.iter().map(|c| c.len()).sum();
    let mut out = Vec::with_capacity(total);
    for c in contribs {
        out.extend_from_slice(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((r * 31 + i * 7) % 97) as f32 * 0.37 - 11.0)
                    .collect()
            })
            .collect()
    }

    fn slot_reference(contribs: &[&[f32]], op: ReduceOp) -> Vec<f32> {
        // The monolithic rank-order loop from the slot engine.
        let mut acc = contribs[0].to_vec();
        for c in &contribs[1..] {
            for (a, b) in acc.iter_mut().zip(*c) {
                match op {
                    ReduceOp::Sum | ReduceOp::Avg => *a += b,
                    ReduceOp::Max => *a = a.max(*b),
                }
            }
        }
        if op == ReduceOp::Avg {
            let inv = 1.0 / contribs.len() as f32;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }

    #[test]
    fn chunked_reduce_matches_reference_bitwise() {
        for op in [ReduceOp::Sum, ReduceOp::Avg, ReduceOp::Max] {
            // Non-chunk-aligned length and more chunks than workers.
            for len in [1usize, 7, 1023, 4096, 4097] {
                let data = vecs(5, len);
                let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
                let cfg = RingConfig {
                    chunk_bytes: 1024,
                    workers: 4,
                };
                let got = reduce_chunked(&refs, op, &cfg).unwrap();
                let want = slot_reference(&refs, op);
                assert_eq!(
                    got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "op {op:?} len {len}"
                );
            }
        }
    }

    #[test]
    fn ragged_contributions_are_rejected() {
        let a = vec![1.0f32; 8];
        let b = vec![1.0f32; 9];
        let refs: Vec<&[f32]> = vec![&a, &b];
        let err = reduce_chunked(&refs, ReduceOp::Sum, &RingConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)));
    }

    #[test]
    fn hop_classes_follow_contiguous_placement() {
        let ranks: Vec<RankId> = (0..16).map(RankId).collect();
        let hops = ring_hop_classes(&ranks, 8);
        // Hops 0..6 intra, 7 crosses to node 1, 8..14 intra, 15 wraps back.
        assert_eq!(hops.iter().filter(|h| !**h).count(), 2);
        assert!(!hops[7] && !hops[15]);
        // Single-node ring is all-NVLink; sub-node comms too.
        assert!(ring_hop_classes(&ranks[..8], 8).iter().all(|h| *h));
        // A dp comm spanning nodes (ranks 0 and 8) is all inter-node.
        let dp = vec![RankId(0), RankId(8)];
        assert!(ring_hop_classes(&dp, 8).iter().all(|h| !*h));
        assert!(ring_hop_classes(&ranks[..1], 8).is_empty());
    }
}

//! Communicators and collective operations.
//!
//! A [`Communicator`] is the NCCL-communicator equivalent: a fixed group of
//! ranks that issue matching collective calls in the same order. The
//! implementation gives the operations their real distributed-systems
//! semantics:
//!
//! * **barrier completion** — no rank returns until every member arrived;
//! * **hangs** — a member that never arrives parks everyone else on a
//!   condition variable indefinitely;
//! * **abort** — [`Communicator::abort`] (the `ncclCommAbort` equivalent)
//!   wakes all waiters with [`SimError::CollectiveAborted`]; an aborted
//!   communicator is dead and must be re-created via rendezvous; aborting
//!   a parent propagates to every child group split off it;
//! * **deterministic reduction** — contributions are reduced in member
//!   order, so results are bit-stable across runs (required for the
//!   paper's exact-loss-match validation).
//!
//! Operations are **generation-addressed and idempotent**: the caller (the
//! interception layer) supplies each operation's sequence number `gen`,
//! contributions overwrite identically on re-arrival, and completed slots
//! stay cached. This is what makes replay-based recovery consistent when
//! pipeline stages sit in *different* minibatches at failure time: a rank
//! replaying an already-completed collective is served the cached result
//! without its peers — who may have legitimately moved on — having to
//! re-participate, while a retried incomplete collective reuses its
//! generation and pairs with peers' retries. A re-created communicator
//! adopts its predecessor's completed-slot cache
//! ([`Communicator::adopt_completed_from`]).
//!
//! ## Slot storage: parked vs streaming
//!
//! The reference [`CollEngine::Slot`] engine (and the gather/broadcast/
//! barrier kinds under every engine) *parks* each contribution in a
//! member-position-indexed table and reduces once, when the last member
//! arrives. Reductions under the ring and hierarchical engines instead
//! *stream*: contributions are folded into a single accumulator eagerly,
//! in member order, the moment their turn comes — out-of-order arrivals
//! park only until the member-order prefix reaches them. Peak memory per
//! in-flight reduction drops from `n` buffers to one accumulator plus the
//! out-of-order window, which is what lets a 2048-rank world run without
//! holding 2048 parked 4 MiB buffers (or 2048 OS threads — see
//! [`Communicator::offer_reduce`]). Both paths accumulate elementwise in
//! strict member order, so they are bit-identical (DESIGN.md §11).

use crate::ledger::GradLedger;
use crate::observer::{CollectiveObserver, CollectiveTicket};
use crate::ring::{self, CollEngine};
use crate::world::CommId;
use simcore::cost::CostModel;
use simcore::sync::{Condvar, Mutex};
use simcore::time::ClockBoard;
use simcore::{RankId, SimError, SimResult};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Reduction operator for all-reduce / reduce-scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise mean (sum / group size).
    Avg,
    /// Elementwise maximum.
    Max,
}

/// Collective operation kinds (for tickets, validation, and costing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// All-reduce.
    AllReduce,
    /// All-gather (concatenation in rank order).
    AllGather,
    /// Reduce-scatter (reduce then shard).
    ReduceScatter,
    /// Broadcast from a root rank.
    Broadcast,
    /// Pure barrier.
    Barrier,
    /// Communicator-initialization rendezvous (costed as NCCL bootstrap).
    Rendezvous,
}

/// How a rank hands its buffer to a collective.
enum Contribution<'a> {
    /// Owned buffer (the blocking API) — moved into the slot, or consumed
    /// as the streaming accumulator without a copy.
    Data(Vec<f32>),
    /// Caller-owned slice (the non-blocking offer API) — folded in place
    /// when its member-order turn has come, copied only if it must park.
    Borrowed(&'a [f32]),
    /// No payload (barrier, rendezvous, non-root broadcast).
    Empty,
}

impl Contribution<'_> {
    fn into_parked(self) -> Option<Vec<f32>> {
        match self {
            Contribution::Data(v) => Some(v),
            Contribution::Borrowed(s) => Some(s.to_vec()),
            Contribution::Empty => None,
        }
    }
}

/// Per-generation contribution storage, indexed by **member position**
/// (position in the communicator's `ranks` list — the canonical reduction
/// order, which for split groups need not be sorted-RankId order).
#[derive(Clone)]
enum SlotData {
    /// Every contribution held until the last arrival (outer `None` = not
    /// arrived; inner `None` = an arrival without payload).
    Parked {
        contribs: Vec<Option<Option<Vec<f32>>>>,
        arrived: usize,
    },
    /// Eager member-order fold: `acc` holds ranks `0..folded` already
    /// reduced; out-of-order arrivals park in `parked` (keyed by member
    /// position) until the fold front reaches them.
    Streaming {
        acc: Vec<f32>,
        folded: usize,
        parked: BTreeMap<usize, Vec<f32>>,
    },
}

#[derive(Clone)]
struct Slot {
    kind: CollKind,
    op: Option<ReduceOp>,
    root: Option<RankId>,
    data: SlotData,
    logical_bytes: u64,
    complete: bool,
    fault_victim: Option<RankId>,
    result: Option<Arc<Vec<f32>>>,
}

#[derive(Default)]
struct CommState {
    slots: HashMap<u64, Slot>,
    pending_fault: Option<RankId>,
    /// Member threads currently parked inside a collective wait.
    parked: usize,
}

/// A group of ranks performing matched collective operations.
pub struct Communicator {
    /// Communicator identity.
    pub id: CommId,
    ranks: Vec<RankId>,
    /// Member position of each rank (reverse of `ranks`).
    member_of: HashMap<RankId, usize>,
    /// Clock-board slot of each member, by member position.
    clock_idx: Vec<usize>,
    ranks_per_node: usize,
    /// Node id of each member, by member position — real placement from
    /// `cluster::topology` via [`Communicator::set_topology`], or the
    /// contiguous fallback. Drives hop classes and the hierarchical
    /// schedule.
    node_of: Vec<usize>,
    /// Ring hops crossing a node boundary (derived from `node_of`).
    inter_hops: usize,
    /// Members per node in first-appearance order (derived from
    /// `node_of`) — the hierarchical cost model's input.
    node_sizes: Vec<usize>,
    clock: Arc<ClockBoard>,
    cost: CostModel,
    state: Mutex<CommState>,
    cv: Condvar,
    /// Separate condvar for `wait_for_parked` observers, so a rank
    /// parking does not thundering-herd every other parked rank awake.
    obs_cv: Condvar,
    aborted: AtomicBool,
    hang_timeout: Option<Duration>,
    engine: CollEngine,
    /// Child groups split off this communicator (`CommWorld::split_comm`).
    /// Weak: a dropped child must not be kept alive — or aborted — by its
    /// parent. This lock is a leaf: nothing else is acquired while it is
    /// held except inside `coll_cost` (state → children, one direction
    /// only; no path acquires state while holding children).
    children: Mutex<Vec<Weak<Communicator>>>,
    /// Per-member in-network gradient ledgers (`(member position,
    /// ledger)`), attached via [`Communicator::attach_ledger`]. Same
    /// leaf-lock discipline as `children`: the tap snapshots this list,
    /// drops the guard, and only then records into the ledgers.
    ledgers: Mutex<Vec<(usize, Arc<GradLedger>)>>,
    /// Fast-path guard for the tap: when no ledger is attached the
    /// completion paths pay one relaxed load and nothing else.
    has_ledgers: AtomicBool,
}

impl Communicator {
    /// Creates a communicator over `ranks`; `clock_idx[i]` is the clock
    /// board slot of `ranks[i]`. Node placement defaults to the
    /// contiguous `ranks_per_node` convention until
    /// [`Communicator::set_topology`] installs real placement.
    pub fn new(
        id: CommId,
        ranks: Vec<RankId>,
        clock_idx: Vec<usize>,
        ranks_per_node: usize,
        clock: Arc<ClockBoard>,
        cost: CostModel,
    ) -> Arc<Self> {
        let node_of = ring::contiguous_node_assignment(&ranks, ranks_per_node);
        let engine = CollEngine::Ring(ring::RingConfig::from_cost(&cost));
        Self::with_parts(
            id,
            ranks,
            clock_idx,
            node_of,
            ranks_per_node,
            clock,
            cost,
            engine,
            None,
        )
    }

    /// Full-control constructor: split groups inherit their parent's
    /// engine, timeout, and per-member topology slice through this.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_parts(
        id: CommId,
        ranks: Vec<RankId>,
        clock_idx: Vec<usize>,
        node_of: Vec<usize>,
        ranks_per_node: usize,
        clock: Arc<ClockBoard>,
        cost: CostModel,
        engine: CollEngine,
        hang_timeout: Option<Duration>,
    ) -> Arc<Self> {
        assert_eq!(ranks.len(), clock_idx.len());
        assert_eq!(ranks.len(), node_of.len());
        let member_of: HashMap<RankId, usize> =
            ranks.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        assert_eq!(member_of.len(), ranks.len(), "duplicate member rank");
        let inter_hops = ring::hop_classes_from_nodes(&node_of)
            .iter()
            .filter(|same| !**same)
            .count();
        let node_sizes = ring::node_group_sizes(&node_of);
        Arc::new(Communicator {
            id,
            ranks,
            member_of,
            clock_idx,
            ranks_per_node,
            node_of,
            inter_hops,
            node_sizes,
            clock,
            cost,
            state: Mutex::new(CommState::default()),
            cv: Condvar::new(),
            obs_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            hang_timeout,
            engine,
            children: Mutex::new(Vec::new()),
            ledgers: Mutex::new(Vec::new()),
            has_ledgers: AtomicBool::new(false),
        })
    }

    /// Member ranks, in member (reduction) order.
    pub fn ranks(&self) -> &[RankId] {
        &self.ranks
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// True if `rank` is a member of this group.
    pub fn contains(&self, rank: RankId) -> bool {
        self.member_of.contains_key(&rank)
    }

    /// Member position of `rank` in this group (its rank-order index).
    pub fn member_pos(&self, rank: RankId) -> Option<usize> {
        self.member_of.get(&rank).copied()
    }

    /// Node assignment per member position.
    pub fn node_assignment(&self) -> &[usize] {
        &self.node_of
    }

    pub(crate) fn clock_index_of_member(&self, pos: usize) -> usize {
        self.clock_idx[pos]
    }

    pub(crate) fn node_of_member(&self, pos: usize) -> usize {
        self.node_of[pos]
    }

    pub(crate) fn clock_board(&self) -> &Arc<ClockBoard> {
        &self.clock
    }

    pub(crate) fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    pub(crate) fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    pub(crate) fn hang_timeout(&self) -> Option<Duration> {
        self.hang_timeout
    }

    /// Communicators are shared immutably; configuration changes rebuild
    /// a fresh clone with empty slot state. The child-group list carries
    /// over so parent→child abort/fault propagation survives a rebuild,
    /// and attached gradient ledgers carry over so the in-network tap
    /// survives engine/topology/timeout changes.
    fn rebuild(
        &self,
        timeout: Option<Duration>,
        engine: CollEngine,
        node_of: Vec<usize>,
    ) -> Arc<Self> {
        let fresh = Self::with_parts(
            self.id,
            self.ranks.clone(),
            self.clock_idx.clone(),
            node_of,
            self.ranks_per_node,
            self.clock.clone(),
            self.cost.clone(),
            engine,
            timeout,
        );
        // children strictly before ledgers (both leaf locks, never
        // nested; the grouping keeps the static lock graph acyclic).
        let kids: Vec<Weak<Communicator>> = self.children.lock().clone();
        *fresh.children.lock() = kids;
        let taps: Vec<(usize, Arc<GradLedger>)> = self.ledgers.lock().clone();
        fresh.has_ledgers.store(!taps.is_empty(), Ordering::Release);
        *fresh.ledgers.lock() = taps;
        fresh
    }

    /// Sets a real-time hang timeout: a rank blocked longer than this
    /// returns [`SimError::CollectiveTimeout`] instead of waiting for an
    /// abort. (The transparent design leaves this unset and relies on the
    /// proxy watchdog + abort instead.)
    pub fn set_hang_timeout(self: &Arc<Self>, timeout: Option<Duration>) -> Arc<Self> {
        self.rebuild(timeout, self.engine, self.node_of.clone())
    }

    /// Selects the data-plane engine (chunked ring by default; the slot
    /// reference is kept for bit-identity checks and benchmarking).
    pub fn set_engine(self: &Arc<Self>, engine: CollEngine) -> Arc<Self> {
        self.rebuild(self.hang_timeout, engine, self.node_of.clone())
    }

    /// Installs real placement knowledge: `node_of[i]` is the node id of
    /// member `i` (`Cluster::node_assignment`). Replaces the contiguous
    /// `ranks_per_node` fallback; hop classes, inter-hop counts, and the
    /// hierarchical node sizes are all re-derived from it.
    pub fn set_topology(self: &Arc<Self>, node_of: Vec<usize>) -> Arc<Self> {
        assert_eq!(
            node_of.len(),
            self.ranks.len(),
            "one node id per group member"
        );
        self.rebuild(self.hang_timeout, self.engine, node_of)
    }

    /// The data-plane engine in effect.
    pub fn engine(&self) -> CollEngine {
        self.engine
    }

    /// Attaches `rank`'s in-network gradient ledger: every data-carrying
    /// generation that completes from now on is recorded into it (an
    /// `Arc` bump plus shard-range metadata — no extra sends, no copy).
    /// Re-attaching a member replaces its previous ledger. The
    /// attachment survives [`Communicator::set_engine`] /
    /// [`Communicator::set_topology`] / timeout rebuilds.
    pub fn attach_ledger(&self, rank: RankId, ledger: Arc<GradLedger>) -> SimResult<()> {
        let pos = self.member_pos(rank).ok_or_else(|| {
            SimError::Protocol(format!(
                "{rank} is not a member of communicator {}",
                self.id
            ))
        })?;
        let mut taps = self.ledgers.lock();
        taps.retain(|(p, _)| *p != pos);
        taps.push((pos, ledger));
        drop(taps);
        self.has_ledgers.store(true, Ordering::Release);
        Ok(())
    }

    /// The ledger attached for `rank`, if any.
    pub fn ledger_of(&self, rank: RankId) -> Option<Arc<GradLedger>> {
        let pos = self.member_pos(rank)?;
        self.ledgers
            .lock()
            .iter()
            .find(|(p, _)| *p == pos)
            .map(|(_, l)| l.clone())
    }

    /// The in-network tap: records a completed generation's result into
    /// every attached ledger. Runs on the completion paths *after* the
    /// state guard drops (both tap locks are leaves, never nested);
    /// [`GradLedger::record`] is idempotent per generation, so every
    /// member thread exiting the collective may call this safely.
    fn tap_gen(&self, gen: u64) {
        if !self.has_ledgers.load(Ordering::Acquire) {
            return;
        }
        let (kind, result) = {
            let st = self.state.lock();
            let Some(slot) = st.slots.get(&gen) else {
                return;
            };
            if !slot.complete {
                return;
            }
            (slot.kind, slot.result.clone())
        };
        let Some(result) = result else { return };
        if matches!(kind, CollKind::Barrier | CollKind::Rendezvous) {
            return; // No data plane to tap.
        }
        // Ledgers strictly after state (state → children → ledgers is
        // the global order; both tap locks are leaves).
        let taps: Vec<(usize, Arc<GradLedger>)> = self.ledgers.lock().clone();
        if taps.is_empty() {
            return;
        }
        let n = self.ranks.len();
        for (pos, ledger) in taps {
            ledger.record(gen, kind, pos, n, result.clone());
        }
    }

    /// True once the communicator has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Aborts the communicator: every current and future waiter returns
    /// [`SimError::CollectiveAborted`], and the abort propagates to every
    /// live child group (a dead parent cannot bootstrap its children —
    /// NCCL aborts split comms with their parent). Idempotent.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        {
            // Completion waits are purely notify-driven, so the notify must
            // be ordered against the waiters' abort check: holding the state
            // lock guarantees any rank that saw `aborted == false` has since
            // parked and receives this wake-up (no lost-wakeup window).
            let _st = self.state.lock();
            self.cv.notify_all();
            self.obs_cv.notify_all();
        }
        // Snapshot the children under their own (leaf) lock, then abort
        // outside it: no lock is held across the recursive calls.
        let kids: Vec<Arc<Communicator>> = {
            self.children
                .lock()
                .iter()
                .filter_map(Weak::upgrade)
                .collect()
        };
        for child in kids {
            child.abort();
        }
    }

    /// Registers a split child for abort/fault propagation.
    pub(crate) fn add_child(&self, child: &Arc<Communicator>) {
        let mut kids = self.children.lock();
        kids.retain(|w| w.upgrade().is_some());
        kids.push(Arc::downgrade(child));
    }

    /// Live (still-referenced) child groups split off this communicator.
    pub fn live_children(&self) -> usize {
        self.children
            .lock()
            .iter()
            .filter(|w| w.upgrade().is_some())
            .count()
    }

    /// Blocks until at least `n` member threads are parked inside a
    /// collective wait, or `timeout` elapses (returns `false` on
    /// timeout). This is the §3.1 hang signature made observable:
    /// harnesses and tests wait on the same condvar the parked ranks
    /// use instead of sleeping an arbitrary wall-clock interval and
    /// hoping the ranks have arrived.
    pub fn wait_for_parked(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.parked < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.obs_cv.wait_for(&mut st, deadline - now);
        }
        true
    }

    /// Arms a one-shot transient network fault against `victim`: at the
    /// next collective on this communicator, the victim's NCCL call fails
    /// with [`SimError::NetworkTransient`] while every other member hangs
    /// at the barrier — exactly how a single NIC/link fault manifests in
    /// a real job (§3.1: the victim sees an error, peers see a hang). The
    /// fault propagates to child groups the victim belongs to: a dead
    /// link fails every communicator routed over it.
    pub fn inject_transient_fault(&self, victim: RankId) {
        {
            let mut st = self.state.lock();
            st.pending_fault = Some(victim);
            self.cv.notify_all();
        }
        let kids: Vec<Arc<Communicator>> = {
            self.children
                .lock()
                .iter()
                .filter_map(Weak::upgrade)
                .collect()
        };
        for child in kids {
            if child.contains(victim) {
                child.inject_transient_fault(victim);
            }
        }
    }

    fn coll_cost(&self, kind: CollKind, bytes: u64) -> simcore::SimTime {
        let n = self.ranks.len();
        match kind {
            CollKind::AllReduce => match self.engine {
                CollEngine::Slot => self.cost.all_reduce(bytes, n, self.ranks_per_node),
                CollEngine::Ring(_) => self.cost.ring_all_reduce(bytes, n, self.inter_hops),
                CollEngine::Hier(_) => self.cost.hier_all_reduce(bytes, &self.node_sizes),
            },
            CollKind::AllGather | CollKind::ReduceScatter | CollKind::Broadcast => {
                match self.engine {
                    CollEngine::Slot => self.cost.all_gather(bytes, n, self.ranks_per_node),
                    CollEngine::Ring(_) => self.cost.ring_all_gather(bytes, n, self.inter_hops),
                    CollEngine::Hier(_) => self.cost.hier_all_gather(bytes, &self.node_sizes),
                }
            }
            CollKind::Barrier => simcore::SimTime::from_secs(
                self.cost.coll_latency.as_secs() * (n as f64).log2().ceil().max(1.0),
            ),
            // One parent rendezvous bootstraps every live child group in
            // the same barrier: split comms share the parent's bootstrap
            // ring instead of each paying a fresh condvar park + init
            // round, so the simulated cost scales with the group count
            // while the rank threads park exactly once.
            CollKind::Rendezvous => simcore::SimTime::from_secs(
                self.cost.comm_init.as_secs() * (1.0 + self.live_children() as f64),
            ),
        }
    }

    /// Copies the predecessor communicator's completed-slot cache into
    /// this (freshly created) communicator, so replayed operations can be
    /// served without re-participation after recovery.
    pub fn adopt_completed_from(&self, old: &Communicator) {
        let old_state = old.state.lock();
        let mut st = self.state.lock();
        for (gen, slot) in old_state.slots.iter() {
            if slot.complete {
                st.slots.insert(*gen, slot.clone());
            }
        }
    }

    /// Number of cached completed slots (tests / diagnostics).
    pub fn completed_slots(&self) -> usize {
        self.state
            .lock()
            .slots
            .values()
            .filter(|s| s.complete)
            .count()
    }

    /// Drops cached slots with `gen < floor` (memory hygiene on very long
    /// jobs; recovery never replays past the previous minibatch).
    pub fn prune_below(&self, floor: u64) {
        let mut st = self.state.lock();
        st.slots.retain(|g, _| *g >= floor);
        // Completion waits are notify-driven: wake parked ranks so anyone
        // whose (incomplete) slot was just pruned reports the protocol
        // error instead of sleeping forever.
        self.cv.notify_all();
    }

    /// Chunk granularity and worker bound for the streaming fold, per the
    /// engine and this group's slowest hop class.
    fn stream_plan(&self) -> (usize, usize) {
        match self.engine {
            CollEngine::Ring(cfg) => (cfg.chunk_elems(self.inter_hops > 0), cfg.workers),
            // The hierarchical data plane is blocked at NVLink granularity:
            // the intra-node phases carry 2·(m−1)/m of the volume.
            CollEngine::Hier(cfg) => (cfg.chunk_elems(false), cfg.workers),
            CollEngine::Slot => (usize::MAX, 1),
        }
    }

    /// Core matched-collective protocol. Returns the operation result for
    /// this rank.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        rank: RankId,
        gen: u64,
        kind: CollKind,
        op: Option<ReduceOp>,
        root: Option<RankId>,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        let pos = self.member_pos(rank).ok_or_else(|| {
            SimError::Protocol(format!(
                "{rank} is not a member of communicator {}",
                self.id
            ))
        })?;
        {
            // Serve a cached completed slot without blocking or aborting:
            // this is a replayed operation.
            let st = self.state.lock();
            if let Some(slot) = st.slots.get(&gen) {
                if slot.complete {
                    if slot.kind != kind || slot.op != op || slot.root != root {
                        return Err(SimError::Protocol(format!(
                            "replayed collective mismatch at gen {gen} on {}",
                            self.id
                        )));
                    }
                    return Ok(slot.result.clone().expect("completed slot has result"));
                }
            }
        }
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        let ticket = CollectiveTicket {
            comm: self.id,
            generation: gen,
            rank,
            kind,
            entered_at: Instant::now(),
        };
        // Observer callbacks run outside the state lock: the hang
        // watchdog's observer takes its own `outstanding` lock, and
        // calling into it with `state` held would hold one lock across a
        // module that takes another (`guard_across_call`). Registering
        // the ticket a moment before entering the slot (and clearing it a
        // moment after leaving) only widens the watchdog's view of the
        // collective, which is the conservative direction.
        obs.collective_started(&ticket);
        let contrib = match data {
            Some(v) => Contribution::Data(v),
            None => Contribution::Empty,
        };
        let mut st = self.state.lock();
        let result = self.run_inner(
            &mut st,
            pos,
            rank,
            gen,
            kind,
            op,
            root,
            contrib,
            logical_bytes,
        );
        drop(st);
        obs.collective_finished(&ticket);
        if result.is_ok() {
            // In-network gradient tap (no-op unless ledgers are
            // attached); runs with no lock held.
            self.tap_gen(gen);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        st: &mut simcore::sync::MutexGuard<'_, CommState>,
        pos: usize,
        rank: RankId,
        gen: u64,
        kind: CollKind,
        op: Option<ReduceOp>,
        root: Option<RankId>,
        contrib: Contribution<'_>,
        logical_bytes: u64,
    ) -> SimResult<Arc<Vec<f32>>> {
        let complete = self.arrive(st, pos, rank, gen, kind, op, root, contrib, logical_bytes)?;
        if !complete {
            // Wait for completion, abort, or (optionally) hang timeout.
            // Completion is checked BEFORE abort: an operation that
            // finished must report success even if the communicator was
            // aborted an instant later (otherwise a racing abort makes a
            // rank believe its already-completed iteration failed, and
            // ranks enter recovery desynchronized by one iteration).
            let started = Instant::now();
            loop {
                {
                    let slot = st.slots.get(&gen).ok_or_else(|| {
                        SimError::Protocol(format!("slot {gen} vanished on {}", self.id))
                    })?;
                    if slot.complete {
                        break;
                    }
                }
                if self.is_aborted() {
                    return Err(SimError::CollectiveAborted);
                }
                if let Some(limit) = self.hang_timeout {
                    if started.elapsed() >= limit {
                        return Err(SimError::CollectiveTimeout { rank });
                    }
                }
                // Purely notify-driven wait: completion, abort, fault
                // injection, and prune all notify under the state lock, so
                // there is no lost-wakeup window and no poll quantum on the
                // hot path. With a hang timeout armed, wait exactly the
                // remaining budget instead.
                st.parked += 1;
                self.obs_cv.notify_all(); // Wake `wait_for_parked` observers.
                match self.hang_timeout {
                    None => {
                        self.cv.wait(st);
                    }
                    Some(limit) => {
                        self.cv
                            .wait_for(st, limit.saturating_sub(started.elapsed()));
                    }
                }
                st.parked -= 1;
            }
        }
        // Pick up the result; completed slots stay cached for replay.
        let slot = st.slots.get(&gen).expect("completed slot");
        slot.result
            .clone()
            .ok_or_else(|| SimError::Protocol("completed slot without result".into()))
    }

    /// Installs/joins the slot for `gen` and records this member's
    /// contribution; returns `true` if the collective completed (this
    /// arrival was the last). Shared by the blocking protocol and the
    /// non-blocking offer path.
    #[allow(clippy::too_many_arguments)]
    fn arrive(
        &self,
        st: &mut simcore::sync::MutexGuard<'_, CommState>,
        pos: usize,
        rank: RankId,
        gen: u64,
        kind: CollKind,
        op: Option<ReduceOp>,
        root: Option<RankId>,
        contrib: Contribution<'_>,
        logical_bytes: u64,
    ) -> SimResult<bool> {
        let n = self.ranks.len();
        // Install or join the slot for this generation. An armed transient
        // fault is consumed by the slot *creation* (the fault hits the next
        // collective that starts).
        if !st.slots.contains_key(&gen) {
            let fault_victim = st.pending_fault.take();
            let data = match (self.engine, kind) {
                (
                    CollEngine::Ring(_) | CollEngine::Hier(_),
                    CollKind::AllReduce | CollKind::ReduceScatter,
                ) => SlotData::Streaming {
                    acc: Vec::new(),
                    folded: 0,
                    parked: BTreeMap::new(),
                },
                _ => SlotData::Parked {
                    contribs: vec![None; n],
                    arrived: 0,
                },
            };
            st.slots.insert(
                gen,
                Slot {
                    kind,
                    op,
                    root,
                    data,
                    logical_bytes: 0,
                    complete: false,
                    fault_victim,
                    result: None,
                },
            );
        }
        let slot = st.slots.get_mut(&gen).expect("slot just inserted");
        if slot.kind != kind || slot.op != op || slot.root != root {
            return Err(SimError::Protocol(format!(
                "mismatched collective at gen {gen} on {}: {:?} vs {:?}",
                self.id, slot.kind, kind
            )));
        }
        if slot.fault_victim == Some(rank) {
            // The victim's NCCL call fails; it never contributes, so the
            // other members stay parked at the barrier (a hang) until the
            // watchdog aborts the communicator.
            return Err(SimError::NetworkTransient);
        }
        if slot.complete {
            // Completed between the caller's replay-cache check and the
            // state lock: the cached result serves this re-arrival.
            return Ok(true);
        }
        slot.logical_bytes = slot.logical_bytes.max(logical_bytes);
        match &mut slot.data {
            SlotData::Parked { contribs, arrived } => {
                if contribs[pos].is_none() {
                    *arrived += 1;
                }
                // Re-arrivals overwrite identically (idempotent replay).
                contribs[pos] = Some(contrib.into_parked());
                if *arrived < n {
                    return Ok(false);
                }
            }
            SlotData::Streaming {
                acc,
                folded,
                parked,
            } => {
                let (chunk_elems, workers) = self.stream_plan();
                let op = op.ok_or_else(|| {
                    SimError::Protocol("streaming collective without reduce op".into())
                })?;
                if pos < *folded {
                    // Already folded into the accumulator: a replayed
                    // re-contribution is identical by the idempotency
                    // contract, so there is nothing to redo.
                } else if pos == *folded {
                    match contrib {
                        // The member-order first buffer *becomes* the
                        // accumulator — no zero-fill, no seed memcpy.
                        Contribution::Data(v) if *folded == 0 => *acc = v,
                        Contribution::Borrowed(s) if *folded == 0 => *acc = s.to_vec(),
                        Contribution::Data(ref v) => {
                            ring::accumulate_into(acc, &[v.as_slice()], op, chunk_elems, workers)?
                        }
                        Contribution::Borrowed(s) => {
                            ring::accumulate_into(acc, &[s], op, chunk_elems, workers)?
                        }
                        Contribution::Empty => {
                            return Err(SimError::Protocol("missing contribution".into()))
                        }
                    }
                    *folded += 1;
                    // Drain the contiguous run of parked successors in one
                    // chunk-parallel fold (4-wide peer streams, same
                    // member-order association as one-at-a-time folds).
                    let mut run: Vec<Vec<f32>> = Vec::new();
                    while let Some(v) = parked.remove(&(*folded + run.len())) {
                        run.push(v);
                    }
                    if !run.is_empty() {
                        let slices: Vec<&[f32]> = run.iter().map(|v| v.as_slice()).collect();
                        ring::accumulate_into(acc, &slices, op, chunk_elems, workers)?;
                        *folded += run.len();
                    }
                } else {
                    let v = contrib
                        .into_parked()
                        .ok_or_else(|| SimError::Protocol("missing contribution".into()))?;
                    // Out-of-order: park an owned copy until the fold
                    // front reaches this member position.
                    parked.insert(pos, v);
                }
                if *folded < n {
                    return Ok(false);
                }
            }
        }
        // Last arrival: finalize deterministically and advance every
        // member's clock past the barrier.
        self.finalize(st, gen, kind)?;
        Ok(true)
    }

    /// Completes a slot whose every member has arrived: materializes the
    /// result, charges the engine's simulated cost as a clock barrier,
    /// and wakes the waiters.
    fn finalize(
        &self,
        st: &mut simcore::sync::MutexGuard<'_, CommState>,
        gen: u64,
        kind: CollKind,
    ) -> SimResult<()> {
        let n = self.ranks.len();
        let slot = st.slots.get_mut(&gen).expect("finalizing slot");
        let op = slot.op;
        let root = slot.root;
        let result = match &mut slot.data {
            SlotData::Streaming { acc, .. } => {
                let mut out = std::mem::take(acc);
                if op == Some(ReduceOp::Avg) {
                    // Scaled exactly once, after all n folds — the point
                    // where eager streaming and the monolithic reference
                    // meet bit-for-bit.
                    ring::scale_in_place(&mut out, n);
                }
                if kind == CollKind::ReduceScatter && out.len() % n != 0 {
                    return Err(SimError::Protocol(format!(
                        "reduce-scatter length {} not divisible by {n}",
                        out.len()
                    )));
                }
                out
            }
            SlotData::Parked { contribs, .. } => {
                finalize_parked(kind, op, root.and_then(|r| self.member_pos(r)), contribs, n)?
            }
        };
        slot.result = Some(Arc::new(result));
        slot.complete = true;
        let cost = self.coll_cost(kind, slot.logical_bytes);
        self.clock.barrier_sync(&self.clock_idx, cost);
        self.cv.notify_all();
        Ok(())
    }

    /// Non-blocking contribution to an all-reduce at `gen` on behalf of
    /// `rank`: records (or folds) the contribution and returns whether
    /// the collective completed, without ever parking the calling thread.
    ///
    /// This is the multiplexed data plane for large simulated worlds: one
    /// driver thread offers for thousands of ranks in member order — each
    /// in-order offer folds straight into the accumulator from the
    /// caller's slice (no per-rank buffer retention, no per-rank OS
    /// thread) — and collects the result via
    /// [`Communicator::try_result`]. Fault and abort semantics match the
    /// blocking path: an armed transient fault fails the victim's offer
    /// with [`SimError::NetworkTransient`].
    pub fn offer_reduce(
        &self,
        rank: RankId,
        gen: u64,
        data: &[f32],
        op: ReduceOp,
        logical_bytes: u64,
    ) -> SimResult<bool> {
        let pos = self.member_pos(rank).ok_or_else(|| {
            SimError::Protocol(format!(
                "{rank} is not a member of communicator {}",
                self.id
            ))
        })?;
        {
            let st = self.state.lock();
            if let Some(slot) = st.slots.get(&gen) {
                if slot.complete {
                    if slot.kind != CollKind::AllReduce
                        || slot.op != Some(op)
                        || slot.root.is_some()
                    {
                        return Err(SimError::Protocol(format!(
                            "replayed collective mismatch at gen {gen} on {}",
                            self.id
                        )));
                    }
                    return Ok(true);
                }
            }
        }
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        let mut st = self.state.lock();
        let complete = self.arrive(
            &mut st,
            pos,
            rank,
            gen,
            CollKind::AllReduce,
            Some(op),
            None,
            Contribution::Borrowed(data),
            logical_bytes,
        )?;
        drop(st);
        if complete {
            // The offered-driver fold point: the completing offer taps
            // the finalized result for every attached ledger.
            self.tap_gen(gen);
        }
        Ok(complete)
    }

    /// The completed result of generation `gen`, if any. `Ok(None)` means
    /// the collective is still in flight; an aborted communicator with an
    /// incomplete slot reports [`SimError::CollectiveAborted`].
    pub fn try_result(&self, gen: u64) -> SimResult<Option<Arc<Vec<f32>>>> {
        {
            let st = self.state.lock();
            if let Some(slot) = st.slots.get(&gen) {
                if slot.complete {
                    return slot
                        .result
                        .clone()
                        .map(Some)
                        .ok_or_else(|| SimError::Protocol("completed slot without result".into()));
                }
            }
        }
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        Ok(None)
    }

    /// All-reduce at sequence number `gen`: every rank contributes an
    /// equal-length vector, every rank receives the reduction.
    /// `logical_bytes` drives the cost model (phantom scaling).
    ///
    /// Delivers a private copy per rank (the seed's slot semantics); the
    /// hot path uses [`Communicator::all_reduce_shared`] instead.
    pub fn all_reduce(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        op: ReduceOp,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.all_reduce_shared(rank, gen, data, op, logical_bytes, obs)?;
        Ok((*res).clone())
    }

    /// All-reduce with zero-copy shared delivery: every rank receives the
    /// same immutable `Arc` of the reduction instead of a private
    /// full-vector clone — the ring engine's delivery contract.
    pub fn all_reduce_shared(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        op: ReduceOp,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        self.run(
            rank,
            gen,
            CollKind::AllReduce,
            Some(op),
            None,
            Some(data),
            logical_bytes,
            obs,
        )
    }

    /// All-gather: concatenation of all contributions in rank order.
    pub fn all_gather(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.all_gather_shared(rank, gen, data, logical_bytes, obs)?;
        Ok((*res).clone())
    }

    /// All-gather with zero-copy shared delivery.
    pub fn all_gather_shared(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        self.run(
            rank,
            gen,
            CollKind::AllGather,
            None,
            None,
            Some(data),
            logical_bytes,
            obs,
        )
    }

    /// Reduce-scatter: reduce all contributions, then return this rank's
    /// equal shard (by member position). Contribution length must divide
    /// evenly by group size.
    pub fn reduce_scatter(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        op: ReduceOp,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.run(
            rank,
            gen,
            CollKind::ReduceScatter,
            Some(op),
            None,
            Some(data),
            logical_bytes,
            obs,
        )?;
        let n = self.ranks.len();
        let shard = res.len() / n;
        let pos = self.member_pos(rank).expect("membership checked");
        Ok(res[pos * shard..(pos + 1) * shard].to_vec())
    }

    /// Broadcast from `root`; non-root ranks pass `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast(
        &self,
        rank: RankId,
        gen: u64,
        root: RankId,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.broadcast_shared(rank, gen, root, data, logical_bytes, obs)?;
        Ok((*res).clone())
    }

    /// Broadcast with zero-copy shared delivery.
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast_shared(
        &self,
        rank: RankId,
        gen: u64,
        root: RankId,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        self.run(
            rank,
            gen,
            CollKind::Broadcast,
            None,
            Some(root),
            data,
            logical_bytes,
            obs,
        )
    }

    /// Barrier across the group.
    pub fn barrier(&self, rank: RankId, gen: u64, obs: &dyn CollectiveObserver) -> SimResult<()> {
        self.run(rank, gen, CollKind::Barrier, None, None, None, 0, obs)?;
        Ok(())
    }

    /// Rendezvous: the communicator-initialization barrier, costed as the
    /// NCCL bootstrap (the dominant step in Table 7's recovery breakdown).
    /// A parent rendezvous also bootstraps its live child groups — see
    /// `CommWorld::split_comm`.
    pub fn rendezvous(
        &self,
        rank: RankId,
        gen: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<()> {
        self.run(rank, gen, CollKind::Rendezvous, None, None, None, 0, obs)?;
        Ok(())
    }
}

/// Completes a parked slot: the member-order monolithic reference
/// reduction (the `Slot` engine, and gather/broadcast/barrier under every
/// engine). `root_pos` is the broadcast root's member position.
fn finalize_parked(
    kind: CollKind,
    op: Option<ReduceOp>,
    root_pos: Option<usize>,
    contribs: &mut [Option<Option<Vec<f32>>>],
    n: usize,
) -> SimResult<Vec<f32>> {
    match kind {
        CollKind::AllReduce | CollKind::ReduceScatter => {
            let op = op.expect("reduce op present");
            // The member-order first buffer is taken by value and becomes
            // the accumulator; nothing reads parked contributions after
            // completion (replay serves the cached result).
            let mut acc = contribs
                .first_mut()
                .and_then(|c| c.take())
                .flatten()
                .ok_or_else(|| SimError::Protocol("reduce without contribution".into()))?;
            let len = acc.len();
            for c in &contribs[1..] {
                let d = c
                    .as_ref()
                    .and_then(|d| d.as_ref())
                    .ok_or_else(|| SimError::Protocol("missing contribution".into()))?;
                if d.len() != len {
                    return Err(SimError::Protocol(format!(
                        "ragged collective: {} vs {}",
                        d.len(),
                        len
                    )));
                }
                for (a, b) in acc.iter_mut().zip(d) {
                    match op {
                        ReduceOp::Sum | ReduceOp::Avg => *a += b,
                        ReduceOp::Max => *a = a.max(*b),
                    }
                }
            }
            if op == ReduceOp::Avg {
                ring::scale_in_place(&mut acc, n);
            }
            if kind == CollKind::ReduceScatter && len % n != 0 {
                return Err(SimError::Protocol(format!(
                    "reduce-scatter length {len} not divisible by {n}"
                )));
            }
            Ok(acc)
        }
        CollKind::AllGather => {
            let mut refs: Vec<&[f32]> = Vec::with_capacity(n);
            for c in contribs.iter() {
                refs.push(
                    c.as_ref()
                        .and_then(|d| d.as_deref())
                        .ok_or_else(|| SimError::Protocol("missing contribution".into()))?,
                );
            }
            Ok(ring::gather_chunked(&refs))
        }
        CollKind::Broadcast => root_pos
            .and_then(|p| contribs.get_mut(p))
            .and_then(|c| c.take())
            .flatten()
            .ok_or_else(|| SimError::Protocol("broadcast root contributed no data".into())),
        CollKind::Barrier | CollKind::Rendezvous => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use std::thread;

    fn make_comm(n: usize) -> Arc<Communicator> {
        let clock = Arc::new(ClockBoard::new(n));
        Communicator::new(
            CommId(0),
            (0..n).map(|i| RankId(i as u32)).collect(),
            (0..n).collect(),
            8,
            clock,
            CostModel::v100(),
        )
    }

    fn spawn_ranks<F, R>(n: usize, f: F) -> Vec<SimResult<R>>
    where
        F: Fn(usize) -> SimResult<R> + Send + Sync + 'static,
        R: Send + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let f = f.clone();
                thread::spawn(move || f(i))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let comm = make_comm(4);
        let c = comm.clone();
        let results = spawn_ranks(4, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![i as f32, 1.0],
                ReduceOp::Sum,
                8,
                &NullObserver,
            )
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![6.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_avg() {
        let comm = make_comm(2);
        let c = comm.clone();
        let results = spawn_ranks(2, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![(i * 2) as f32],
                ReduceOp::Avg,
                4,
                &NullObserver,
            )
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![1.0]);
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let comm = make_comm(3);
        let c = comm.clone();
        let results = spawn_ranks(3, move |i| {
            c.all_gather(RankId(i as u32), 0, vec![i as f32], 4, &NullObserver)
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn reduce_scatter_shards() {
        let comm = make_comm(2);
        let c = comm.clone();
        let results: Vec<_> = spawn_ranks(2, move |i| {
            c.reduce_scatter(
                RankId(i as u32),
                0,
                vec![1.0, 2.0, 3.0, 4.0],
                ReduceOp::Sum,
                16,
                &NullObserver,
            )
            .map(|v| (i, v))
        });
        for r in results {
            let (i, v) = r.unwrap();
            if i == 0 {
                assert_eq!(v, vec![2.0, 4.0]);
            } else {
                assert_eq!(v, vec![6.0, 8.0]);
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let comm = make_comm(3);
        let c = comm.clone();
        let results = spawn_ranks(3, move |i| {
            let data = if i == 1 { Some(vec![7.0, 8.0]) } else { None };
            c.broadcast(RankId(i as u32), 0, RankId(1), data, 8, &NullObserver)
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![7.0, 8.0]);
        }
    }

    #[test]
    fn missing_rank_hangs_until_abort() {
        // Rank 1 never arrives; ranks 0 and 2 must block, then an abort
        // releases them with CollectiveAborted — the §3.1 hang signature.
        let comm = make_comm(3);
        let c0 = comm.clone();
        let h0 = thread::spawn(move || {
            c0.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        let c2 = comm.clone();
        let h2 = thread::spawn(move || {
            c2.all_reduce(RankId(2), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(comm.wait_for_parked(2, Duration::from_secs(5)));
        assert!(!h0.is_finished(), "rank 0 must be parked at the barrier");
        assert!(!h2.is_finished(), "rank 2 must be parked at the barrier");
        comm.abort();
        assert_eq!(h0.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
        assert_eq!(h2.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
    }

    #[test]
    fn hang_timeout_surfaces_peer_failure() {
        let comm = make_comm(2).set_hang_timeout(Some(Duration::from_millis(30)));
        let c = comm.clone();
        let h = thread::spawn(move || {
            c.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, SimError::CollectiveTimeout { rank } if rank == RankId(0)));
    }

    /// All three data-plane engines, with ring configs that force
    /// multi-chunk schedules on tiny payloads.
    fn engines() -> [CollEngine; 3] {
        [
            CollEngine::Slot,
            CollEngine::Ring(ring::RingConfig::uniform(8, 2)),
            CollEngine::Hier(ring::RingConfig::uniform(8, 2)),
        ]
    }

    #[test]
    fn hang_and_abort_observables_are_engine_invariant() {
        // The ring/hier engines replace only the data plane; a rank
        // failing mid-step must leave peers with exactly the slot
        // protocol's §3.1 observables — parked at the barrier, then
        // released by abort with CollectiveAborted.
        for engine in engines() {
            let comm = make_comm(3).set_engine(engine);
            let c0 = comm.clone();
            let h0 = thread::spawn(move || {
                c0.all_reduce(
                    RankId(0),
                    0,
                    vec![1.0; 16],
                    ReduceOp::Sum,
                    64,
                    &NullObserver,
                )
            });
            let c2 = comm.clone();
            let h2 = thread::spawn(move || {
                c2.all_reduce(
                    RankId(2),
                    0,
                    vec![1.0; 16],
                    ReduceOp::Sum,
                    64,
                    &NullObserver,
                )
            });
            assert!(comm.wait_for_parked(2, Duration::from_secs(5)));
            assert!(!h0.is_finished(), "rank 0 must be parked ({engine:?})");
            assert!(!h2.is_finished(), "rank 2 must be parked ({engine:?})");
            comm.abort();
            assert_eq!(h0.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
            assert_eq!(h2.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
        }
    }

    #[test]
    fn hang_timeout_is_engine_invariant() {
        for engine in engines() {
            let comm = make_comm(2)
                .set_engine(engine)
                .set_hang_timeout(Some(Duration::from_millis(30)));
            let c = comm.clone();
            let h = thread::spawn(move || {
                c.all_reduce(
                    RankId(0),
                    0,
                    vec![1.0; 16],
                    ReduceOp::Sum,
                    64,
                    &NullObserver,
                )
            });
            let err = h.join().unwrap().unwrap_err();
            assert!(
                matches!(err, SimError::CollectiveTimeout { rank } if rank == RankId(0)),
                "unexpected {err:?} under {engine:?}"
            );
        }
    }

    #[test]
    fn transient_fault_errors_victim_and_hangs_peers() {
        let comm = make_comm(2);
        comm.inject_transient_fault(RankId(0));
        // Victim gets the NCCL error immediately.
        let c0 = comm.clone();
        let h0 = thread::spawn(move || {
            c0.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert_eq!(h0.join().unwrap().unwrap_err(), SimError::NetworkTransient);
        // The peer hangs at the barrier until aborted.
        let c1 = comm.clone();
        let h1 = thread::spawn(move || {
            c1.all_reduce(RankId(1), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(comm.wait_for_parked(1, Duration::from_secs(5)));
        assert!(!h1.is_finished(), "peer must hang");
        comm.abort();
        assert_eq!(h1.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
    }

    #[test]
    fn transient_fault_is_one_shot() {
        let comm = make_comm(2);
        comm.inject_transient_fault(RankId(0));
        // Victim consumes the fault...
        let c0 = comm.clone();
        let h0 = thread::spawn(move || {
            c0.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(h0.join().unwrap().is_err());
        // ...but peers of that generation are parked; use a fresh comm
        // (recovery recreates communicators) to check the fault cleared.
        let comm2 = make_comm(2);
        let c = comm2.clone();
        let results = spawn_ranks(2, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![1.0],
                ReduceOp::Sum,
                4,
                &NullObserver,
            )
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![2.0]);
        }
    }

    #[test]
    fn completion_advances_all_clocks_past_barrier() {
        let n = 2;
        let clock = Arc::new(ClockBoard::new(n));
        clock.raise_to(0, simcore::SimTime::from_secs(1.0));
        clock.raise_to(1, simcore::SimTime::from_secs(3.0));
        let comm = Communicator::new(
            CommId(0),
            vec![RankId(0), RankId(1)],
            vec![0, 1],
            8,
            clock.clone(),
            CostModel::v100(),
        );
        let c = comm.clone();
        spawn_ranks(2, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![0.0; 256],
                ReduceOp::Sum,
                1 << 20,
                &NullObserver,
            )
        })
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // Both clocks equal and past the straggler's arrival time.
        let t0 = clock.now(0).as_secs();
        let t1 = clock.now(1).as_secs();
        assert!((t0 - t1).abs() < 1e-12);
        assert!(t0 > 3.0);
    }

    #[test]
    fn consecutive_collectives_use_fresh_generations() {
        let comm = make_comm(2);
        for round in 0..5 {
            let c = comm.clone();
            let results = spawn_ranks(2, move |i| {
                c.all_reduce(
                    RankId(i as u32),
                    round as u64,
                    vec![(round + i) as f32],
                    ReduceOp::Sum,
                    4,
                    &NullObserver,
                )
            });
            for r in results {
                assert_eq!(r.unwrap(), vec![(2 * round + 1) as f32]);
            }
        }
    }

    #[test]
    fn non_member_rank_is_rejected() {
        let comm = make_comm(2);
        let err = comm
            .all_reduce(RankId(9), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
            .unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)));
    }

    #[test]
    fn aborted_comm_rejects_new_operations() {
        let comm = make_comm(2);
        comm.abort();
        let err = comm.barrier(RankId(0), 0, &NullObserver).unwrap_err();
        assert_eq!(err, SimError::CollectiveAborted);
    }

    #[test]
    fn rendezvous_charges_comm_init_cost() {
        let n = 2;
        let clock = Arc::new(ClockBoard::new(n));
        let comm = Communicator::new(
            CommId(0),
            vec![RankId(0), RankId(1)],
            vec![0, 1],
            8,
            clock.clone(),
            CostModel::v100(),
        );
        let c = comm.clone();
        spawn_ranks(2, move |i| c.rendezvous(RankId(i as u32), 0, &NullObserver))
            .into_iter()
            .for_each(|r| r.unwrap());
        // comm_init for V100 is 1.0 s.
        assert!((clock.now(0).as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn offered_reduce_completes_without_blocking() {
        // One driver thread contributes for every rank via the offer API:
        // out-of-order offers park, in-order offers fold, and the result
        // is bit-identical to the blocking path's member-order fold.
        for engine in engines() {
            let comm = make_comm(4).set_engine(engine);
            let rows: Vec<Vec<f32>> = (0..4)
                .map(|r| (0..33).map(|i| (r * 33 + i) as f32 * 0.13).collect())
                .collect();
            let mut expect = rows[0].clone();
            for row in &rows[1..] {
                for (a, b) in expect.iter_mut().zip(row) {
                    *a += b;
                }
            }
            for r in [2usize, 0, 3] {
                assert!(
                    !comm
                        .offer_reduce(RankId(r as u32), 0, &rows[r], ReduceOp::Sum, 132)
                        .unwrap(),
                    "incomplete until the last member offers ({engine:?})"
                );
                assert!(comm.try_result(0).unwrap().is_none());
            }
            assert!(comm
                .offer_reduce(RankId(1), 0, &rows[1], ReduceOp::Sum, 132)
                .unwrap());
            let got = comm.try_result(0).unwrap().expect("completed");
            assert_eq!(
                got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "offer path must match the blocking fold ({engine:?})"
            );
            // Replayed offers are served from the completed slot.
            assert!(comm
                .offer_reduce(RankId(2), 0, &rows[2], ReduceOp::Sum, 132)
                .unwrap());
        }
    }

    #[test]
    fn offered_reduce_respects_transient_fault() {
        let comm = make_comm(2);
        comm.inject_transient_fault(RankId(1));
        assert!(!comm
            .offer_reduce(RankId(0), 0, &[1.0], ReduceOp::Sum, 4)
            .unwrap());
        let err = comm
            .offer_reduce(RankId(1), 0, &[1.0], ReduceOp::Sum, 4)
            .unwrap_err();
        assert_eq!(err, SimError::NetworkTransient);
        // The slot can never complete; abort surfaces through try_result.
        comm.abort();
        assert_eq!(comm.try_result(0).unwrap_err(), SimError::CollectiveAborted);
    }

    #[test]
    fn hier_engine_charges_two_level_cost() {
        // 16 ranks over 2 nodes of 8: the hier schedule must advance the
        // clocks by exactly hier_all_reduce(bytes, [8, 8]) — cheaper than
        // the flat ring, whose 2·15 steps all pay the NIC.
        let n = 16;
        let cost = CostModel::v100();
        let bytes = 4u64 << 20;
        let clock = Arc::new(ClockBoard::new(n));
        let comm = Communicator::new(
            CommId(0),
            (0..n).map(|i| RankId(i as u32)).collect(),
            (0..n).collect(),
            8,
            clock.clone(),
            cost.clone(),
        )
        .set_engine(CollEngine::Hier(ring::RingConfig::uniform(1024, 2)));
        let c = comm.clone();
        spawn_ranks(n, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![1.0; 64],
                ReduceOp::Sum,
                bytes,
                &NullObserver,
            )
        })
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let want = cost.hier_all_reduce(bytes, &[8, 8]).as_secs();
        let flat = cost.ring_all_reduce(bytes, n, 2).as_secs();
        let got = clock.now(0).as_secs();
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        assert!(want < flat, "hier ({want}) must beat flat ring ({flat})");
    }

    #[test]
    fn set_topology_rederives_hier_schedule() {
        // Scattered placement [0,1,0,1]: no intra-node neighbors, so the
        // hier schedule degenerates to a 2-wide leader ring over 2-rank
        // nodes — derived from the real assignment, not the contiguous
        // heuristic (which would call ranks 0..3 one node).
        let n = 4;
        let cost = CostModel::v100();
        let bytes = 1u64 << 20;
        let clock = Arc::new(ClockBoard::new(n));
        let comm = Communicator::new(
            CommId(0),
            (0..n).map(|i| RankId(i as u32)).collect(),
            (0..n).collect(),
            8,
            clock.clone(),
            cost.clone(),
        )
        .set_engine(CollEngine::Hier(ring::RingConfig::uniform(1024, 2)))
        .set_topology(vec![0, 1, 0, 1]);
        assert_eq!(comm.node_assignment(), &[0, 1, 0, 1]);
        let c = comm.clone();
        spawn_ranks(n, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![1.0; 16],
                ReduceOp::Sum,
                bytes,
                &NullObserver,
            )
        })
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        let want = cost.hier_all_reduce(bytes, &[2, 2]).as_secs();
        let got = clock.now(0).as_secs();
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
    }
}

//! Communicators and collective operations.
//!
//! A [`Communicator`] is the NCCL-communicator equivalent: a fixed group of
//! ranks that issue matching collective calls in the same order. The
//! implementation gives the operations their real distributed-systems
//! semantics:
//!
//! * **barrier completion** — no rank returns until every member arrived;
//! * **hangs** — a member that never arrives parks everyone else on a
//!   condition variable indefinitely;
//! * **abort** — [`Communicator::abort`] (the `ncclCommAbort` equivalent)
//!   wakes all waiters with [`SimError::CollectiveAborted`]; an aborted
//!   communicator is dead and must be re-created via rendezvous;
//! * **deterministic reduction** — contributions are reduced in rank
//!   order, so results are bit-stable across runs (required for the
//!   paper's exact-loss-match validation).
//!
//! Operations are **generation-addressed and idempotent**: the caller (the
//! interception layer) supplies each operation's sequence number `gen`,
//! contributions overwrite identically on re-arrival, and completed slots
//! stay cached. This is what makes replay-based recovery consistent when
//! pipeline stages sit in *different* minibatches at failure time: a rank
//! replaying an already-completed collective is served the cached result
//! without its peers — who may have legitimately moved on — having to
//! re-participate, while a retried incomplete collective reuses its
//! generation and pairs with peers' retries. A re-created communicator
//! adopts its predecessor's completed-slot cache
//! ([`Communicator::adopt_completed_from`]).

use crate::observer::{CollectiveObserver, CollectiveTicket};
use crate::ring::{self, CollEngine};
use crate::world::CommId;
use simcore::cost::CostModel;
use simcore::sync::{Condvar, Mutex};
use simcore::time::ClockBoard;
use simcore::{RankId, SimError, SimResult};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reduction operator for all-reduce / reduce-scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise mean (sum / group size).
    Avg,
    /// Elementwise maximum.
    Max,
}

/// Collective operation kinds (for tickets, validation, and costing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// All-reduce.
    AllReduce,
    /// All-gather (concatenation in rank order).
    AllGather,
    /// Reduce-scatter (reduce then shard).
    ReduceScatter,
    /// Broadcast from a root rank.
    Broadcast,
    /// Pure barrier.
    Barrier,
    /// Communicator-initialization rendezvous (costed as NCCL bootstrap).
    Rendezvous,
}

#[derive(Clone)]
struct Slot {
    kind: CollKind,
    op: Option<ReduceOp>,
    root: Option<RankId>,
    contributions: BTreeMap<RankId, Option<Vec<f32>>>,
    logical_bytes: u64,
    complete: bool,
    fault_victim: Option<RankId>,
    result: Option<Arc<Vec<f32>>>,
}

#[derive(Default)]
struct CommState {
    slots: HashMap<u64, Slot>,
    pending_fault: Option<RankId>,
    /// Member threads currently parked inside a collective wait.
    parked: usize,
}

/// A group of ranks performing matched collective operations.
pub struct Communicator {
    /// Communicator identity.
    pub id: CommId,
    ranks: Vec<RankId>,
    clock_idx: HashMap<RankId, usize>,
    ranks_per_node: usize,
    clock: Arc<ClockBoard>,
    cost: CostModel,
    state: Mutex<CommState>,
    cv: Condvar,
    /// Separate condvar for `wait_for_parked` observers, so a rank
    /// parking does not thundering-herd every other parked rank awake.
    obs_cv: Condvar,
    aborted: AtomicBool,
    hang_timeout: Option<Duration>,
    engine: CollEngine,
    /// Per-hop link class of the rank-order ring (`true` = intra-node);
    /// drives the ring cost model. Defaults to contiguous placement,
    /// overridable from real cluster topology via
    /// [`Communicator::set_ring_topology`].
    hops_same_node: Vec<bool>,
}

impl Communicator {
    /// Creates a communicator over `ranks`; `clock_idx[i]` is the clock
    /// board slot of `ranks[i]`.
    pub fn new(
        id: CommId,
        ranks: Vec<RankId>,
        clock_idx: Vec<usize>,
        ranks_per_node: usize,
        clock: Arc<ClockBoard>,
        cost: CostModel,
    ) -> Arc<Self> {
        assert_eq!(ranks.len(), clock_idx.len());
        let map = ranks.iter().copied().zip(clock_idx).collect();
        let hops = ring::ring_hop_classes(&ranks, ranks_per_node);
        Arc::new(Communicator {
            id,
            ranks,
            clock_idx: map,
            ranks_per_node,
            clock,
            cost,
            state: Mutex::new(CommState::default()),
            cv: Condvar::new(),
            obs_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            hang_timeout: None,
            engine: CollEngine::default(),
            hops_same_node: hops,
        })
    }

    /// Member ranks, in rank order.
    pub fn ranks(&self) -> &[RankId] {
        &self.ranks
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Communicators are shared immutably; configuration changes rebuild
    /// a fresh clone with empty slot state.
    fn rebuild(&self, timeout: Option<Duration>, engine: CollEngine, hops: Vec<bool>) -> Arc<Self> {
        let mut clock_idx_pairs: Vec<(RankId, usize)> =
            self.clock_idx.iter().map(|(r, i)| (*r, *i)).collect();
        clock_idx_pairs.sort();
        Arc::new(Communicator {
            id: self.id,
            ranks: self.ranks.clone(),
            clock_idx: clock_idx_pairs.into_iter().collect(),
            ranks_per_node: self.ranks_per_node,
            clock: self.clock.clone(),
            cost: self.cost.clone(),
            state: Mutex::new(CommState::default()),
            cv: Condvar::new(),
            obs_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            hang_timeout: timeout,
            engine,
            hops_same_node: hops,
        })
    }

    /// Sets a real-time hang timeout: a rank blocked longer than this
    /// returns [`SimError::CollectiveTimeout`] instead of waiting for an
    /// abort. (The transparent design leaves this unset and relies on the
    /// proxy watchdog + abort instead.)
    pub fn set_hang_timeout(self: &Arc<Self>, timeout: Option<Duration>) -> Arc<Self> {
        self.rebuild(timeout, self.engine, self.hops_same_node.clone())
    }

    /// Selects the data-plane engine (chunked ring by default; the slot
    /// reference is kept for bit-identity checks and benchmarking).
    pub fn set_engine(self: &Arc<Self>, engine: CollEngine) -> Arc<Self> {
        self.rebuild(self.hang_timeout, engine, self.hops_same_node.clone())
    }

    /// Overrides the per-hop link classes of the rank-order ring
    /// (`true` = intra-node hop) with real placement knowledge from the
    /// cluster topology (`Cluster::ring_hop_classes`). Length must equal
    /// the group size (or be empty for a singleton group).
    pub fn set_ring_topology(self: &Arc<Self>, hops_same_node: Vec<bool>) -> Arc<Self> {
        assert_eq!(
            hops_same_node.len(),
            if self.ranks.len() <= 1 {
                0
            } else {
                self.ranks.len()
            },
            "one link class per ring hop"
        );
        self.rebuild(self.hang_timeout, self.engine, hops_same_node)
    }

    /// The data-plane engine in effect.
    pub fn engine(&self) -> CollEngine {
        self.engine
    }

    /// True once the communicator has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Aborts the communicator: every current and future waiter returns
    /// [`SimError::CollectiveAborted`]. Idempotent.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        // Completion waits are purely notify-driven, so the notify must be
        // ordered against the waiters' abort check: holding the state lock
        // guarantees any rank that saw `aborted == false` has since parked
        // and receives this wake-up (no lost-wakeup window).
        let _st = self.state.lock();
        self.cv.notify_all();
        self.obs_cv.notify_all();
    }

    /// Blocks until at least `n` member threads are parked inside a
    /// collective wait, or `timeout` elapses (returns `false` on
    /// timeout). This is the §3.1 hang signature made observable:
    /// harnesses and tests wait on the same condvar the parked ranks
    /// use instead of sleeping an arbitrary wall-clock interval and
    /// hoping the ranks have arrived.
    pub fn wait_for_parked(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.parked < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.obs_cv.wait_for(&mut st, deadline - now);
        }
        true
    }

    /// Arms a one-shot transient network fault against `victim`: at the
    /// next collective on this communicator, the victim's NCCL call fails
    /// with [`SimError::NetworkTransient`] while every other member hangs
    /// at the barrier — exactly how a single NIC/link fault manifests in
    /// a real job (§3.1: the victim sees an error, peers see a hang).
    pub fn inject_transient_fault(&self, victim: RankId) {
        let mut st = self.state.lock();
        st.pending_fault = Some(victim);
        self.cv.notify_all();
    }

    fn coll_cost(&self, kind: CollKind, bytes: u64) -> simcore::SimTime {
        let n = self.ranks.len();
        match kind {
            CollKind::AllReduce => match self.engine {
                CollEngine::Slot => self.cost.all_reduce(bytes, n, self.ranks_per_node),
                CollEngine::Ring(_) => self.cost.ring_all_reduce(bytes, n, self.inter_hops()),
            },
            CollKind::AllGather | CollKind::ReduceScatter | CollKind::Broadcast => {
                match self.engine {
                    CollEngine::Slot => self.cost.all_gather(bytes, n, self.ranks_per_node),
                    CollEngine::Ring(_) => self.cost.ring_all_gather(bytes, n, self.inter_hops()),
                }
            }
            CollKind::Barrier => simcore::SimTime::from_secs(
                self.cost.coll_latency.as_secs() * (n as f64).log2().ceil().max(1.0),
            ),
            CollKind::Rendezvous => self.cost.comm_init,
        }
    }

    /// Number of ring hops crossing a node boundary.
    fn inter_hops(&self) -> usize {
        self.hops_same_node.iter().filter(|same| !**same).count()
    }

    /// Copies the predecessor communicator's completed-slot cache into
    /// this (freshly created) communicator, so replayed operations can be
    /// served without re-participation after recovery.
    pub fn adopt_completed_from(&self, old: &Communicator) {
        let old_state = old.state.lock();
        let mut st = self.state.lock();
        for (gen, slot) in old_state.slots.iter() {
            if slot.complete {
                st.slots.insert(*gen, slot.clone());
            }
        }
    }

    /// Number of cached completed slots (tests / diagnostics).
    pub fn completed_slots(&self) -> usize {
        self.state
            .lock()
            .slots
            .values()
            .filter(|s| s.complete)
            .count()
    }

    /// Drops cached slots with `gen < floor` (memory hygiene on very long
    /// jobs; recovery never replays past the previous minibatch).
    pub fn prune_below(&self, floor: u64) {
        let mut st = self.state.lock();
        st.slots.retain(|g, _| *g >= floor);
        // Completion waits are notify-driven: wake parked ranks so anyone
        // whose (incomplete) slot was just pruned reports the protocol
        // error instead of sleeping forever.
        self.cv.notify_all();
    }

    /// Core matched-collective protocol. Returns the operation result for
    /// this rank.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        rank: RankId,
        gen: u64,
        kind: CollKind,
        op: Option<ReduceOp>,
        root: Option<RankId>,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        if !self.clock_idx.contains_key(&rank) {
            return Err(SimError::Protocol(format!(
                "{rank} is not a member of communicator {}",
                self.id
            )));
        }
        {
            // Serve a cached completed slot without blocking or aborting:
            // this is a replayed operation.
            let st = self.state.lock();
            if let Some(slot) = st.slots.get(&gen) {
                if slot.complete {
                    if slot.kind != kind || slot.op != op || slot.root != root {
                        return Err(SimError::Protocol(format!(
                            "replayed collective mismatch at gen {gen} on {}",
                            self.id
                        )));
                    }
                    return Ok(slot.result.clone().expect("completed slot has result"));
                }
            }
        }
        if self.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        let ticket = CollectiveTicket {
            comm: self.id,
            generation: gen,
            rank,
            kind,
            entered_at: Instant::now(),
        };
        // Observer callbacks run outside the state lock: the hang
        // watchdog's observer takes its own `outstanding` lock, and
        // calling into it with `state` held would hold one lock across a
        // module that takes another (`guard_across_call`). Registering
        // the ticket a moment before entering the slot (and clearing it a
        // moment after leaving) only widens the watchdog's view of the
        // collective, which is the conservative direction.
        obs.collective_started(&ticket);
        let mut st = self.state.lock();
        let result = self.run_inner(&mut st, rank, gen, kind, op, root, data, logical_bytes);
        drop(st);
        obs.collective_finished(&ticket);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        st: &mut simcore::sync::MutexGuard<'_, CommState>,
        rank: RankId,
        gen: u64,
        kind: CollKind,
        op: Option<ReduceOp>,
        root: Option<RankId>,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
    ) -> SimResult<Arc<Vec<f32>>> {
        let n = self.ranks.len();
        // Install or join the slot for this generation. An armed transient
        // fault is consumed by the slot *creation* (the fault hits the next
        // collective that starts).
        if !st.slots.contains_key(&gen) {
            let fault_victim = st.pending_fault.take();
            st.slots.insert(
                gen,
                Slot {
                    kind,
                    op,
                    root,
                    contributions: BTreeMap::new(),
                    logical_bytes: 0,
                    complete: false,
                    fault_victim,
                    result: None,
                },
            );
        }
        let slot = st.slots.get_mut(&gen).expect("slot just inserted");
        if slot.kind != kind || slot.op != op || slot.root != root {
            return Err(SimError::Protocol(format!(
                "mismatched collective at gen {gen} on {}: {:?} vs {:?}",
                self.id, slot.kind, kind
            )));
        }
        if slot.fault_victim == Some(rank) {
            // The victim's NCCL call fails; it never contributes, so the
            // other members stay parked at the barrier (a hang) until the
            // watchdog aborts the communicator.
            return Err(SimError::NetworkTransient);
        }
        slot.contributions.insert(rank, data);
        slot.logical_bytes = slot.logical_bytes.max(logical_bytes);
        if slot.contributions.len() == n && !slot.complete {
            // Last arrival: reduce deterministically in rank order and
            // advance every member's clock past the barrier.
            let result = match self.engine {
                CollEngine::Slot => reduce(slot, n)?,
                CollEngine::Ring(cfg) => ring_reduce(slot, n, &cfg)?,
            };
            slot.result = Some(Arc::new(result));
            slot.complete = true;
            let idxs: Vec<usize> = self.ranks.iter().map(|r| self.clock_idx[r]).collect();
            let cost = self.coll_cost(kind, slot.logical_bytes);
            self.clock.barrier_sync(&idxs, cost);
            self.cv.notify_all();
        } else if !slot.complete {
            // Wait for completion, abort, or (optionally) hang timeout.
            // Completion is checked BEFORE abort: an operation that
            // finished must report success even if the communicator was
            // aborted an instant later (otherwise a racing abort makes a
            // rank believe its already-completed iteration failed, and
            // ranks enter recovery desynchronized by one iteration).
            let started = Instant::now();
            loop {
                {
                    let slot = st.slots.get(&gen).ok_or_else(|| {
                        SimError::Protocol(format!("slot {gen} vanished on {}", self.id))
                    })?;
                    if slot.complete {
                        break;
                    }
                }
                if self.is_aborted() {
                    return Err(SimError::CollectiveAborted);
                }
                if let Some(limit) = self.hang_timeout {
                    if started.elapsed() >= limit {
                        return Err(SimError::CollectiveTimeout { rank });
                    }
                }
                // Purely notify-driven wait: completion, abort, fault
                // injection, and prune all notify under the state lock, so
                // there is no lost-wakeup window and no poll quantum on the
                // hot path. With a hang timeout armed, wait exactly the
                // remaining budget instead.
                st.parked += 1;
                self.obs_cv.notify_all(); // Wake `wait_for_parked` observers.
                match self.hang_timeout {
                    None => {
                        self.cv.wait(st);
                    }
                    Some(limit) => {
                        self.cv
                            .wait_for(st, limit.saturating_sub(started.elapsed()));
                    }
                }
                st.parked -= 1;
            }
        }
        // Pick up the result; completed slots stay cached for replay.
        let slot = st.slots.get(&gen).expect("completed slot");
        slot.result
            .clone()
            .ok_or_else(|| SimError::Protocol("completed slot without result".into()))
    }

    /// All-reduce at sequence number `gen`: every rank contributes an
    /// equal-length vector, every rank receives the reduction.
    /// `logical_bytes` drives the cost model (phantom scaling).
    ///
    /// Delivers a private copy per rank (the seed's slot semantics); the
    /// hot path uses [`Communicator::all_reduce_shared`] instead.
    pub fn all_reduce(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        op: ReduceOp,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.all_reduce_shared(rank, gen, data, op, logical_bytes, obs)?;
        Ok((*res).clone())
    }

    /// All-reduce with zero-copy shared delivery: every rank receives the
    /// same immutable `Arc` of the reduction instead of a private
    /// full-vector clone — the ring engine's delivery contract.
    pub fn all_reduce_shared(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        op: ReduceOp,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        self.run(
            rank,
            gen,
            CollKind::AllReduce,
            Some(op),
            None,
            Some(data),
            logical_bytes,
            obs,
        )
    }

    /// All-gather: concatenation of all contributions in rank order.
    pub fn all_gather(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.all_gather_shared(rank, gen, data, logical_bytes, obs)?;
        Ok((*res).clone())
    }

    /// All-gather with zero-copy shared delivery.
    pub fn all_gather_shared(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        self.run(
            rank,
            gen,
            CollKind::AllGather,
            None,
            None,
            Some(data),
            logical_bytes,
            obs,
        )
    }

    /// Reduce-scatter: reduce all contributions, then return this rank's
    /// equal shard. Contribution length must divide evenly by group size.
    pub fn reduce_scatter(
        &self,
        rank: RankId,
        gen: u64,
        data: Vec<f32>,
        op: ReduceOp,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.run(
            rank,
            gen,
            CollKind::ReduceScatter,
            Some(op),
            None,
            Some(data),
            logical_bytes,
            obs,
        )?;
        let n = self.ranks.len();
        let shard = res.len() / n;
        let pos = self
            .ranks
            .iter()
            .position(|r| *r == rank)
            .expect("membership checked");
        Ok(res[pos * shard..(pos + 1) * shard].to_vec())
    }

    /// Broadcast from `root`; non-root ranks pass `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast(
        &self,
        rank: RankId,
        gen: u64,
        root: RankId,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Vec<f32>> {
        let res = self.broadcast_shared(rank, gen, root, data, logical_bytes, obs)?;
        Ok((*res).clone())
    }

    /// Broadcast with zero-copy shared delivery.
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast_shared(
        &self,
        rank: RankId,
        gen: u64,
        root: RankId,
        data: Option<Vec<f32>>,
        logical_bytes: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<Arc<Vec<f32>>> {
        self.run(
            rank,
            gen,
            CollKind::Broadcast,
            None,
            Some(root),
            data,
            logical_bytes,
            obs,
        )
    }

    /// Barrier across the group.
    pub fn barrier(&self, rank: RankId, gen: u64, obs: &dyn CollectiveObserver) -> SimResult<()> {
        self.run(rank, gen, CollKind::Barrier, None, None, None, 0, obs)?;
        Ok(())
    }

    /// Rendezvous: the communicator-initialization barrier, costed as the
    /// NCCL bootstrap (the dominant step in Table 7's recovery breakdown).
    pub fn rendezvous(
        &self,
        rank: RankId,
        gen: u64,
        obs: &dyn CollectiveObserver,
    ) -> SimResult<()> {
        self.run(rank, gen, CollKind::Rendezvous, None, None, None, 0, obs)?;
        Ok(())
    }
}

fn reduce(slot: &Slot, n: usize) -> SimResult<Vec<f32>> {
    match slot.kind {
        CollKind::AllReduce | CollKind::ReduceScatter => {
            let op = slot.op.expect("reduce op present");
            let mut iter = slot.contributions.values();
            let first = iter
                .next()
                .and_then(|d| d.clone())
                .ok_or_else(|| SimError::Protocol("reduce without contribution".into()))?;
            let len = first.len();
            let mut acc = first;
            for d in iter {
                let d = d
                    .as_ref()
                    .ok_or_else(|| SimError::Protocol("missing contribution".into()))?;
                if d.len() != len {
                    return Err(SimError::Protocol(format!(
                        "ragged collective: {} vs {}",
                        d.len(),
                        len
                    )));
                }
                for (a, b) in acc.iter_mut().zip(d) {
                    match op {
                        ReduceOp::Sum | ReduceOp::Avg => *a += b,
                        ReduceOp::Max => *a = a.max(*b),
                    }
                }
            }
            if op == ReduceOp::Avg {
                let inv = 1.0 / n as f32;
                for a in &mut acc {
                    *a *= inv;
                }
            }
            if slot.kind == CollKind::ReduceScatter && len % n != 0 {
                return Err(SimError::Protocol(format!(
                    "reduce-scatter length {len} not divisible by {n}"
                )));
            }
            Ok(acc)
        }
        CollKind::AllGather => {
            let mut out = Vec::new();
            for d in slot.contributions.values() {
                let d = d
                    .as_ref()
                    .ok_or_else(|| SimError::Protocol("missing contribution".into()))?;
                out.extend_from_slice(d);
            }
            Ok(out)
        }
        CollKind::Broadcast => {
            let root = slot.root.expect("broadcast root");
            slot.contributions
                .get(&root)
                .and_then(|d| d.clone())
                .ok_or_else(|| SimError::Protocol("broadcast root contributed no data".into()))
        }
        CollKind::Barrier | CollKind::Rendezvous => Ok(Vec::new()),
    }
}

/// Ring-engine data plane: chunked parallel reduction / linear gather over
/// zero-copy subslices of the parked contributions. Bit-identical to
/// [`reduce`] (see [`crate::ring`]).
fn ring_reduce(slot: &mut Slot, n: usize, cfg: &ring::RingConfig) -> SimResult<Vec<f32>> {
    match slot.kind {
        CollKind::AllReduce | CollKind::ReduceScatter => {
            let op = slot.op.expect("reduce op present");
            // The communicator owns every parked contribution and nothing
            // reads them after completion (replay serves the cached
            // result), so the rank-order first buffer is taken by value
            // and becomes the accumulator — the ring hot path allocates
            // and copies nothing.
            let first_rank = *slot
                .contributions
                .keys()
                .next()
                .ok_or_else(|| SimError::Protocol("reduce without contribution".into()))?;
            let seed = slot
                .contributions
                .get_mut(&first_rank)
                .expect("first key present")
                .take()
                .ok_or_else(|| SimError::Protocol("missing contribution".into()))?;
            let mut peers: Vec<&[f32]> = Vec::with_capacity(n.saturating_sub(1));
            for (r, d) in slot.contributions.iter() {
                if *r == first_rank {
                    continue;
                }
                peers.push(
                    d.as_deref()
                        .ok_or_else(|| SimError::Protocol("missing contribution".into()))?,
                );
            }
            let len = seed.len();
            if slot.kind == CollKind::ReduceScatter && len % n != 0 {
                return Err(SimError::Protocol(format!(
                    "reduce-scatter length {len} not divisible by {n}"
                )));
            }
            ring::reduce_seeded(seed, &peers, op, cfg)
        }
        CollKind::AllGather => {
            let mut contribs: Vec<&[f32]> = Vec::with_capacity(n);
            for d in slot.contributions.values() {
                contribs.push(
                    d.as_deref()
                        .ok_or_else(|| SimError::Protocol("missing contribution".into()))?,
                );
            }
            Ok(ring::gather_chunked(&contribs))
        }
        // Broadcast and the data-free kinds have no reduction to chunk.
        CollKind::Broadcast | CollKind::Barrier | CollKind::Rendezvous => reduce(slot, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use std::thread;

    fn make_comm(n: usize) -> Arc<Communicator> {
        let clock = Arc::new(ClockBoard::new(n));
        Communicator::new(
            CommId(0),
            (0..n).map(|i| RankId(i as u32)).collect(),
            (0..n).collect(),
            8,
            clock,
            CostModel::v100(),
        )
    }

    fn spawn_ranks<F, R>(n: usize, f: F) -> Vec<SimResult<R>>
    where
        F: Fn(usize) -> SimResult<R> + Send + Sync + 'static,
        R: Send + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let f = f.clone();
                thread::spawn(move || f(i))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let comm = make_comm(4);
        let c = comm.clone();
        let results = spawn_ranks(4, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![i as f32, 1.0],
                ReduceOp::Sum,
                8,
                &NullObserver,
            )
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![6.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_avg() {
        let comm = make_comm(2);
        let c = comm.clone();
        let results = spawn_ranks(2, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![(i * 2) as f32],
                ReduceOp::Avg,
                4,
                &NullObserver,
            )
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![1.0]);
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let comm = make_comm(3);
        let c = comm.clone();
        let results = spawn_ranks(3, move |i| {
            c.all_gather(RankId(i as u32), 0, vec![i as f32], 4, &NullObserver)
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn reduce_scatter_shards() {
        let comm = make_comm(2);
        let c = comm.clone();
        let results: Vec<_> = spawn_ranks(2, move |i| {
            c.reduce_scatter(
                RankId(i as u32),
                0,
                vec![1.0, 2.0, 3.0, 4.0],
                ReduceOp::Sum,
                16,
                &NullObserver,
            )
            .map(|v| (i, v))
        });
        for r in results {
            let (i, v) = r.unwrap();
            if i == 0 {
                assert_eq!(v, vec![2.0, 4.0]);
            } else {
                assert_eq!(v, vec![6.0, 8.0]);
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let comm = make_comm(3);
        let c = comm.clone();
        let results = spawn_ranks(3, move |i| {
            let data = if i == 1 { Some(vec![7.0, 8.0]) } else { None };
            c.broadcast(RankId(i as u32), 0, RankId(1), data, 8, &NullObserver)
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![7.0, 8.0]);
        }
    }

    #[test]
    fn missing_rank_hangs_until_abort() {
        // Rank 1 never arrives; ranks 0 and 2 must block, then an abort
        // releases them with CollectiveAborted — the §3.1 hang signature.
        let comm = make_comm(3);
        let c0 = comm.clone();
        let h0 = thread::spawn(move || {
            c0.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        let c2 = comm.clone();
        let h2 = thread::spawn(move || {
            c2.all_reduce(RankId(2), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(comm.wait_for_parked(2, Duration::from_secs(5)));
        assert!(!h0.is_finished(), "rank 0 must be parked at the barrier");
        assert!(!h2.is_finished(), "rank 2 must be parked at the barrier");
        comm.abort();
        assert_eq!(h0.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
        assert_eq!(h2.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
    }

    #[test]
    fn hang_timeout_surfaces_peer_failure() {
        let comm = make_comm(2).set_hang_timeout(Some(Duration::from_millis(30)));
        let c = comm.clone();
        let h = thread::spawn(move || {
            c.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, SimError::CollectiveTimeout { rank } if rank == RankId(0)));
    }

    /// Both data-plane engines, including a ring config that forces
    /// multi-chunk schedules on tiny payloads.
    fn engines() -> [CollEngine; 2] {
        [
            CollEngine::Slot,
            CollEngine::Ring(ring::RingConfig {
                chunk_bytes: 8,
                workers: 2,
            }),
        ]
    }

    #[test]
    fn hang_and_abort_observables_are_engine_invariant() {
        // The ring engine replaces only the data plane; a rank failing
        // mid-ring-step must leave peers with exactly the slot
        // protocol's §3.1 observables — parked at the barrier, then
        // released by abort with CollectiveAborted.
        for engine in engines() {
            let comm = make_comm(3).set_engine(engine);
            let c0 = comm.clone();
            let h0 = thread::spawn(move || {
                c0.all_reduce(
                    RankId(0),
                    0,
                    vec![1.0; 16],
                    ReduceOp::Sum,
                    64,
                    &NullObserver,
                )
            });
            let c2 = comm.clone();
            let h2 = thread::spawn(move || {
                c2.all_reduce(
                    RankId(2),
                    0,
                    vec![1.0; 16],
                    ReduceOp::Sum,
                    64,
                    &NullObserver,
                )
            });
            assert!(comm.wait_for_parked(2, Duration::from_secs(5)));
            assert!(!h0.is_finished(), "rank 0 must be parked ({engine:?})");
            assert!(!h2.is_finished(), "rank 2 must be parked ({engine:?})");
            comm.abort();
            assert_eq!(h0.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
            assert_eq!(h2.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
        }
    }

    #[test]
    fn hang_timeout_is_engine_invariant() {
        for engine in engines() {
            let comm = make_comm(2)
                .set_engine(engine)
                .set_hang_timeout(Some(Duration::from_millis(30)));
            let c = comm.clone();
            let h = thread::spawn(move || {
                c.all_reduce(
                    RankId(0),
                    0,
                    vec![1.0; 16],
                    ReduceOp::Sum,
                    64,
                    &NullObserver,
                )
            });
            let err = h.join().unwrap().unwrap_err();
            assert!(
                matches!(err, SimError::CollectiveTimeout { rank } if rank == RankId(0)),
                "unexpected {err:?} under {engine:?}"
            );
        }
    }

    #[test]
    fn transient_fault_errors_victim_and_hangs_peers() {
        let comm = make_comm(2);
        comm.inject_transient_fault(RankId(0));
        // Victim gets the NCCL error immediately.
        let c0 = comm.clone();
        let h0 = thread::spawn(move || {
            c0.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert_eq!(h0.join().unwrap().unwrap_err(), SimError::NetworkTransient);
        // The peer hangs at the barrier until aborted.
        let c1 = comm.clone();
        let h1 = thread::spawn(move || {
            c1.all_reduce(RankId(1), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(comm.wait_for_parked(1, Duration::from_secs(5)));
        assert!(!h1.is_finished(), "peer must hang");
        comm.abort();
        assert_eq!(h1.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
    }

    #[test]
    fn transient_fault_is_one_shot() {
        let comm = make_comm(2);
        comm.inject_transient_fault(RankId(0));
        // Victim consumes the fault...
        let c0 = comm.clone();
        let h0 = thread::spawn(move || {
            c0.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(h0.join().unwrap().is_err());
        // ...but peers of that generation are parked; use a fresh comm
        // (recovery recreates communicators) to check the fault cleared.
        let comm2 = make_comm(2);
        let c = comm2.clone();
        let results = spawn_ranks(2, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![1.0],
                ReduceOp::Sum,
                4,
                &NullObserver,
            )
        });
        for r in results {
            assert_eq!(r.unwrap(), vec![2.0]);
        }
    }

    #[test]
    fn completion_advances_all_clocks_past_barrier() {
        let n = 2;
        let clock = Arc::new(ClockBoard::new(n));
        clock.raise_to(0, simcore::SimTime::from_secs(1.0));
        clock.raise_to(1, simcore::SimTime::from_secs(3.0));
        let comm = Communicator::new(
            CommId(0),
            vec![RankId(0), RankId(1)],
            vec![0, 1],
            8,
            clock.clone(),
            CostModel::v100(),
        );
        let c = comm.clone();
        spawn_ranks(2, move |i| {
            c.all_reduce(
                RankId(i as u32),
                0,
                vec![0.0; 256],
                ReduceOp::Sum,
                1 << 20,
                &NullObserver,
            )
        })
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
        // Both clocks equal and past the straggler's arrival time.
        let t0 = clock.now(0).as_secs();
        let t1 = clock.now(1).as_secs();
        assert!((t0 - t1).abs() < 1e-12);
        assert!(t0 > 3.0);
    }

    #[test]
    fn consecutive_collectives_use_fresh_generations() {
        let comm = make_comm(2);
        for round in 0..5 {
            let c = comm.clone();
            let results = spawn_ranks(2, move |i| {
                c.all_reduce(
                    RankId(i as u32),
                    round as u64,
                    vec![(round + i) as f32],
                    ReduceOp::Sum,
                    4,
                    &NullObserver,
                )
            });
            for r in results {
                assert_eq!(r.unwrap(), vec![(2 * round + 1) as f32]);
            }
        }
    }

    #[test]
    fn non_member_rank_is_rejected() {
        let comm = make_comm(2);
        let err = comm
            .all_reduce(RankId(9), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
            .unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)));
    }

    #[test]
    fn aborted_comm_rejects_new_operations() {
        let comm = make_comm(2);
        comm.abort();
        let err = comm.barrier(RankId(0), 0, &NullObserver).unwrap_err();
        assert_eq!(err, SimError::CollectiveAborted);
    }

    #[test]
    fn rendezvous_charges_comm_init_cost() {
        let n = 2;
        let clock = Arc::new(ClockBoard::new(n));
        let comm = Communicator::new(
            CommId(0),
            vec![RankId(0), RankId(1)],
            vec![0, 1],
            8,
            clock.clone(),
            CostModel::v100(),
        );
        let c = comm.clone();
        spawn_ranks(2, move |i| c.rendezvous(RankId(i as u32), 0, &NullObserver))
            .into_iter()
            .for_each(|r| r.unwrap());
        // comm_init for V100 is 1.0 s.
        assert!((clock.now(0).as_secs() - 1.0).abs() < 1e-9);
    }
}

//! Interception hooks for collective operations.
//!
//! The paper's user-level solution builds a *watch-list* of in-flight
//! collectives from intercepted `cudaEventRecord` / `cudaStreamWaitEvent` /
//! NCCL calls and has a watchdog thread poll it (§3.1). In the simulation,
//! interception attaches at the collective boundary: before a rank blocks
//! in a collective it announces a [`CollectiveTicket`]; when the collective
//! completes it retracts it. A ticket that stays outstanding past the
//! watchdog timeout *is* a hang.

use crate::comm::CollKind;
use crate::world::CommId;
use simcore::RankId;
use std::time::Instant;

/// Identity of one in-flight collective on one rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CollectiveTicket {
    /// Communicator.
    pub comm: CommId,
    /// Per-rank operation sequence number on that communicator.
    pub generation: u64,
    /// The rank announcing the ticket.
    pub rank: RankId,
    /// Operation kind (for diagnostics).
    pub kind: CollKind,
    /// Real-clock time the rank entered the collective (watchdog deadline
    /// arithmetic runs on real time: a hang is a *real* hang).
    pub entered_at: Instant,
}

/// Observer of collective entry/exit on a rank — the interception seam.
///
/// Implementations must be cheap and non-blocking; they run on the rank's
/// hot path (the steady-state overhead measured in Table 5 includes this).
pub trait CollectiveObserver: Send + Sync {
    /// A rank is about to block in a collective.
    fn collective_started(&self, ticket: &CollectiveTicket);
    /// The collective completed (or errored) on this rank.
    fn collective_finished(&self, ticket: &CollectiveTicket);
}

/// No-op observer for jobs running without JIT checkpointing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl CollectiveObserver for NullObserver {
    fn collective_started(&self, _ticket: &CollectiveTicket) {}
    fn collective_finished(&self, _ticket: &CollectiveTicket) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::sync::Mutex;
    use std::sync::Arc;

    #[derive(Default)]
    struct Recording {
        started: Mutex<Vec<(CommId, u64)>>,
        finished: Mutex<Vec<(CommId, u64)>>,
    }

    impl CollectiveObserver for Recording {
        fn collective_started(&self, t: &CollectiveTicket) {
            self.started.lock().push((t.comm, t.generation));
        }
        fn collective_finished(&self, t: &CollectiveTicket) {
            self.finished.lock().push((t.comm, t.generation));
        }
    }

    #[test]
    fn observer_receives_paired_events() {
        let obs = Arc::new(Recording::default());
        let ticket = CollectiveTicket {
            comm: CommId(1),
            generation: 7,
            rank: RankId(0),
            kind: CollKind::Barrier,
            entered_at: Instant::now(),
        };
        obs.collective_started(&ticket);
        obs.collective_finished(&ticket);
        assert_eq!(*obs.started.lock(), vec![(CommId(1), 7)]);
        assert_eq!(*obs.finished.lock(), vec![(CommId(1), 7)]);
    }

    #[test]
    fn null_observer_is_silent() {
        let ticket = CollectiveTicket {
            comm: CommId(0),
            generation: 0,
            rank: RankId(0),
            kind: CollKind::Barrier,
            entered_at: Instant::now(),
        };
        NullObserver.collective_started(&ticket);
        NullObserver.collective_finished(&ticket);
    }
}

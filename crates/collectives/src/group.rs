//! Process groups: NCCL-style `commSplit` over a parent communicator.
//!
//! Hybrid-parallel training needs many overlapping communicators — one
//! data-parallel group per model cell, one tensor-parallel group per
//! replica slice, one pipeline chain per column — all derived from one
//! world. [`CommWorld::split_comm`] builds them the way
//! `ncclCommSplit` does: every parent member states a `(color, key)`
//! pair; members with the same non-negative color form a child group,
//! ordered by `(key, parent member position)`; a negative color
//! ([`SplitKey::NO_COLOR`]) opts the member out.
//!
//! What the children inherit, by member slice:
//!
//! * **clock indices and node placement** — a child's member `i` keeps
//!   the parent's clock slot and node id, so topology installed once on
//!   the parent (`Communicator::set_topology`) flows into every group
//!   split from it, and each child's ring hop classes / hierarchical
//!   node sizes are derived from its own (possibly non-contiguous)
//!   placement slice;
//! * **engine and hang timeout** — a split never changes data-plane
//!   semantics;
//! * **fault surface** — the parent keeps a weak link to each child:
//!   [`Communicator::abort`] and
//!   [`Communicator::inject_transient_fault`] propagate parent→child
//!   (a dead link fails every communicator routed over it), while a
//!   dropped child is reaped, never resurrected.
//!
//! Rendezvous cost does **not** multiply per group: callers bootstrap
//! the parent once, and the parent's `Rendezvous` barrier charges
//! `comm_init × (1 + live children)` — one condvar park per rank total,
//! instead of one park per rank per group (see
//! `Communicator::coll_cost`). This is the NCCL `commSplit` shape too:
//! splitting reuses the parent's bootstrap ring rather than rerunning
//! the full rendezvous per child.

use crate::comm::Communicator;
use crate::world::CommWorld;
use simcore::{RankId, SimError, SimResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One parent member's split directive: which child group to join
/// (`color`) and how to sort inside it (`key`, ties broken by parent
/// member position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitKey {
    /// Child-group selector; members sharing a non-negative color land in
    /// the same child. [`SplitKey::NO_COLOR`] joins nothing.
    pub color: i64,
    /// Rank-order key inside the child group.
    pub key: usize,
}

impl SplitKey {
    /// The `ncclCommSplit` NCCL_SPLIT_NOCOLOR equivalent: this member
    /// joins no child group.
    pub const NO_COLOR: i64 = -1;

    /// Joins child `color` at sort key `key`.
    pub fn new(color: i64, key: usize) -> Self {
        SplitKey { color, key }
    }

    /// Opts this member out of the split.
    pub fn none() -> Self {
        SplitKey {
            color: Self::NO_COLOR,
            key: 0,
        }
    }
}

impl CommWorld {
    /// Splits `parent` into child communicators by color/key —
    /// `keys[i]` is parent member `i`'s directive. Returns each parent
    /// member's child (`None` for `NO_COLOR` members), so
    /// `result[i].ranks()` is member `i`'s new group with its remapped
    /// rank order.
    ///
    /// Children are registered in the world (they count toward
    /// `live_comms` and die with `abort_all`/`reset`) and linked to the
    /// parent for abort/fault propagation. Creation itself is free, like
    /// [`CommWorld::create_comm`]; the bootstrap is charged by the
    /// parent's next rendezvous.
    pub fn split_comm(
        &self,
        parent: &Arc<Communicator>,
        keys: &[SplitKey],
    ) -> SimResult<Vec<Option<Arc<Communicator>>>> {
        if keys.len() != parent.size() {
            return Err(SimError::Protocol(format!(
                "split of {} needs one SplitKey per member: got {} for {}",
                parent.id,
                keys.len(),
                parent.size()
            )));
        }
        if parent.is_aborted() {
            return Err(SimError::CollectiveAborted);
        }
        // Bucket member positions by color, ordered by (key, parent pos):
        // BTreeMap gives deterministic child creation order by color.
        let mut groups: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        for (pos, sk) in keys.iter().enumerate() {
            if sk.color >= 0 {
                groups.entry(sk.color).or_default().push(pos);
            }
        }
        let mut child_of_color: BTreeMap<i64, Arc<Communicator>> = BTreeMap::new();
        for (color, mut members) in groups {
            members.sort_by_key(|pos| (keys[*pos].key, *pos));
            let ranks: Vec<RankId> = members.iter().map(|p| parent.ranks()[*p]).collect();
            let clock_idx: Vec<usize> = members
                .iter()
                .map(|p| parent.clock_index_of_member(*p))
                .collect();
            let node_of: Vec<usize> = members.iter().map(|p| parent.node_of_member(*p)).collect();
            let child = Communicator::with_parts(
                self.alloc_comm_id(),
                ranks,
                clock_idx,
                node_of,
                parent.ranks_per_node(),
                parent.clock_board().clone(),
                parent.cost_model().clone(),
                parent.engine(),
                parent.hang_timeout(),
            );
            self.replace_comm(child.clone());
            parent.add_child(&child);
            child_of_color.insert(color, child);
        }
        Ok(keys
            .iter()
            .map(|sk| child_of_color.get(&sk.color).cloned())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use crate::ReduceOp;
    use simcore::cost::CostModel;
    use simcore::time::ClockBoard;
    use std::thread;

    fn make_world(n: usize) -> (Arc<CommWorld>, Arc<Communicator>) {
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let global =
            world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        (world, global)
    }

    #[test]
    fn split_remaps_ranks_by_key_then_position() {
        let (_world, global) = make_world(4);
        // Color by parity; odd members reverse their order via keys.
        let keys = [
            SplitKey::new(0, 0),
            SplitKey::new(1, 9),
            SplitKey::new(0, 0),
            SplitKey::new(1, 1),
        ];
        let children = global.clone();
        let got = _world.split_comm(&children, &keys).unwrap();
        let even = got[0].as_ref().unwrap();
        let odd = got[1].as_ref().unwrap();
        // Equal keys fall back to parent position order.
        assert_eq!(even.ranks(), &[RankId(0), RankId(2)]);
        // Key 1 (rank 3) sorts before key 9 (rank 1).
        assert_eq!(odd.ranks(), &[RankId(3), RankId(1)]);
        assert!(Arc::ptr_eq(
            got[0].as_ref().unwrap(),
            got[2].as_ref().unwrap()
        ));
        assert_eq!(even.member_pos(RankId(2)), Some(1));
        assert_eq!(odd.member_pos(RankId(1)), Some(1));
    }

    #[test]
    fn no_color_members_get_no_child() {
        let (world, global) = make_world(3);
        let keys = [SplitKey::new(0, 0), SplitKey::none(), SplitKey::new(0, 1)];
        let got = world.split_comm(&global, &keys).unwrap();
        assert!(got[1].is_none());
        assert_eq!(got[0].as_ref().unwrap().size(), 2);
        // One child registered alongside the global comm.
        assert_eq!(world.live_comms(), 2);
    }

    #[test]
    fn wrong_key_count_is_a_protocol_error() {
        let (world, global) = make_world(3);
        let err = match world.split_comm(&global, &[SplitKey::new(0, 0)]) {
            Err(e) => e,
            Ok(_) => panic!("undersized key list must be rejected"),
        };
        assert!(matches!(err, SimError::Protocol(_)));
    }

    #[test]
    fn child_collective_runs_in_remapped_order() {
        // A child whose member order is NOT sorted-RankId order must
        // still gather in *member* order — the canonical rank order of
        // the group.
        let (world, global) = make_world(4);
        let keys = [
            SplitKey::none(),
            SplitKey::new(7, 1),
            SplitKey::none(),
            SplitKey::new(7, 0),
        ];
        let child = world.split_comm(&global, &keys).unwrap()[1]
            .clone()
            .unwrap();
        assert_eq!(child.ranks(), &[RankId(3), RankId(1)]);
        let c = child.clone();
        let h = thread::spawn(move || c.all_gather(RankId(3), 0, vec![3.0], 4, &NullObserver));
        let mine = child
            .all_gather(RankId(1), 0, vec![1.0], 4, &NullObserver)
            .unwrap();
        assert_eq!(mine, vec![3.0, 1.0]);
        assert_eq!(h.join().unwrap().unwrap(), vec![3.0, 1.0]);
    }

    #[test]
    fn child_inherits_parent_topology_slice() {
        let (world, global) = make_world(4);
        // Real placement says members 0,2 share node 5 and 1,3 node 9.
        let global = global.set_topology(vec![5, 9, 5, 9]);
        world.replace_comm(global.clone());
        let keys = [
            SplitKey::new(0, 0),
            SplitKey::new(1, 0),
            SplitKey::new(0, 1),
            SplitKey::new(1, 1),
        ];
        let got = world.split_comm(&global, &keys).unwrap();
        assert_eq!(got[0].as_ref().unwrap().node_assignment(), &[5, 5]);
        assert_eq!(got[1].as_ref().unwrap().node_assignment(), &[9, 9]);
    }

    #[test]
    fn abort_propagates_to_children() {
        let (world, global) = make_world(4);
        let keys = [
            SplitKey::new(0, 0),
            SplitKey::new(0, 1),
            SplitKey::new(1, 0),
            SplitKey::new(1, 1),
        ];
        let got = world.split_comm(&global, &keys).unwrap();
        let a = got[0].clone().unwrap();
        let b = got[2].clone().unwrap();
        // A rank parked inside a child collective is released by the
        // PARENT's abort.
        let ac = a.clone();
        let h = thread::spawn(move || {
            ac.all_reduce(RankId(0), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        assert!(a.wait_for_parked(1, std::time::Duration::from_secs(5)));
        global.abort();
        assert_eq!(h.join().unwrap().unwrap_err(), SimError::CollectiveAborted);
        assert!(a.is_aborted() && b.is_aborted() && global.is_aborted());
        // A dead parent refuses further splits.
        assert!(world.split_comm(&global, &keys).is_err());
    }

    #[test]
    fn transient_fault_propagates_to_victims_children_only() {
        let (world, global) = make_world(4);
        let keys = [
            SplitKey::new(0, 0),
            SplitKey::new(0, 1),
            SplitKey::new(1, 0),
            SplitKey::new(1, 1),
        ];
        let got = world.split_comm(&global, &keys).unwrap();
        let with_victim = got[0].clone().unwrap(); // ranks {0, 1}
        let without = got[2].clone().unwrap(); // ranks {2, 3}
        global.inject_transient_fault(RankId(1));
        // The victim's next collective on its child group fails...
        let err = with_victim
            .all_reduce(RankId(1), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
            .unwrap_err();
        assert_eq!(err, SimError::NetworkTransient);
        // ...while the group not containing the victim is untouched.
        let c = without.clone();
        let h = thread::spawn(move || {
            c.all_reduce(RankId(2), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
        });
        let r = without
            .all_reduce(RankId(3), 0, vec![1.0], ReduceOp::Sum, 4, &NullObserver)
            .unwrap();
        assert_eq!(r, vec![2.0]);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn parent_rendezvous_bootstraps_children_in_one_barrier() {
        let n = 4;
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock.clone(), CostModel::v100(), 8);
        let global =
            world.create_comm((0..n).map(|i| RankId(i as u32)).collect(), (0..n).collect());
        let keys = [
            SplitKey::new(0, 0),
            SplitKey::new(0, 1),
            SplitKey::new(1, 0),
            SplitKey::new(1, 1),
        ];
        let children = world.split_comm(&global, &keys).unwrap();
        // One parent rendezvous charges comm_init × (1 parent + 2 kids)
        // — no per-child condvar parks.
        let c = global.clone();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = c.clone();
                thread::spawn(move || c.rendezvous(RankId(i as u32), 0, &NullObserver))
            })
            .collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let want = CostModel::v100().comm_init.as_secs() * 3.0;
        assert!((clock.now(0).as_secs() - want).abs() < 1e-9);
        // Dropping the children (both the local handles and the world
        // registry's) shrinks the next rendezvous charge.
        drop(children);
        world.reset();
        assert_eq!(global.live_children(), 0);
    }
}

//! In-network gradient replication: the passive chunk tap
//! (Checkmate-style, PAPERS.md).
//!
//! Every reduce-class collective already moves each rank's gradient
//! chunks through its ring peers, so by the time a generation completes,
//! rank *p* has held — at some hop — the fully-reduced bytes of its own
//! shard *p* **and** the near-complete partial of its ring successor's
//! shard *p+1*. A [`GradLedger`] attached to a member of a
//! [`Communicator`](crate::Communicator) pins exactly that coverage when
//! the data plane finalizes a generation: the shared result `Arc` plus
//! the two shard ranges this member is responsible for. Nothing extra is
//! sent and nothing is copied on the common path — the tap is an `Arc`
//! refcount bump at the existing fold points, and slices are only
//! materialized on the (rare) reconstruction path.
//!
//! On failure of member *r*, every shard of the generation's result is
//! still available from survivors: shard *s* from its owner *s*, or from
//! predecessor *s−1* (successor retention). The one unrecoverable shape
//! is *r* and its ring successor dying together — then shard *r+1* has
//! lost both holders, [`reconstruct_result`] reports the gap, and the
//! caller falls back to the PR 5 streamed-replica path (then the store).
//!
//! Memory is bounded two ways, mirroring a real implementation that
//! stores only its two shard slices: the accounting charges
//! own-shard + successor-shard bytes per generation against
//! [`LedgerConfig::cap_bytes`] (FIFO eviction beyond it), and
//! [`GradLedger::begin_epoch`] — called by the trainer at every
//! minibatch boundary — evicts generations older than
//! [`LedgerConfig::epoch_window`] iterations. (In-process the `Arc`
//! shares one result vector across all member ledgers, so the simulated
//! footprint is even smaller than the accounted one.)

use crate::comm::CollKind;
use simcore::sync::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

/// Retention knobs for one rank's gradient ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerConfig {
    /// Cap on accounted retained-slice bytes (own + successor shard per
    /// generation). Oldest generations are evicted FIFO beyond it.
    pub cap_bytes: usize,
    /// Number of iteration epochs kept: `begin_epoch(e)` evicts every
    /// entry recorded at epoch `< e + 1 - epoch_window`. Clamped to at
    /// least 1 (the current epoch is always retainable).
    pub epoch_window: u64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig {
            // Two ~4 MiB bucket generations per epoch at two epochs of
            // window fit comfortably; 64 MiB leaves headroom for large
            // fused buckets.
            cap_bytes: 64 << 20,
            epoch_window: 2,
        }
    }
}

impl LedgerConfig {
    /// Unbounded-history configuration: every generation since attach is
    /// retained (deterministic full-replay recovery, small jobs/tests).
    pub fn unbounded() -> Self {
        LedgerConfig {
            cap_bytes: usize::MAX,
            epoch_window: u64::MAX,
        }
    }
}

/// Metadata of one retained generation (`data` stays private so reads go
/// through the range-checked [`GradLedger::retained_slice`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntryMeta {
    /// Iteration epoch the generation was recorded in.
    pub epoch: u64,
    /// Collective generation number on the tapped communicator.
    pub gen: u64,
    /// Collective kind.
    pub kind: CollKind,
    /// Group size at record time.
    pub members: usize,
    /// This ledger's member position at record time.
    pub pos: usize,
    /// Full result length in elements.
    pub len: usize,
}

struct Entry {
    meta: LedgerEntryMeta,
    data: Arc<Vec<f32>>,
    /// Accounted bytes: own + successor shard slices.
    retained_bytes: usize,
}

struct Inner {
    epoch: u64,
    /// Insertion (generation) order — eviction pops from the front.
    entries: VecDeque<Entry>,
    pinned: usize,
}

/// One rank's passive gradient ledger. Attach with
/// [`Communicator::attach_ledger`](crate::Communicator::attach_ledger);
/// the data plane records every completed generation, this side only
/// evicts and serves reconstruction reads. The inner lock is a leaf:
/// no other lock is ever taken while it is held.
pub struct GradLedger {
    cfg: LedgerConfig,
    inner: Mutex<Inner>,
}

impl GradLedger {
    /// Creates a detached ledger with the given retention bounds.
    pub fn new(cfg: LedgerConfig) -> Arc<Self> {
        Arc::new(GradLedger {
            cfg: LedgerConfig {
                cap_bytes: cfg.cap_bytes,
                epoch_window: cfg.epoch_window.max(1),
            },
            inner: Mutex::new(Inner {
                epoch: 0,
                entries: VecDeque::new(),
                pinned: 0,
            }),
        })
    }

    /// The retention configuration in effect.
    pub fn config(&self) -> LedgerConfig {
        self.cfg
    }

    /// Advances the iteration epoch (trainer minibatch boundary) and
    /// evicts generations that fell out of the epoch window.
    pub fn begin_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.epoch = epoch;
        let keep_from = (epoch + 1).saturating_sub(self.cfg.epoch_window);
        while let Some(front) = inner.entries.front() {
            if front.meta.epoch >= keep_from {
                break;
            }
            let gone = front.retained_bytes;
            inner.entries.pop_front();
            inner.pinned -= gone;
        }
    }

    /// Current iteration epoch.
    pub fn current_epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Records a completed generation (called by the tapped
    /// communicator's data plane). Idempotent per generation — replays
    /// and multi-member delivery record once. The `Arc` bump is the
    /// whole common-path cost; accounting charges only the two shard
    /// slices a physical implementation would store.
    pub fn record(
        &self,
        gen: u64,
        kind: CollKind,
        pos: usize,
        members: usize,
        data: Arc<Vec<f32>>,
    ) {
        let len = data.len();
        let retained_bytes = retained_ranges(len, members, pos)
            .iter()
            .map(|r| (r.end - r.start) * 4)
            .sum();
        let mut inner = self.inner.lock();
        if inner.entries.iter().any(|e| e.meta.gen == gen) {
            return;
        }
        let meta = LedgerEntryMeta {
            epoch: inner.epoch,
            gen,
            kind,
            members,
            pos,
            len,
        };
        inner.entries.push_back(Entry {
            meta,
            data,
            retained_bytes,
        });
        inner.pinned += retained_bytes;
        // Strict cap: evict oldest-first until under it, even if that
        // means the entry just recorded.
        while inner.pinned > self.cfg.cap_bytes {
            let Some(front) = inner.entries.pop_front() else {
                break;
            };
            inner.pinned -= front.retained_bytes;
        }
    }

    /// Accounted retained bytes currently pinned (always ≤
    /// [`LedgerConfig::cap_bytes`]).
    pub fn pinned_bytes(&self) -> usize {
        self.inner.lock().pinned
    }

    /// Snapshot of retained generations, oldest first.
    pub fn manifest(&self) -> Vec<LedgerEntryMeta> {
        self.inner.lock().entries.iter().map(|e| e.meta).collect()
    }

    /// Metadata of generation `gen`, if retained.
    pub fn entry_meta(&self, gen: u64) -> Option<LedgerEntryMeta> {
        self.inner
            .lock()
            .entries
            .iter()
            .find(|e| e.meta.gen == gen)
            .map(|e| e.meta)
    }

    /// Copies `range` of generation `gen`'s result — but only if the
    /// range lies inside a shard slice this member actually retained
    /// (own or ring-successor shard). Reads outside that coverage return
    /// `None`: the simulation never lets reconstruction peek at bytes a
    /// real rank would not hold.
    pub fn retained_slice(&self, gen: u64, range: Range<usize>) -> Option<Vec<f32>> {
        let inner = self.inner.lock();
        let entry = inner.entries.iter().find(|e| e.meta.gen == gen)?;
        let covered = retained_ranges(entry.meta.len, entry.meta.members, entry.meta.pos)
            .iter()
            .any(|r| r.start <= range.start && range.end <= r.end);
        if !covered || range.end > entry.data.len() {
            return None;
        }
        Some(entry.data[range.clone()].to_vec())
    }
}

/// The ring shard convention: `len` elements over `n` members, `base =
/// len / n` each with the remainder distributed to the first `len % n`
/// members (the chunked ring's reduce-scatter ownership map).
pub fn shard_range(len: usize, n: usize, s: usize) -> Range<usize> {
    debug_assert!(s < n);
    let base = len / n;
    let rem = len % n;
    let start = s * base + s.min(rem);
    let end = start + base + usize::from(s < rem);
    start..end
}

/// The shard ranges member `pos` retains: its own shard plus its ring
/// successor's (one range when they coincide, i.e. `n == 1`).
pub fn retained_ranges(len: usize, n: usize, pos: usize) -> Vec<Range<usize>> {
    if n == 0 || len == 0 {
        return Vec::new();
    }
    let succ = (pos + 1) % n;
    let own = shard_range(len, n, pos);
    if succ == pos {
        return vec![own];
    }
    vec![own, shard_range(len, n, succ)]
}

/// Reassembles the full result of generation `gen` from surviving
/// ledgers (`ledgers[p]` is member `p`'s ledger, `None` = dead). Shard
/// *s* comes from its owner or, when the owner died, from predecessor
/// *s−1*'s successor retention. Returns `None` on any coverage gap —
/// the "failed rank and its ring successor both died" shape — which is
/// the caller's signal to fall back to replica streaming.
pub fn reconstruct_result(gen: u64, ledgers: &[Option<Arc<GradLedger>>]) -> Option<Vec<f32>> {
    let n = ledgers.len();
    let meta = ledgers.iter().flatten().find_map(|l| l.entry_meta(gen))?;
    debug_assert_eq!(meta.members, n, "ledger set must match group size");
    let mut out = vec![0.0f32; meta.len];
    for s in 0..n {
        let range = shard_range(meta.len, n, s);
        if range.is_empty() {
            continue;
        }
        let owner = ledgers[s]
            .as_ref()
            .and_then(|l| l.retained_slice(gen, range.clone()));
        let found = match owner {
            Some(v) => Some(v),
            None => ledgers[(s + n - 1) % n]
                .as_ref()
                .and_then(|l| l.retained_slice(gen, range.clone())),
        };
        out[range].copy_from_slice(&found?);
    }
    Some(out)
}

/// Reconstructs what the (dead) member `failed` received from generation
/// `gen`: the full result for all-reduce / all-gather / broadcast, its
/// own shard for reduce-scatter. `None` on coverage gaps, exactly as
/// [`reconstruct_result`].
pub fn reconstruct_member_output(
    gen: u64,
    failed: usize,
    ledgers: &[Option<Arc<GradLedger>>],
) -> Option<Vec<f32>> {
    let meta = ledgers.iter().flatten().find_map(|l| l.entry_meta(gen))?;
    let full = reconstruct_result(gen, ledgers)?;
    match meta.kind {
        CollKind::ReduceScatter => {
            let n = ledgers.len();
            Some(full[shard_range(meta.len, n, failed)].to_vec())
        }
        _ => Some(full),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_payload() {
        for len in [0usize, 1, 7, 8, 64, 65] {
            for n in 1usize..9 {
                let mut covered = 0;
                for s in 0..n {
                    let r = shard_range(len, n, s);
                    assert_eq!(r.start, covered, "shards must be contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, len, "shards must cover the payload");
            }
        }
    }

    fn ledger_set(n: usize, len: usize, gen: u64) -> Vec<Option<Arc<GradLedger>>> {
        let data = Arc::new((0..len).map(|i| (i as f32).cos()).collect::<Vec<_>>());
        (0..n)
            .map(|p| {
                let l = GradLedger::new(LedgerConfig::default());
                l.record(gen, CollKind::AllReduce, p, n, data.clone());
                Some(l)
            })
            .collect()
    }

    #[test]
    fn single_failure_reconstructs_bitwise() {
        let n = 5;
        let len = 37;
        let data: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
        for failed in 0..n {
            let mut ledgers = ledger_set(n, len, 3);
            ledgers[failed] = None;
            let got = reconstruct_result(3, &ledgers).expect("one failure is always covered");
            let want: Vec<u32> = data.iter().map(|f| f.to_bits()).collect();
            let got: Vec<u32> = got.iter().map(|f| f.to_bits()).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn failed_successor_pair_is_a_coverage_gap() {
        let n = 4;
        let mut ledgers = ledger_set(n, 32, 0);
        ledgers[1] = None;
        ledgers[2] = None; // ring successor of 1: shard 2 lost both holders
        assert!(reconstruct_result(0, &ledgers).is_none());
        // Non-adjacent pair stays recoverable.
        let mut ledgers = ledger_set(n, 32, 0);
        ledgers[1] = None;
        ledgers[3] = None;
        assert!(reconstruct_result(0, &ledgers).is_some());
    }

    #[test]
    fn slice_refuses_unretained_ranges() {
        let n = 4;
        let len = 40;
        let l = GradLedger::new(LedgerConfig::default());
        l.record(7, CollKind::AllReduce, 1, n, Arc::new(vec![1.0; len]));
        // Own shard (10..20) and successor shard (20..30) are served.
        assert!(l.retained_slice(7, shard_range(len, n, 1)).is_some());
        assert!(l.retained_slice(7, shard_range(len, n, 2)).is_some());
        // Shard 0 and shard 3 were never held by member 1.
        assert!(l.retained_slice(7, shard_range(len, n, 0)).is_none());
        assert!(l.retained_slice(7, shard_range(len, n, 3)).is_none());
        // A range straddling the two retained shards is still two
        // physical slices in a real store; reject it too.
        assert!(l.retained_slice(7, 5..25).is_none());
    }

    #[test]
    fn cap_evicts_fifo_and_epoch_window_evicts_old_iterations() {
        let n = 2;
        let len = 64; // retained per gen: 2 shards × 32 × 4 B = 256 B
        let l = GradLedger::new(LedgerConfig {
            cap_bytes: 600,
            epoch_window: 2,
        });
        for gen in 0..5u64 {
            l.record(gen, CollKind::AllReduce, 0, n, Arc::new(vec![0.0; len]));
            assert!(l.pinned_bytes() <= 600);
        }
        // 600 / 256 → two generations survive, the newest ones.
        let gens: Vec<u64> = l.manifest().iter().map(|m| m.gen).collect();
        assert_eq!(gens, vec![3, 4]);
        l.begin_epoch(1);
        l.record(5, CollKind::AllReduce, 0, n, Arc::new(vec![0.0; len]));
        l.begin_epoch(2);
        // Window 2 keeps epochs {1, 2}: the epoch-0 gens are gone.
        let epochs: Vec<u64> = l.manifest().iter().map(|m| m.epoch).collect();
        assert_eq!(epochs, vec![1]);
        l.begin_epoch(3);
        assert_eq!(l.manifest().len(), 0);
        assert_eq!(l.pinned_bytes(), 0);
    }

    #[test]
    fn record_is_idempotent_per_generation() {
        let l = GradLedger::new(LedgerConfig::default());
        let data = Arc::new(vec![1.0f32; 16]);
        l.record(0, CollKind::AllReduce, 0, 2, data.clone());
        let pinned = l.pinned_bytes();
        l.record(0, CollKind::AllReduce, 0, 2, data);
        assert_eq!(l.pinned_bytes(), pinned);
        assert_eq!(l.manifest().len(), 1);
    }
}

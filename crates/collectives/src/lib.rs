//! Collective communication — the NCCL substitute.
//!
//! The whole JIT-checkpointing design hinges on one property of collective
//! operations in synchronous data-parallel training (§3.1, §4.2 of the
//! paper):
//!
//! > *Each worker rank cannot exit from the collective operation till all
//! > others have reached it (so it is a barrier synchronization across all
//! > GPUs). In case of an error in any GPU, all other GPUs will be blocked
//! > at the collective operation, thus ensuring that they have not
//! > modified their parameter and optimizer state.*
//!
//! This crate reproduces those semantics with real blocking: a rank that
//! never arrives leaves every peer parked on a condition variable until the
//! communicator is aborted (the `ncclCommAbort` equivalent) — which is
//! exactly the hang the watchdog thread detects. Completion advances every
//! participant's virtual clock to `max(arrival) + α–β cost`.
//!
//! Modules:
//!
//! * [`comm`] — communicators, the collective operations, and p2p
//!   send/recv for pipeline parallelism;
//! * [`world`] — the process-wide registry ([`CommWorld`]) with communicator
//!   lifecycle (create / abort / recreate-with-rendezvous) and fault
//!   injection;
//! * [`ring`] — the chunked ring and hierarchical data-plane engines
//!   (zero-copy chunk slices, parallel per-chunk reduction, ring-hop link
//!   classes, two-level intra/inter-node schedules);
//! * [`group`] — NCCL-style `commSplit` process groups over a parent
//!   communicator (color/key remapping, parent→child abort and fault
//!   propagation);
//! * [`ledger`] — the Checkmate-style in-network gradient tap
//!   ([`GradLedger`]): passive bounded retention of the shard slices a
//!   rank already holds when a generation completes, and the
//!   reconstruction of a dead member's result from survivors;
//! * [`observer`] — the interception hook ([`CollectiveObserver`]) from
//!   which the user-level watch-list / watchdog of §3.1 is built.

pub mod comm;
pub mod group;
pub mod ledger;
pub mod observer;
pub mod ring;
pub mod world;

pub use comm::{CollKind, Communicator, ReduceOp};
pub use group::SplitKey;
pub use ledger::{GradLedger, LedgerConfig};
pub use observer::{CollectiveObserver, CollectiveTicket, NullObserver};
pub use ring::{CollEngine, RingConfig};
pub use world::{CommId, CommWorld};

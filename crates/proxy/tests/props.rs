//! Property-based tests for the interception layer: virtual-handle
//! translation totality, replay/reset idempotence, and replay-log wire
//! round-trips under arbitrary op sequences.

use proptest::prelude::*;
use proxy::{DirectExecutor, Executor, ProxyClient};
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::{GpuId, RankId};
use simgpu::{AllocSite, BufferId, BufferTag, DeviceCall, Gpu, KernelKind};
use std::sync::Arc;

fn client() -> ProxyClient {
    let clock = Arc::new(ClockBoard::new(1));
    let world = collectives::CommWorld::new(clock, CostModel::v100(), 8);
    ProxyClient::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world)
}

fn direct() -> DirectExecutor {
    let clock = Arc::new(ClockBoard::new(1));
    let world = collectives::CommWorld::new(clock, CostModel::v100(), 8);
    DirectExecutor::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world)
}

fn alloc<E: Executor>(e: &mut E, path: &str, data: Vec<f32>, tag: BufferTag) -> BufferId {
    let n = data.len() as u64;
    let b = e
        .call(DeviceCall::Malloc {
            site: AllocSite::new(path, n),
            elems: n,
            logical_bytes: n * 4,
            tag,
        })
        .unwrap()
        .buffer()
        .unwrap();
    e.call(DeviceCall::Upload { buf: b, data }).unwrap();
    b
}

fn download<E: Executor>(e: &mut E, b: BufferId) -> Vec<f32> {
    e.call(DeviceCall::Download { buf: b })
        .unwrap()
        .data()
        .unwrap()
}

/// A randomized minibatch program: params, then a sequence of elementwise
/// ops over fresh activation buffers.
#[derive(Debug, Clone)]
enum Op {
    Scale(f32),
    Axpy(f32),
    Relu,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-4.0f32..4.0).prop_map(Op::Scale),
        (-4.0f32..4.0).prop_map(Op::Axpy),
        Just(Op::Relu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn intercepted_execution_matches_direct_execution(
        init in proptest::collection::vec(-10.0f32..10.0, 4),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        // The same program through the proxy and the direct executor must
        // produce bit-identical results: interception is semantically
        // invisible (the paper's no-code-change claim, as a property).
        fn run<E: Executor>(mut e: E, init: &[f32], ops: &[Op]) -> Vec<f32> {
            let s = e.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
            let w = alloc(&mut e, "w", init.to_vec(), BufferTag::Param);
            e.begin_minibatch(0).unwrap();
            let mut cur = alloc(&mut e, "act0", init.to_vec(), BufferTag::Activation);
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Scale(a) => {
                        e.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: cur } }).unwrap();
                    }
                    Op::Axpy(a) => {
                        e.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha: *a, x: w, y: cur } }).unwrap();
                    }
                    Op::Relu => {
                        let next = alloc(&mut e, &format!("act{}", i + 1), vec![0.0; init.len()], BufferTag::Activation);
                        e.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Relu { x: cur, out: next } }).unwrap();
                        cur = next;
                    }
                }
            }
            download(&mut e, cur)
        }
        let via_proxy = run(client(), &init, &ops);
        let direct_out = run(direct(), &init, &ops);
        prop_assert_eq!(via_proxy.len(), direct_out.len());
        for (a, b) in via_proxy.iter().zip(&direct_out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reset_and_replay_reproduces_arbitrary_programs(
        init in proptest::collection::vec(-10.0f32..10.0, 4),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
        let w = alloc(&mut c, "w", init.clone(), BufferTag::Param);
        c.begin_minibatch(0).unwrap();
        let cur = alloc(&mut c, "act", init.clone(), BufferTag::Activation);
        for op in &ops {
            match op {
                Op::Scale(a) => {
                    c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: cur } }).unwrap();
                }
                Op::Axpy(a) => {
                    c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha: *a, x: w, y: cur } }).unwrap();
                }
                Op::Relu => {
                    c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Relu { x: cur, out: cur } }).unwrap();
                }
            }
        }
        // §4.1 verification must pass for every generated program that
        // keeps params read-only during the minibatch window.
        prop_assert!(c.verify_replay_log().unwrap());
        // And verification is repeatable (reset+replay is idempotent).
        prop_assert!(c.verify_replay_log().unwrap());
    }

    #[test]
    fn worker_cpu_state_round_trips(
        ops in proptest::collection::vec(op_strategy(), 0..8),
        iteration in 0u64..100,
    ) {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
        let b = alloc(&mut c, "w", vec![1.0; 4], BufferTag::Param);
        c.begin_minibatch(iteration).unwrap();
        for op in &ops {
            if let Op::Scale(a) = op {
                c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: b } }).unwrap();
            }
        }
        let log_len = c.replay_log_len();
        let image = c.worker_cpu_state().unwrap();
        // Clobber, restore, compare.
        c.begin_minibatch(iteration + 1).unwrap();
        prop_assert_eq!(c.replay_log_len(), 0);
        c.restore_worker_cpu_state(&image).unwrap();
        prop_assert_eq!(c.replay_log_len(), log_len);
        prop_assert_eq!(c.iteration(), iteration);
    }
}

/// Richer program alphabet for the compaction-equivalence property:
/// overwrites, copies, frees, and event edges — everything the compactor
/// is allowed to drop or must keep.
#[derive(Debug, Clone)]
enum RichOp {
    Upload(usize, i8),
    Scale(usize, f32),
    Axpy(usize, usize, f32),
    ReluInto(usize),
    Copy(usize, usize),
    Free(usize),
    EventCreate,
    Record(usize),
    Wait(usize),
    Download(usize),
}

fn rich_op_strategy() -> impl Strategy<Value = RichOp> {
    prop_oneof![
        (0usize..8, -9i8..9).prop_map(|(i, v)| RichOp::Upload(i, v)),
        (0usize..8, -3.0f32..3.0).prop_map(|(i, a)| RichOp::Scale(i, a)),
        (0usize..8, 0usize..8, -3.0f32..3.0).prop_map(|(i, j, a)| RichOp::Axpy(i, j, a)),
        (0usize..8).prop_map(RichOp::ReluInto),
        (0usize..8, 0usize..8).prop_map(|(i, j)| RichOp::Copy(i, j)),
        (0usize..8).prop_map(RichOp::Free),
        Just(RichOp::EventCreate),
        (0usize..4).prop_map(RichOp::Record),
        (0usize..4).prop_map(RichOp::Wait),
        (0usize..8).prop_map(RichOp::Download),
    ]
}

/// Tracked buffers: `(id, activation)`. The reset+replay model requires
/// params to stay read-only inside the minibatch window (the existing
/// §4.1 property asserts exactly that), and `reset_in_place` only
/// preserves persistent buffers — so generated programs *write to and
/// free* only in-minibatch activations, while reads may hit anything.
fn apply_rich(
    c: &mut ProxyClient,
    s: simgpu::StreamId,
    n: usize,
    bufs: &mut Vec<(BufferId, bool)>,
    events: &mut Vec<simgpu::EventId>,
    next_act: &mut usize,
    op: &RichOp,
) {
    let pick = |bufs: &Vec<(BufferId, bool)>, i: usize| bufs[i % bufs.len()].0;
    // Pick a write target: the i-th live activation buffer (at least one
    // always exists — `Free` never removes the last).
    let pick_act = |bufs: &Vec<(BufferId, bool)>, i: usize| {
        let acts: Vec<BufferId> = bufs.iter().filter(|(_, a)| *a).map(|(b, _)| *b).collect();
        acts[i % acts.len()]
    };
    match op {
        RichOp::Upload(i, v) => {
            let b = pick_act(bufs, *i);
            c.call(DeviceCall::Upload {
                buf: b,
                data: vec![*v as f32; n],
            })
            .unwrap();
        }
        RichOp::Scale(i, a) => {
            let b = pick_act(bufs, *i);
            c.call(DeviceCall::Launch {
                stream: s,
                kernel: KernelKind::Scale { alpha: *a, x: b },
            })
            .unwrap();
        }
        RichOp::Axpy(i, j, a) => {
            let (x, y) = (pick(bufs, *i), pick_act(bufs, *j));
            c.call(DeviceCall::Launch {
                stream: s,
                kernel: KernelKind::Axpy { alpha: *a, x, y },
            })
            .unwrap();
        }
        RichOp::ReluInto(i) => {
            let x = pick(bufs, *i);
            let out = c
                .call(DeviceCall::Malloc {
                    site: AllocSite::new(format!("act{next_act}"), n as u64),
                    elems: n as u64,
                    logical_bytes: n as u64 * 4,
                    tag: BufferTag::Activation,
                })
                .unwrap()
                .buffer()
                .unwrap();
            *next_act += 1;
            c.call(DeviceCall::Launch {
                stream: s,
                kernel: KernelKind::Relu { x, out },
            })
            .unwrap();
            bufs.push((out, true));
        }
        RichOp::Copy(i, j) => {
            let (src, dst) = (pick(bufs, *i), pick_act(bufs, *j));
            if src != dst {
                c.call(DeviceCall::CopyD2D { src, dst }).unwrap();
            }
        }
        RichOp::Free(i) => {
            let act_positions: Vec<usize> = bufs
                .iter()
                .enumerate()
                .filter(|(_, (_, act))| *act)
                .map(|(p, _)| p)
                .collect();
            // Keep at least one activation alive as a write target.
            if act_positions.len() >= 2 {
                let (b, _) = bufs.remove(act_positions[*i % act_positions.len()]);
                c.call(DeviceCall::Free { buf: b }).unwrap();
            }
        }
        RichOp::EventCreate => {
            let e = c.call(DeviceCall::EventCreate).unwrap().event().unwrap();
            events.push(e);
        }
        RichOp::Record(i) => {
            if !events.is_empty() {
                let e = events[i % events.len()];
                c.call(DeviceCall::EventRecord {
                    stream: s,
                    event: e,
                })
                .unwrap();
            }
        }
        RichOp::Wait(i) => {
            if !events.is_empty() {
                let e = events[i % events.len()];
                c.call(DeviceCall::StreamWaitEvent {
                    stream: s,
                    event: e,
                })
                .unwrap();
            }
        }
        RichOp::Download(i) => {
            let b = pick(bufs, *i);
            download(c, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole compaction invariant: replaying the compacted log
    /// reaches a state bit-identical to replaying the full log (which in
    /// turn reproduces the original execution).
    #[test]
    fn compacted_replay_is_bit_identical_to_full_replay(
        init in proptest::collection::vec(-8.0f32..8.0, 4),
        ops in proptest::collection::vec(rich_op_strategy(), 1..40),
    ) {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
        let n = init.len();
        let w = alloc(&mut c, "w", init.clone(), BufferTag::Param);
        let g = alloc(&mut c, "g", vec![0.25; n], BufferTag::Param);
        c.begin_minibatch(0).unwrap();
        let a0 = alloc(&mut c, "act_seed", vec![0.5; n], BufferTag::Activation);
        let mut bufs: Vec<(BufferId, bool)> = vec![(w, false), (g, false), (a0, true)];
        let mut events = Vec::new();
        let mut next_act = 0usize;
        for op in &ops {
            apply_rich(&mut c, s, n, &mut bufs, &mut events, &mut next_act, op);
        }
        let full_len = c.replay_log_len();
        let compact_len = c.compacted_log_len();
        prop_assert!(compact_len <= full_len);
        let state_of = |c: &mut ProxyClient, bufs: &[(BufferId, bool)]| -> Vec<Vec<u32>> {
            bufs.iter()
                .map(|(b, _)| download(c, *b).iter().map(|f| f.to_bits()).collect())
                .collect()
        };
        let original = state_of(&mut c, &bufs);
        // Full replay reproduces the original execution...
        c.reset_in_place().unwrap();
        c.replay_full().unwrap();
        let via_full = state_of(&mut c, &bufs);
        prop_assert_eq!(&original, &via_full);
        // ...and compacted + parallel-decoded replay is bit-identical.
        c.reset_in_place().unwrap();
        c.replay().unwrap();
        let via_compacted = state_of(&mut c, &bufs);
        prop_assert_eq!(&original, &via_compacted);
    }

    /// Batched submission is semantically invisible: the same program at
    /// flush-batch capacity 1 (a framed round trip per call) and the
    /// default capacity produces bit-identical state AND identical
    /// virtual time (cost charging distributes over the batch).
    #[test]
    fn batched_and_unbatched_execution_are_equivalent(
        init in proptest::collection::vec(-10.0f32..10.0, 4),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        fn run(mut c: ProxyClient, init: &[f32], ops: &[Op]) -> (Vec<u32>, simcore::SimTime) {
            let s = c.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
            let w = alloc(&mut c, "w", init.to_vec(), BufferTag::Param);
            c.begin_minibatch(0).unwrap();
            let cur = alloc(&mut c, "act", init.to_vec(), BufferTag::Activation);
            for op in ops {
                match op {
                    Op::Scale(a) => {
                        c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: cur } }).unwrap();
                    }
                    Op::Axpy(a) => {
                        c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha: *a, x: w, y: cur } }).unwrap();
                    }
                    Op::Relu => {
                        c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Relu { x: cur, out: cur } }).unwrap();
                    }
                }
            }
            let bits = download(&mut c, cur).iter().map(|f| f.to_bits()).collect();
            (bits, c.now())
        }
        let mut unbatched = client();
        unbatched.set_batch_capacity(1).unwrap();
        let (bits_1, t_1) = run(unbatched, &init, &ops);
        let (bits_n, t_n) = run(client(), &init, &ops);
        prop_assert_eq!(bits_1, bits_n);
        // Virtual-time charging distributes over the batch up to float
        // summation order (addition is not associative), so compare with
        // a relative ULP-scale tolerance rather than bitwise.
        let (a, b) = (t_1.as_secs(), t_n.as_secs());
        prop_assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "t_1={a} t_n={b}");
    }

    /// The batched wire format survives arbitrary call sequences and
    /// shard payload sizes — including payloads far smaller than a
    /// single call's encoding (oversized ops straddle shard frames) and
    /// empty batches.
    #[test]
    fn batch_framing_round_trips(
        payload in 16usize..200,
        calls in proptest::collection::vec(
            prop_oneof![
                (1u64..99, proptest::collection::vec(-1.0f32..1.0, 0..600))
                    .prop_map(|(b, data)| DeviceCall::Upload { buf: BufferId(b), data }),
                (1u64..99).prop_map(|b| DeviceCall::Free { buf: BufferId(b) }),
                Just(DeviceCall::DeviceSync),
                (1u64..99, -4.0f32..4.0).prop_map(|(b, a)| DeviceCall::Launch {
                    stream: simgpu::StreamId(7),
                    kernel: KernelKind::Scale { alpha: a, x: BufferId(b) },
                }),
            ],
            0..20,
        ),
    ) {
        let frame = proxy::encode_batch(&calls, payload);
        prop_assert_eq!(proxy::decode_batch(&frame).unwrap(), calls);
    }
}

//! Property-based tests for the interception layer: virtual-handle
//! translation totality, replay/reset idempotence, and replay-log wire
//! round-trips under arbitrary op sequences.

use proptest::prelude::*;
use proxy::{DirectExecutor, Executor, ProxyClient};
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::{GpuId, RankId};
use simgpu::{AllocSite, BufferId, BufferTag, DeviceCall, Gpu, KernelKind};
use std::sync::Arc;

fn client() -> ProxyClient {
    let clock = Arc::new(ClockBoard::new(1));
    let world = collectives::CommWorld::new(clock, CostModel::v100(), 8);
    ProxyClient::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world)
}

fn direct() -> DirectExecutor {
    let clock = Arc::new(ClockBoard::new(1));
    let world = collectives::CommWorld::new(clock, CostModel::v100(), 8);
    DirectExecutor::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world)
}

fn alloc<E: Executor>(e: &mut E, path: &str, data: Vec<f32>, tag: BufferTag) -> BufferId {
    let n = data.len() as u64;
    let b = e
        .call(DeviceCall::Malloc {
            site: AllocSite::new(path, n),
            elems: n,
            logical_bytes: n * 4,
            tag,
        })
        .unwrap()
        .buffer()
        .unwrap();
    e.call(DeviceCall::Upload { buf: b, data }).unwrap();
    b
}

fn download<E: Executor>(e: &mut E, b: BufferId) -> Vec<f32> {
    e.call(DeviceCall::Download { buf: b })
        .unwrap()
        .data()
        .unwrap()
}

/// A randomized minibatch program: params, then a sequence of elementwise
/// ops over fresh activation buffers.
#[derive(Debug, Clone)]
enum Op {
    Scale(f32),
    Axpy(f32),
    Relu,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-4.0f32..4.0).prop_map(Op::Scale),
        (-4.0f32..4.0).prop_map(Op::Axpy),
        Just(Op::Relu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn intercepted_execution_matches_direct_execution(
        init in proptest::collection::vec(-10.0f32..10.0, 4),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        // The same program through the proxy and the direct executor must
        // produce bit-identical results: interception is semantically
        // invisible (the paper's no-code-change claim, as a property).
        fn run<E: Executor>(mut e: E, init: &[f32], ops: &[Op]) -> Vec<f32> {
            let s = e.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
            let w = alloc(&mut e, "w", init.to_vec(), BufferTag::Param);
            e.begin_minibatch(0).unwrap();
            let mut cur = alloc(&mut e, "act0", init.to_vec(), BufferTag::Activation);
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Scale(a) => {
                        e.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: cur } }).unwrap();
                    }
                    Op::Axpy(a) => {
                        e.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha: *a, x: w, y: cur } }).unwrap();
                    }
                    Op::Relu => {
                        let next = alloc(&mut e, &format!("act{}", i + 1), vec![0.0; init.len()], BufferTag::Activation);
                        e.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Relu { x: cur, out: next } }).unwrap();
                        cur = next;
                    }
                }
            }
            download(&mut e, cur)
        }
        let via_proxy = run(client(), &init, &ops);
        let direct_out = run(direct(), &init, &ops);
        prop_assert_eq!(via_proxy.len(), direct_out.len());
        for (a, b) in via_proxy.iter().zip(&direct_out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reset_and_replay_reproduces_arbitrary_programs(
        init in proptest::collection::vec(-10.0f32..10.0, 4),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
        let w = alloc(&mut c, "w", init.clone(), BufferTag::Param);
        c.begin_minibatch(0).unwrap();
        let cur = alloc(&mut c, "act", init.clone(), BufferTag::Activation);
        for op in &ops {
            match op {
                Op::Scale(a) => {
                    c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: cur } }).unwrap();
                }
                Op::Axpy(a) => {
                    c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Axpy { alpha: *a, x: w, y: cur } }).unwrap();
                }
                Op::Relu => {
                    c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Relu { x: cur, out: cur } }).unwrap();
                }
            }
        }
        // §4.1 verification must pass for every generated program that
        // keeps params read-only during the minibatch window.
        prop_assert!(c.verify_replay_log().unwrap());
        // And verification is repeatable (reset+replay is idempotent).
        prop_assert!(c.verify_replay_log().unwrap());
    }

    #[test]
    fn worker_cpu_state_round_trips(
        ops in proptest::collection::vec(op_strategy(), 0..8),
        iteration in 0u64..100,
    ) {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate).unwrap().stream().unwrap();
        let b = alloc(&mut c, "w", vec![1.0; 4], BufferTag::Param);
        c.begin_minibatch(iteration).unwrap();
        for op in &ops {
            if let Op::Scale(a) = op {
                c.call(DeviceCall::Launch { stream: s, kernel: KernelKind::Scale { alpha: *a, x: b } }).unwrap();
            }
        }
        let log_len = c.replay_log_len();
        let image = c.worker_cpu_state();
        // Clobber, restore, compare.
        c.begin_minibatch(iteration + 1).unwrap();
        prop_assert_eq!(c.replay_log_len(), 0);
        c.restore_worker_cpu_state(&image).unwrap();
        prop_assert_eq!(c.replay_log_len(), log_len);
        prop_assert_eq!(c.iteration(), iteration);
    }
}

//! The [`Executor`] trait — the seam between the training framework and
//! the device, and its direct (non-intercepting) implementation.
//!
//! The training framework (`dltrain`) is generic over `Executor`, so the
//! *same* training code runs either directly against the device (baseline
//! and user-level JIT, where failures surface to "user code") or through
//! the [`crate::ProxyClient`] interception layer (transparent JIT, where
//! they do not). This mirrors the paper's claim that transparent JIT
//! requires no application change: swapping the executor is a deployment
//! choice, not a code change.

use collectives::{CollectiveObserver, Communicator, NullObserver, ReduceOp};
use simcore::failure::FailureKind;
use simcore::sync::Mutex;
use simcore::time::ClockBoard;
use simcore::{RankId, SimError, SimResult};
use simgpu::{BufferId, BufferTag, CallResult, DeviceCall, Gpu, GpuHealth};
use std::collections::HashMap;
use std::sync::Arc;

/// Token for a registered communicator (virtualized: survives communicator
/// re-creation during recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommToken(pub u64);

/// Description of an in-flight operation, given to recovery handlers.
#[derive(Debug, Clone)]
pub enum PendingOp {
    /// A device API call.
    Device(DeviceCall),
    /// A collective operation on a registered communicator.
    Collective {
        /// Communicator token.
        comm: CommToken,
        /// Human-readable op name.
        op: &'static str,
    },
    /// A point-to-point transfer.
    P2p {
        /// Peer rank.
        peer: RankId,
        /// Message tag.
        tag: u64,
    },
}

/// A snapshot of persistent (param/optimizer) state — storage key, tag,
/// and contents per buffer — plus the logical byte size used for cost
/// accounting. The payload of a JIT checkpoint.
pub type PersistentSnapshot = (Vec<(String, BufferTag, Vec<f32>)>, u64);

/// Device + communication interface the training framework runs against.
///
/// All buffer/stream/event ids a caller sees may be virtual; they remain
/// stable across recovery.
pub trait Executor: Send {
    /// This executor's global rank.
    fn rank(&self) -> RankId;
    /// Clock-board slot of this rank.
    fn clock_idx(&self) -> usize;
    /// The shared virtual clock board.
    fn clock(&self) -> Arc<ClockBoard>;

    /// Issues a device API call.
    fn call(&mut self, call: DeviceCall) -> SimResult<CallResult>;

    /// Registers a communicator, returning a stable token.
    fn register_comm(&mut self, comm: Arc<Communicator>) -> CommToken;

    /// All-reduce the contents of `buf` in place across the group.
    fn all_reduce(&mut self, comm: CommToken, buf: BufferId, op: ReduceOp) -> SimResult<()>;

    /// All-reduce a gradient bucket — several buffers fused into one
    /// collective launch — in place across the group. Backends that can
    /// fuse override this; the default preserves per-buffer semantics.
    /// Either way the result is bit-identical: fusing only concatenates
    /// independent elementwise reductions.
    fn all_reduce_bucket(
        &mut self,
        comm: CommToken,
        bufs: &[BufferId],
        op: ReduceOp,
    ) -> SimResult<()> {
        for b in bufs {
            self.all_reduce(comm, *b, op)?;
        }
        Ok(())
    }

    /// All-gather `src` (equal shards) into `dst` on every rank.
    fn all_gather_into(&mut self, comm: CommToken, src: BufferId, dst: BufferId) -> SimResult<()>;

    /// Reduce-scatter `src` into this rank's shard `dst`.
    fn reduce_scatter_into(
        &mut self,
        comm: CommToken,
        src: BufferId,
        dst: BufferId,
        op: ReduceOp,
    ) -> SimResult<()>;

    /// Broadcast `buf` from `root` (contents overwritten on non-roots).
    fn broadcast(&mut self, comm: CommToken, root: RankId, buf: BufferId) -> SimResult<()>;

    /// Barrier across the group.
    fn barrier(&mut self, comm: CommToken) -> SimResult<()>;

    /// Sends `buf` to `dst` (pipeline activations/gradients). `seq` is
    /// the sender's minibatch iteration: p2p pairing is by deterministic
    /// key, making replays idempotent.
    fn send(
        &mut self,
        dst: RankId,
        tag: u64,
        seq: u64,
        buf: BufferId,
        same_node: bool,
    ) -> SimResult<()>;

    /// Receives `(src, tag, seq)` into `buf`.
    fn recv_into(&mut self, src: RankId, tag: u64, seq: u64, buf: BufferId) -> SimResult<()>;

    /// Marks the start of minibatch `iteration`: commits deferred frees
    /// and (under interception) clears the replay log (§4.1).
    fn begin_minibatch(&mut self, iteration: u64) -> SimResult<()>;

    /// Pre-optimizer-step hook (§4.2.2's framework callback).
    fn pre_optimizer(&mut self) -> SimResult<()>;

    /// Post-optimizer-step hook.
    fn post_optimizer(&mut self) -> SimResult<()>;

    /// Snapshot of persistent (param/optimizer) state with its logical
    /// byte size — the payload of a JIT checkpoint.
    fn persistent_snapshot(&mut self) -> SimResult<PersistentSnapshot>;

    /// Restores persistent state from a snapshot (by storage key).
    fn restore_persistent(&mut self, snap: &[(String, BufferTag, Vec<f32>)]) -> SimResult<()>;

    /// Applies an injected fault to this rank's device.
    fn inject(&mut self, kind: FailureKind);

    /// Arms a one-shot transient network fault on a communicator.
    fn inject_transient(&mut self, comm: CommToken) -> SimResult<()>;

    /// Device health as seen by this rank.
    fn health(&self) -> GpuHealth;

    /// Current iteration number (as tracked by `begin_minibatch`).
    fn iteration(&self) -> u64;
}

/// Direct executor: no interception, no logging. Failures surface to the
/// caller ("user code"), which is exactly the failure model the
/// user-level JIT solution (§3) and the periodic-checkpointing baselines
/// operate under.
pub struct DirectExecutor {
    rank: RankId,
    clock_idx: usize,
    clock: Arc<ClockBoard>,
    gpu: Arc<Mutex<Gpu>>,
    world: Arc<collectives::CommWorld>,
    comms: HashMap<CommToken, Arc<Communicator>>,
    next_token: u64,
    observer: Arc<dyn CollectiveObserver>,
    iteration: u64,
    p2p_seq: u64,
    comm_gens: HashMap<CommToken, u64>,
}

impl DirectExecutor {
    /// Creates a direct executor for `rank` over `gpu`.
    pub fn new(
        rank: RankId,
        clock_idx: usize,
        gpu: Gpu,
        world: Arc<collectives::CommWorld>,
    ) -> Self {
        let clock = world.clock().clone();
        DirectExecutor {
            rank,
            clock_idx,
            clock,
            gpu: Arc::new(Mutex::new(gpu)),
            world,
            comms: HashMap::new(),
            next_token: 1,
            observer: Arc::new(NullObserver),
            iteration: 0,
            p2p_seq: 0,
            comm_gens: HashMap::new(),
        }
    }

    /// Installs a collective observer (the user-level JIT watch-list hook).
    pub fn set_observer(&mut self, obs: Arc<dyn CollectiveObserver>) {
        self.observer = obs;
    }

    /// Shared handle to the device. The user-level JIT watchdog holds a
    /// clone so it can snapshot GPU state from its own thread while the
    /// rank thread is parked in a hung collective — the analogue of the
    /// paper's checkpoint-on-a-new-CUDA-stream trick (§3.2). The lock is
    /// never held across a blocking collective wait.
    pub fn shared_gpu(&self) -> Arc<Mutex<Gpu>> {
        self.gpu.clone()
    }

    /// Runs a closure with exclusive device access.
    pub fn with_gpu<R>(&self, f: impl FnOnce(&mut Gpu) -> R) -> R {
        f(&mut self.gpu.lock())
    }

    /// The communicator behind a token.
    pub fn comm(&self, token: CommToken) -> SimResult<Arc<Communicator>> {
        self.comms
            .get(&token)
            .cloned()
            .ok_or_else(|| SimError::InvalidHandle(format!("comm token {token:?}")))
    }

    fn fetch(&mut self, buf: BufferId) -> SimResult<(Vec<f32>, u64)> {
        let gpu = self.gpu.lock();
        let b = gpu.buffer(buf)?;
        Ok((b.data.clone(), b.logical_bytes))
    }

    /// Current operation sequence number for a communicator token. The
    /// counter advances only on success, so a failed or aborted attempt
    /// is retried at the same generation (idempotent pairing).
    fn gen_of(&self, token: CommToken) -> u64 {
        self.comm_gens.get(&token).copied().unwrap_or(0)
    }

    fn bump_gen(&mut self, token: CommToken) {
        *self.comm_gens.entry(token).or_insert(0) += 1;
    }

    fn check_comm_health(&self) -> SimResult<()> {
        let gpu = self.gpu.lock();
        match gpu.health() {
            // Driver corruption surfaces at network operations even though
            // plain device calls still appear to succeed (§4.2.1 case 2).
            GpuHealth::DriverSuspect => Err(SimError::DriverCorrupted(gpu.id)),
            h => h.check_api(gpu.id),
        }
    }
}

impl Executor for DirectExecutor {
    fn rank(&self) -> RankId {
        self.rank
    }

    fn clock_idx(&self) -> usize {
        self.clock_idx
    }

    fn clock(&self) -> Arc<ClockBoard> {
        self.clock.clone()
    }

    fn call(&mut self, call: DeviceCall) -> SimResult<CallResult> {
        let (res, cost) = self.gpu.lock().exec(&call)?;
        self.clock.advance(self.clock_idx, cost);
        Ok(res)
    }

    fn register_comm(&mut self, comm: Arc<Communicator>) -> CommToken {
        let token = CommToken(self.next_token);
        self.next_token += 1;
        self.comms.insert(token, comm);
        token
    }

    fn all_reduce(&mut self, comm: CommToken, buf: BufferId, op: ReduceOp) -> SimResult<()> {
        self.check_comm_health()?;
        let (data, logical) = self.fetch(buf)?;
        let arc = self.comm(comm)?;
        let gen = self.gen_of(comm);
        let out =
            arc.all_reduce_shared(self.rank, gen, data, op, logical, self.observer.as_ref())?;
        self.bump_gen(comm);
        self.gpu.lock().load_buffer(buf, &out)
    }

    fn all_reduce_bucket(
        &mut self,
        comm: CommToken,
        bufs: &[BufferId],
        op: ReduceOp,
    ) -> SimResult<()> {
        if bufs.len() <= 1 {
            return match bufs.first() {
                Some(b) => self.all_reduce(comm, *b, op),
                None => Ok(()),
            };
        }
        self.check_comm_health()?;
        // Fuse the bucket into one collective: concatenate in caller
        // order, reduce once, scatter the slices back. One generation per
        // bucket keeps retry idempotent at bucket granularity.
        let mut fused = Vec::new();
        let mut lens = Vec::with_capacity(bufs.len());
        let mut logical = 0u64;
        {
            let gpu = self.gpu.lock();
            for buf in bufs {
                let b = gpu.buffer(*buf)?;
                lens.push(b.data.len());
                logical += b.logical_bytes;
                fused.extend_from_slice(&b.data);
            }
        }
        let arc = self.comm(comm)?;
        let gen = self.gen_of(comm);
        let out =
            arc.all_reduce_shared(self.rank, gen, fused, op, logical, self.observer.as_ref())?;
        self.bump_gen(comm);
        let mut gpu = self.gpu.lock();
        let mut off = 0usize;
        for (buf, len) in bufs.iter().zip(lens) {
            gpu.load_buffer(*buf, &out[off..off + len])?;
            off += len;
        }
        Ok(())
    }

    fn all_gather_into(&mut self, comm: CommToken, src: BufferId, dst: BufferId) -> SimResult<()> {
        self.check_comm_health()?;
        let (data, logical) = self.fetch(src)?;
        let arc = self.comm(comm)?;
        let gen = self.gen_of(comm);
        let out = arc.all_gather_shared(self.rank, gen, data, logical, self.observer.as_ref())?;
        self.bump_gen(comm);
        self.gpu.lock().load_buffer(dst, &out)
    }

    fn reduce_scatter_into(
        &mut self,
        comm: CommToken,
        src: BufferId,
        dst: BufferId,
        op: ReduceOp,
    ) -> SimResult<()> {
        self.check_comm_health()?;
        let (data, logical) = self.fetch(src)?;
        let arc = self.comm(comm)?;
        let gen = self.gen_of(comm);
        let out = arc.reduce_scatter(self.rank, gen, data, op, logical, self.observer.as_ref())?;
        self.bump_gen(comm);
        self.gpu.lock().load_buffer(dst, &out)
    }

    fn broadcast(&mut self, comm: CommToken, root: RankId, buf: BufferId) -> SimResult<()> {
        self.check_comm_health()?;
        let comm_arc = self.comm(comm)?;
        let (data, logical) = self.fetch(buf)?;
        let contribution = if self.rank == root { Some(data) } else { None };
        let gen = self.gen_of(comm);
        let out = comm_arc.broadcast_shared(
            self.rank,
            gen,
            root,
            contribution,
            logical,
            self.observer.as_ref(),
        )?;
        self.bump_gen(comm);
        self.gpu.lock().load_buffer(buf, &out)
    }

    fn barrier(&mut self, comm: CommToken) -> SimResult<()> {
        let arc = self.comm(comm)?;
        let gen = self.gen_of(comm);
        arc.barrier(self.rank, gen, self.observer.as_ref())?;
        self.bump_gen(comm);
        Ok(())
    }

    fn send(
        &mut self,
        dst: RankId,
        tag: u64,
        seq: u64,
        buf: BufferId,
        same_node: bool,
    ) -> SimResult<()> {
        self.check_comm_health()?;
        let (data, logical) = self.fetch(buf)?;
        self.world.send(
            self.rank,
            self.clock_idx,
            dst,
            tag,
            seq,
            data,
            logical,
            same_node,
        )
    }

    fn recv_into(&mut self, src: RankId, tag: u64, seq: u64, buf: BufferId) -> SimResult<()> {
        self.check_comm_health()?;
        // A pipeline recv blocks exactly like a collective when the peer
        // stage has failed; register it with the hang watch-list.
        self.p2p_seq += 1;
        let ticket = collectives::CollectiveTicket {
            comm: collectives::CommId(u64::MAX),
            generation: self.p2p_seq,
            rank: self.rank,
            kind: collectives::CollKind::Barrier,
            entered_at: std::time::Instant::now(),
        };
        self.observer.collective_started(&ticket);
        let result = self.world.recv(src, self.rank, self.clock_idx, tag, seq);
        self.observer.collective_finished(&ticket);
        let data = result?;
        self.gpu.lock().load_buffer(buf, &data)
    }

    fn begin_minibatch(&mut self, iteration: u64) -> SimResult<()> {
        self.iteration = iteration;
        self.gpu.lock().commit_frees();
        Ok(())
    }

    fn pre_optimizer(&mut self) -> SimResult<()> {
        Ok(())
    }

    fn post_optimizer(&mut self) -> SimResult<()> {
        Ok(())
    }

    fn persistent_snapshot(&mut self) -> SimResult<(Vec<(String, BufferTag, Vec<f32>)>, u64)> {
        let gpu = self.gpu.lock();
        if !gpu.health().memory_readable() {
            return Err(SimError::CudaSticky(gpu.id));
        }
        Ok(gpu.snapshot_persistent())
    }

    fn restore_persistent(&mut self, snap: &[(String, BufferTag, Vec<f32>)]) -> SimResult<()> {
        self.gpu.lock().restore_persistent(snap)
    }

    fn inject(&mut self, kind: FailureKind) {
        self.gpu.lock().inject(kind);
    }

    fn inject_transient(&mut self, comm: CommToken) -> SimResult<()> {
        self.comm(comm)?.inject_transient_fault(self.rank);
        Ok(())
    }

    fn health(&self) -> GpuHealth {
        self.gpu.lock().health()
    }

    fn iteration(&self) -> u64 {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::CommWorld;
    use simcore::cost::CostModel;
    use simgpu::AllocSite;
    use std::thread;

    fn setup(n: usize) -> (Arc<CommWorld>, Vec<DirectExecutor>) {
        let clock = Arc::new(ClockBoard::new(n));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let execs = (0..n)
            .map(|i| {
                let gpu = Gpu::new(simcore::GpuId(i as u32), CostModel::v100());
                DirectExecutor::new(RankId(i as u32), i, gpu, world.clone())
            })
            .collect();
        (world, execs)
    }

    fn alloc(
        e: &mut DirectExecutor,
        path: &str,
        data: Vec<f32>,
        tag: BufferTag,
    ) -> SimResult<BufferId> {
        let n = data.len() as u64;
        let b = e
            .call(DeviceCall::Malloc {
                site: AllocSite::new(path, n),
                elems: n,
                logical_bytes: n * 4,
                tag,
            })?
            .buffer()?;
        e.call(DeviceCall::Upload { buf: b, data })?;
        Ok(b)
    }

    #[test]
    fn device_calls_advance_the_clock() -> SimResult<()> {
        let (_, mut execs) = setup(1);
        let e = &mut execs[0];
        let before = e.clock().now(0);
        alloc(e, "x", vec![1.0; 64], BufferTag::Param)?;
        assert!(e.clock().now(0) > before);
        Ok(())
    }

    #[test]
    fn all_reduce_through_executors() -> SimResult<()> {
        let (world, mut execs) = setup(2);
        let comm = world.create_comm(vec![RankId(0), RankId(1)], vec![0, 1]);
        let handles: Vec<_> = execs
            .drain(..)
            .enumerate()
            .map(|(i, mut e)| {
                let comm = comm.clone();
                thread::spawn(move || -> SimResult<Vec<f32>> {
                    let t = e.register_comm(comm);
                    let b = alloc(&mut e, "g", vec![(i + 1) as f32; 4], BufferTag::Gradient)?;
                    e.all_reduce(t, b, ReduceOp::Sum)?;
                    e.call(DeviceCall::Download { buf: b })?.data()
                })
            })
            .collect();
        for h in handles {
            let joined = h
                .join()
                .map_err(|_| SimError::Protocol("rank panicked".into()))??;
            assert_eq!(joined, vec![3.0; 4]);
        }
        Ok(())
    }

    #[test]
    fn failed_device_refuses_collectives() -> SimResult<()> {
        let (world, mut execs) = setup(1);
        let comm = world.create_comm(vec![RankId(0)], vec![0]);
        let e = &mut execs[0];
        let t = e.register_comm(comm);
        let b = alloc(e, "g", vec![1.0], BufferTag::Gradient)?;
        e.inject(FailureKind::StickyCuda);
        let err = e.all_reduce(t, b, ReduceOp::Sum).unwrap_err();
        assert!(matches!(err, SimError::CudaSticky(_)));
        Ok(())
    }

    #[test]
    fn send_recv_between_executors() -> SimResult<()> {
        let (_, mut execs) = setup(2);
        let mut e1 = execs
            .pop()
            .ok_or_else(|| SimError::Protocol("missing exec".into()))?;
        let mut e0 = execs
            .pop()
            .ok_or_else(|| SimError::Protocol("missing exec".into()))?;
        let src = alloc(&mut e0, "act", vec![5.0, 6.0], BufferTag::Activation)?;
        let dst = alloc(&mut e1, "act_in", vec![0.0, 0.0], BufferTag::Activation)?;
        e0.send(RankId(1), 0, 0, src, true)?;
        e1.recv_into(RankId(0), 0, 0, dst)?;
        assert_eq!(
            e1.call(DeviceCall::Download { buf: dst })?.data()?,
            vec![5.0, 6.0]
        );
        Ok(())
    }

    #[test]
    fn persistent_snapshot_excludes_activations() -> SimResult<()> {
        let (_, mut execs) = setup(1);
        let e = &mut execs[0];
        alloc(e, "w", vec![1.0; 4], BufferTag::Param)?;
        alloc(e, "act", vec![2.0; 4], BufferTag::Activation)?;
        let (snap, bytes) = e.persistent_snapshot()?;
        assert_eq!(snap.len(), 1);
        assert_eq!(bytes, 16);
        Ok(())
    }

    #[test]
    fn snapshot_fails_when_memory_unreadable() -> SimResult<()> {
        let (_, mut execs) = setup(1);
        let e = &mut execs[0];
        alloc(e, "w", vec![1.0; 4], BufferTag::Param)?;
        e.inject(FailureKind::StickyCuda);
        assert!(e.persistent_snapshot().is_err());
        Ok(())
    }
}

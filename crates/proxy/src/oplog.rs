//! Logged operations and the virtual-handle map.
//!
//! The interception layer hands the application **virtual** buffer,
//! stream, and event handles; the [`VirtualMap`] translates them to the
//! physical handles of the current proxy-server epoch. When recovery
//! restarts the server, physical handles change — but "we cannot change
//! the handles already held in application variables", so recovery
//! re-creates the objects and *rebinds* the same virtual ids (§4.2.1).
//!
//! A [`LoggedOp`] is one entry in the replay or creation log: the call
//! with its (virtual) ids, its input values, and — for object-creating
//! calls — the virtual id that was handed out, so replay can rebind it.

use crate::executor::CommToken;
use collectives::ReduceOp;
use serde::{Deserialize, Serialize};
use simcore::{RankId, SimError, SimResult};
use simgpu::{BufferId, DeviceCall, EventId, StreamId};
use std::collections::HashMap;

/// A collective operation as recorded in the replay log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoggedColl {
    /// In-place all-reduce of a buffer.
    AllReduce {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Buffer (virtual).
        buf: BufferId,
        /// Reduction op.
        op: ReduceOp,
    },
    /// All-gather from `src` into `dst`.
    AllGather {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Source shard (virtual).
        src: BufferId,
        /// Gathered destination (virtual).
        dst: BufferId,
    },
    /// Reduce-scatter from `src` into shard `dst`.
    ReduceScatter {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Full-size source (virtual).
        src: BufferId,
        /// Shard destination (virtual).
        dst: BufferId,
        /// Reduction op.
        op: ReduceOp,
    },
    /// Broadcast of `buf` from `root`.
    Broadcast {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Root rank.
        root: RankId,
        /// Buffer (virtual).
        buf: BufferId,
    },
    /// Barrier.
    Barrier {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
    },
}

impl LoggedColl {
    /// Replay-log record version. Replay logs written before a failure
    /// are read during recovery of the restarted proxy server (§4.1), so
    /// variant or field changes must bump this alongside
    /// [`LoggedOp::SCHEMA_VERSION`].
    pub const SCHEMA_VERSION: u16 = 1;
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoggedOp {
    /// A device API call (ids are virtual). `result_vid` is the virtual id
    /// handed to the application for object-creating calls.
    Device {
        /// The call with virtual ids.
        call: DeviceCall,
        /// Virtual id returned to the application, if any.
        result_vid: Option<u64>,
    },
    /// A collective operation.
    Collective(LoggedColl),
    /// A p2p send.
    Send {
        /// Destination rank.
        dst: RankId,
        /// Tag.
        tag: u64,
        /// Sender's minibatch iteration (deterministic pairing key).
        seq: u64,
        /// Buffer sent (virtual).
        buf: BufferId,
        /// Intra-node transfer.
        same_node: bool,
    },
    /// A p2p receive.
    Recv {
        /// Source rank.
        src: RankId,
        /// Tag.
        tag: u64,
        /// Sender's minibatch iteration.
        seq: u64,
        /// Destination buffer (virtual).
        buf: BufferId,
    },
}

impl LoggedOp {
    /// Replay-log record version; see [`LoggedColl::SCHEMA_VERSION`].
    pub const SCHEMA_VERSION: u16 = 1;
}

/// Virtual→physical handle translation for one rank.
#[derive(Debug, Default)]
pub struct VirtualMap {
    buf: HashMap<u64, BufferId>,
    stream: HashMap<u64, StreamId>,
    event: HashMap<u64, EventId>,
    next: u64,
}

impl VirtualMap {
    /// Creates an empty map. Virtual ids start at a high base so that
    /// accidentally passing a physical id through translation fails fast.
    pub fn new() -> Self {
        VirtualMap {
            buf: HashMap::new(),
            stream: HashMap::new(),
            event: HashMap::new(),
            next: 1 << 32,
        }
    }

    fn fresh(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Registers a new physical buffer, returning its virtual handle.
    pub fn bind_buffer(&mut self, phys: BufferId) -> BufferId {
        let v = self.fresh();
        self.buf.insert(v, phys);
        BufferId(v)
    }

    /// Registers a new physical stream.
    pub fn bind_stream(&mut self, phys: StreamId) -> StreamId {
        let v = self.fresh();
        self.stream.insert(v, phys);
        StreamId(v)
    }

    /// Registers a new physical event.
    pub fn bind_event(&mut self, phys: EventId) -> EventId {
        let v = self.fresh();
        self.event.insert(v, phys);
        EventId(v)
    }

    /// Rebinds an existing virtual buffer to a new physical one (after
    /// server restart + object recreation).
    pub fn rebind_buffer(&mut self, virt: BufferId, phys: BufferId) {
        self.buf.insert(virt.0, phys);
    }

    /// Rebinds an existing virtual stream.
    pub fn rebind_stream(&mut self, virt: StreamId, phys: StreamId) {
        self.stream.insert(virt.0, phys);
    }

    /// Rebinds an existing virtual event.
    pub fn rebind_event(&mut self, virt: EventId, phys: EventId) {
        self.event.insert(virt.0, phys);
    }

    /// Resolves a virtual buffer handle.
    pub fn buffer(&self, virt: BufferId) -> SimResult<BufferId> {
        self.buf
            .get(&virt.0)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(format!("virtual {virt}")))
    }

    /// Resolves a virtual stream handle.
    pub fn stream(&self, virt: StreamId) -> SimResult<StreamId> {
        self.stream
            .get(&virt.0)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(format!("virtual {virt}")))
    }

    /// Resolves a virtual event handle.
    pub fn event(&self, virt: EventId) -> SimResult<EventId> {
        self.event
            .get(&virt.0)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(format!("virtual {virt}")))
    }

    /// Forgets a virtual buffer (after Free commits).
    pub fn unbind_buffer(&mut self, virt: BufferId) {
        self.buf.remove(&virt.0);
    }

    /// Forgets a virtual stream.
    pub fn unbind_stream(&mut self, virt: StreamId) {
        self.stream.remove(&virt.0);
    }

    /// Forgets a virtual event.
    pub fn unbind_event(&mut self, virt: EventId) {
        self.event.remove(&virt.0);
    }

    /// Translates a call with virtual ids into one with physical ids.
    pub fn to_physical(&self, call: &DeviceCall) -> SimResult<DeviceCall> {
        use simgpu::KernelKind as K;
        Ok(match call {
            DeviceCall::Malloc { .. } | DeviceCall::StreamCreate | DeviceCall::EventCreate => {
                call.clone()
            }
            DeviceCall::Free { buf } => DeviceCall::Free {
                buf: self.buffer(*buf)?,
            },
            DeviceCall::Upload { buf, data } => DeviceCall::Upload {
                buf: self.buffer(*buf)?,
                data: data.clone(),
            },
            DeviceCall::Download { buf } => DeviceCall::Download {
                buf: self.buffer(*buf)?,
            },
            DeviceCall::CopyD2D { src, dst } => DeviceCall::CopyD2D {
                src: self.buffer(*src)?,
                dst: self.buffer(*dst)?,
            },
            DeviceCall::Launch { stream, kernel } => {
                let b = |id: &BufferId| self.buffer(*id);
                let kernel = match kernel {
                    K::MatMul {
                        a,
                        b: bb,
                        out,
                        m,
                        k,
                        n,
                        trans_a,
                        trans_b,
                    } => K::MatMul {
                        a: b(a)?,
                        b: b(bb)?,
                        out: b(out)?,
                        m: *m,
                        k: *k,
                        n: *n,
                        trans_a: *trans_a,
                        trans_b: *trans_b,
                    },
                    K::BiasAdd {
                        x,
                        bias,
                        rows,
                        cols,
                    } => K::BiasAdd {
                        x: b(x)?,
                        bias: b(bias)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::BiasGrad {
                        dy,
                        dbias,
                        rows,
                        cols,
                    } => K::BiasGrad {
                        dy: b(dy)?,
                        dbias: b(dbias)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::Relu { x, out } => K::Relu {
                        x: b(x)?,
                        out: b(out)?,
                    },
                    K::ReluBwd { x, dy, dx } => K::ReluBwd {
                        x: b(x)?,
                        dy: b(dy)?,
                        dx: b(dx)?,
                    },
                    K::SoftmaxXentFwd {
                        logits,
                        labels,
                        probs,
                        loss,
                        rows,
                        cols,
                    } => K::SoftmaxXentFwd {
                        logits: b(logits)?,
                        labels: b(labels)?,
                        probs: b(probs)?,
                        loss: b(loss)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::SoftmaxXentBwd {
                        probs,
                        labels,
                        dlogits,
                        rows,
                        cols,
                    } => K::SoftmaxXentBwd {
                        probs: b(probs)?,
                        labels: b(labels)?,
                        dlogits: b(dlogits)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::LayerNormFwd {
                        x,
                        gamma,
                        beta,
                        out,
                        mean,
                        rstd,
                        rows,
                        cols,
                    } => K::LayerNormFwd {
                        x: b(x)?,
                        gamma: b(gamma)?,
                        beta: b(beta)?,
                        out: b(out)?,
                        mean: b(mean)?,
                        rstd: b(rstd)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::LayerNormBwd {
                        x,
                        gamma,
                        dy,
                        mean,
                        rstd,
                        dx,
                        dgamma,
                        dbeta,
                        rows,
                        cols,
                    } => K::LayerNormBwd {
                        x: b(x)?,
                        gamma: b(gamma)?,
                        dy: b(dy)?,
                        mean: b(mean)?,
                        rstd: b(rstd)?,
                        dx: b(dx)?,
                        dgamma: b(dgamma)?,
                        dbeta: b(dbeta)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::Zero { buf } => K::Zero { buf: b(buf)? },
                    K::Fill { buf, value } => K::Fill {
                        buf: b(buf)?,
                        value: *value,
                    },
                    K::Axpy { alpha, x, y } => K::Axpy {
                        alpha: *alpha,
                        x: b(x)?,
                        y: b(y)?,
                    },
                    K::Scale { alpha, x } => K::Scale {
                        alpha: *alpha,
                        x: b(x)?,
                    },
                    K::SgdStep {
                        param,
                        grad,
                        momentum,
                        lr,
                        mu,
                        weight_decay,
                    } => K::SgdStep {
                        param: b(param)?,
                        grad: b(grad)?,
                        momentum: b(momentum)?,
                        lr: *lr,
                        mu: *mu,
                        weight_decay: *weight_decay,
                    },
                    K::AdamStep {
                        param,
                        grad,
                        m,
                        v,
                        lr,
                        beta1,
                        beta2,
                        eps,
                        t,
                        weight_decay,
                    } => K::AdamStep {
                        param: b(param)?,
                        grad: b(grad)?,
                        m: b(m)?,
                        v: b(v)?,
                        lr: *lr,
                        beta1: *beta1,
                        beta2: *beta2,
                        eps: *eps,
                        t: *t,
                        weight_decay: *weight_decay,
                    },
                };
                DeviceCall::Launch {
                    stream: self.stream(*stream)?,
                    kernel,
                }
            }
            DeviceCall::StreamDestroy { stream } => DeviceCall::StreamDestroy {
                stream: self.stream(*stream)?,
            },
            DeviceCall::EventDestroy { event } => DeviceCall::EventDestroy {
                event: self.event(*event)?,
            },
            DeviceCall::EventRecord { stream, event } => DeviceCall::EventRecord {
                stream: self.stream(*stream)?,
                event: self.event(*event)?,
            },
            DeviceCall::StreamWaitEvent { stream, event } => DeviceCall::StreamWaitEvent {
                stream: self.stream(*stream)?,
                event: self.event(*event)?,
            },
            DeviceCall::EventQuery { event } => DeviceCall::EventQuery {
                event: self.event(*event)?,
            },
            DeviceCall::StreamSync { stream } => DeviceCall::StreamSync {
                stream: self.stream(*stream)?,
            },
            DeviceCall::DeviceSync => DeviceCall::DeviceSync,
        })
    }

    /// Number of live virtual bindings (diagnostics).
    pub fn bindings(&self) -> (usize, usize, usize) {
        (self.buf.len(), self.stream.len(), self.event.len())
    }

    /// Drops every binding whose virtual id is not in `keep` — called
    /// after a proxy-server restart or GPU migration, when all physical
    /// objects died with the context and only the re-created persistent
    /// objects have valid bindings (replay re-binds the rest as it
    /// re-executes their creation calls).
    pub fn retain_vids(&mut self, keep: &std::collections::HashSet<u64>) {
        self.buf.retain(|v, _| keep.contains(v));
        self.stream.retain(|v, _| keep.contains(v));
        self.event.retain(|v, _| keep.contains(v));
    }

    /// All live virtual buffer ids, sorted (used to key state checksums by
    /// virtual identity, which is stable across replay).
    pub fn buffer_vids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.buf.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::KernelKind;

    #[test]
    fn bind_and_translate_buffer_calls() -> SimResult<()> {
        let mut m = VirtualMap::new();
        let v = m.bind_buffer(BufferId(7));
        assert!(v.0 >= 1 << 32, "virtual ids live in a distinct range");
        let call = DeviceCall::Download { buf: v };
        let phys = m.to_physical(&call)?;
        assert_eq!(phys, DeviceCall::Download { buf: BufferId(7) });
        Ok(())
    }

    #[test]
    fn rebinding_redirects_without_changing_virtual_id() -> SimResult<()> {
        let mut m = VirtualMap::new();
        let v = m.bind_buffer(BufferId(1));
        m.rebind_buffer(v, BufferId(99));
        assert_eq!(m.buffer(v)?, BufferId(99));
        Ok(())
    }

    #[test]
    fn unknown_virtual_handle_errors() {
        let m = VirtualMap::new();
        assert!(m.buffer(BufferId(12345)).is_err());
        assert!(m.stream(StreamId(1)).is_err());
        assert!(m.event(EventId(1)).is_err());
    }

    #[test]
    fn kernel_translation_maps_every_buffer() -> SimResult<()> {
        let mut m = VirtualMap::new();
        let va = m.bind_buffer(BufferId(1));
        let vb = m.bind_buffer(BufferId(2));
        let vo = m.bind_buffer(BufferId(3));
        let vs = m.bind_stream(StreamId(10));
        let call = DeviceCall::Launch {
            stream: vs,
            kernel: KernelKind::MatMul {
                a: va,
                b: vb,
                out: vo,
                m: 2,
                k: 2,
                n: 2,
                trans_a: false,
                trans_b: false,
            },
        };
        match m.to_physical(&call)? {
            DeviceCall::Launch { stream, kernel } => {
                assert_eq!(stream, StreamId(10));
                assert_eq!(
                    kernel.buffers(),
                    vec![BufferId(1), BufferId(2), BufferId(3)]
                );
            }
            other => {
                return Err(SimError::Protocol(format!(
                    "unexpected translated call {other:?}"
                )))
            }
        }
        Ok(())
    }

    #[test]
    fn unbind_removes_bindings() {
        let mut m = VirtualMap::new();
        let v = m.bind_buffer(BufferId(1));
        m.unbind_buffer(v);
        assert!(m.buffer(v).is_err());
        assert_eq!(m.bindings(), (0, 0, 0));
    }
}

// ---------------------------------------------------------------------
// Wire format: the replay log is part of the worker's CPU state, so a
// CRIU image must serialize it (§4.3 — the restored worker resumes with
// its interception state intact).
// ---------------------------------------------------------------------

use simcore::codec::{Decode, Encode};

impl Encode for LoggedColl {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            LoggedColl::AllReduce {
                comm,
                gen,
                buf: b,
                op,
            } => {
                0u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                b.encode(buf);
                encode_reduce_op(*op, buf);
            }
            LoggedColl::AllGather {
                comm,
                gen,
                src,
                dst,
            } => {
                1u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                src.encode(buf);
                dst.encode(buf);
            }
            LoggedColl::ReduceScatter {
                comm,
                gen,
                src,
                dst,
                op,
            } => {
                2u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                src.encode(buf);
                dst.encode(buf);
                encode_reduce_op(*op, buf);
            }
            LoggedColl::Broadcast {
                comm,
                gen,
                root,
                buf: b,
            } => {
                3u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                root.0.encode(buf);
                b.encode(buf);
            }
            LoggedColl::Barrier { comm, gen } => {
                4u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
            }
        }
    }
}

fn encode_reduce_op(op: ReduceOp, buf: &mut bytes::BytesMut) {
    let v: u8 = match op {
        ReduceOp::Sum => 0,
        ReduceOp::Avg => 1,
        ReduceOp::Max => 2,
    };
    v.encode(buf);
}

fn decode_reduce_op(buf: &mut bytes::Bytes) -> SimResult<ReduceOp> {
    Ok(match u8::decode(buf)? {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Avg,
        2 => ReduceOp::Max,
        other => return Err(SimError::Codec(format!("bad ReduceOp {other}"))),
    })
}

impl Decode for LoggedColl {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => LoggedColl::AllReduce {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                buf: BufferId::decode(buf)?,
                op: decode_reduce_op(buf)?,
            },
            1 => LoggedColl::AllGather {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                src: BufferId::decode(buf)?,
                dst: BufferId::decode(buf)?,
            },
            2 => LoggedColl::ReduceScatter {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                src: BufferId::decode(buf)?,
                dst: BufferId::decode(buf)?,
                op: decode_reduce_op(buf)?,
            },
            3 => LoggedColl::Broadcast {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                root: simcore::RankId(u32::decode(buf)?),
                buf: BufferId::decode(buf)?,
            },
            4 => LoggedColl::Barrier {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
            },
            other => return Err(SimError::Codec(format!("bad LoggedColl tag {other}"))),
        })
    }
}

impl Encode for LoggedOp {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            LoggedOp::Device { call, result_vid } => {
                0u8.encode(buf);
                call.encode(buf);
                result_vid.encode(buf);
            }
            LoggedOp::Collective(c) => {
                1u8.encode(buf);
                c.encode(buf);
            }
            LoggedOp::Send {
                dst,
                tag,
                seq,
                buf: b,
                same_node,
            } => {
                2u8.encode(buf);
                dst.0.encode(buf);
                tag.encode(buf);
                seq.encode(buf);
                b.encode(buf);
                same_node.encode(buf);
            }
            LoggedOp::Recv {
                src,
                tag,
                seq,
                buf: b,
            } => {
                3u8.encode(buf);
                src.0.encode(buf);
                tag.encode(buf);
                seq.encode(buf);
                b.encode(buf);
            }
        }
    }
}

impl Decode for LoggedOp {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => LoggedOp::Device {
                call: DeviceCall::decode(buf)?,
                result_vid: Option::<u64>::decode(buf)?,
            },
            1 => LoggedOp::Collective(LoggedColl::decode(buf)?),
            2 => LoggedOp::Send {
                dst: simcore::RankId(u32::decode(buf)?),
                tag: u64::decode(buf)?,
                seq: u64::decode(buf)?,
                buf: BufferId::decode(buf)?,
                same_node: bool::decode(buf)?,
            },
            3 => LoggedOp::Recv {
                src: simcore::RankId(u32::decode(buf)?),
                tag: u64::decode(buf)?,
                seq: u64::decode(buf)?,
                buf: BufferId::decode(buf)?,
            },
            other => return Err(SimError::Codec(format!("bad LoggedOp tag {other}"))),
        })
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use simcore::codec::{decode_framed, encode_framed};
    use simcore::RankId;
    use simgpu::{AllocSite, BufferTag};

    #[test]
    fn logged_op_wire_round_trip() -> SimResult<()> {
        let ops = vec![
            LoggedOp::Device {
                call: DeviceCall::Malloc {
                    site: AllocSite::new("w", 8),
                    elems: 8,
                    logical_bytes: 32,
                    tag: BufferTag::Param,
                },
                result_vid: Some(1 << 32),
            },
            LoggedOp::Collective(LoggedColl::AllReduce {
                comm: CommToken(2),
                gen: 17,
                buf: BufferId(9),
                op: ReduceOp::Avg,
            }),
            LoggedOp::Collective(LoggedColl::ReduceScatter {
                comm: CommToken(3),
                gen: 4,
                src: BufferId(1),
                dst: BufferId(2),
                op: ReduceOp::Sum,
            }),
            LoggedOp::Send {
                dst: RankId(3),
                tag: 1,
                seq: 12,
                buf: BufferId(5),
                same_node: false,
            },
            LoggedOp::Recv {
                src: RankId(2),
                tag: 2,
                seq: 12,
                buf: BufferId(6),
            },
        ];
        let framed = encode_framed(&ops);
        let back: Vec<LoggedOp> = decode_framed(&framed)?;
        assert_eq!(back, ops);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Arena-backed replay log.
//
// The hot path appends one op per intercepted device call, so the log's
// storage layout *is* the interception overhead: a `Vec<LoggedOp>` pays
// an owned allocation per op (plus one per kernel operand list) and
// scatters records across the heap. [`OpLog`] instead encodes each op
// into a single append-only byte arena at push time — the same canonical
// bytes the CRIU-style CPU-state image needs anyway — and keeps a small
// fixed-width index record per op carrying the *effect summary*
// (reads/writes/creates/destroys) that minibatch-boundary compaction
// consumes. No per-op heap allocation survives the push.
// ---------------------------------------------------------------------

use bytes::{BufMut, BytesMut};
use std::collections::HashSet;

/// Most buffer operands any op reads (today's widest is `LayerNormBwd`
/// with 5; one slot of headroom). Overflow sets [`OpLog::overflowed`],
/// which makes compaction a verbatim copy — correct, just not smaller.
const MAX_READS: usize = 6;
/// Most buffer operands any op writes (today's widest is 3).
const MAX_WRITES: usize = 4;

/// Coarse op classification driving compaction and replay scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Malloc,
    Free,
    Upload,
    Download,
    CopyD2D,
    Launch,
    StreamCreate,
    StreamDestroy,
    EventCreate,
    EventDestroy,
    EventRecord,
    StreamWaitEvent,
    EventQuery,
    StreamSync,
    DeviceSync,
    /// Collectives and p2p: externally visible, never compacted away.
    Pinned,
}

/// Fixed-width per-op index entry: arena span + effect summary.
#[derive(Debug, Clone, Copy)]
struct OpRecord {
    off: usize,
    len: usize,
    class: OpClass,
    /// Virtual id handed to the application (0 = none; real vids start
    /// at `1 << 32`).
    result_vid: u64,
    /// Stream vid the op runs on (0 = none).
    stream: u64,
    /// Event vid the op touches (0 = none).
    event: u64,
    reads: [u64; MAX_READS],
    nreads: u8,
    writes: [u64; MAX_WRITES],
    nwrites: u8,
}

fn push_vid(arr: &mut [u64], n: &mut u8, overflow: &mut bool, vid: u64) {
    match arr.get_mut(*n as usize) {
        Some(slot) => {
            *slot = vid;
            *n += 1;
        }
        None => *overflow = true,
    }
}

impl OpRecord {
    fn blank(off: usize, len: usize) -> OpRecord {
        OpRecord {
            off,
            len,
            class: OpClass::DeviceSync,
            result_vid: 0,
            stream: 0,
            event: 0,
            reads: [0; MAX_READS],
            nreads: 0,
            writes: [0; MAX_WRITES],
            nwrites: 0,
        }
    }

    fn build_device(
        call: &DeviceCall,
        result_vid: Option<u64>,
        off: usize,
        len: usize,
    ) -> (OpRecord, bool) {
        let mut r = OpRecord::blank(off, len);
        let mut overflow = false;
        r.result_vid = result_vid.unwrap_or(0);
        match call {
            DeviceCall::Malloc { .. } => {
                // Malloc zero-fills: a full overwrite of the new vid.
                r.class = OpClass::Malloc;
                push_vid(&mut r.writes, &mut r.nwrites, &mut overflow, r.result_vid);
            }
            DeviceCall::Free { buf } => {
                r.class = OpClass::Free;
                push_vid(&mut r.writes, &mut r.nwrites, &mut overflow, buf.0);
            }
            DeviceCall::Upload { buf, .. } => {
                // Strict-length copy: full overwrite of the target.
                r.class = OpClass::Upload;
                push_vid(&mut r.writes, &mut r.nwrites, &mut overflow, buf.0);
            }
            DeviceCall::Download { buf } => {
                r.class = OpClass::Download;
                push_vid(&mut r.reads, &mut r.nreads, &mut overflow, buf.0);
            }
            DeviceCall::CopyD2D { src, dst } => {
                r.class = OpClass::CopyD2D;
                push_vid(&mut r.reads, &mut r.nreads, &mut overflow, src.0);
                push_vid(&mut r.writes, &mut r.nwrites, &mut overflow, dst.0);
            }
            DeviceCall::Launch { stream, kernel } => {
                r.class = OpClass::Launch;
                r.stream = stream.0;
                for b in kernel.reads() {
                    push_vid(&mut r.reads, &mut r.nreads, &mut overflow, b.0);
                }
                for b in kernel.writes() {
                    push_vid(&mut r.writes, &mut r.nwrites, &mut overflow, b.0);
                }
            }
            DeviceCall::StreamCreate => {
                r.class = OpClass::StreamCreate;
                r.stream = r.result_vid;
            }
            DeviceCall::StreamDestroy { stream } => {
                r.class = OpClass::StreamDestroy;
                r.stream = stream.0;
            }
            DeviceCall::EventCreate => {
                r.class = OpClass::EventCreate;
                r.event = r.result_vid;
            }
            DeviceCall::EventDestroy { event } => {
                r.class = OpClass::EventDestroy;
                r.event = event.0;
            }
            DeviceCall::EventRecord { stream, event } => {
                r.class = OpClass::EventRecord;
                r.stream = stream.0;
                r.event = event.0;
            }
            DeviceCall::StreamWaitEvent { stream, event } => {
                r.class = OpClass::StreamWaitEvent;
                r.stream = stream.0;
                r.event = event.0;
            }
            DeviceCall::EventQuery { event } => {
                r.class = OpClass::EventQuery;
                r.event = event.0;
            }
            DeviceCall::StreamSync { stream } => {
                r.class = OpClass::StreamSync;
                r.stream = stream.0;
            }
            DeviceCall::DeviceSync => r.class = OpClass::DeviceSync,
        }
        (r, overflow)
    }

    fn build(op: &LoggedOp, off: usize, len: usize) -> (OpRecord, bool) {
        let mut r = OpRecord::blank(off, len);
        let mut overflow = false;
        match op {
            LoggedOp::Device { call, result_vid } => {
                return OpRecord::build_device(call, *result_vid, off, len);
            }
            LoggedOp::Collective(c) => {
                r.class = OpClass::Pinned;
                let mut rd = |b: &BufferId| {
                    push_vid(&mut r.reads, &mut r.nreads, &mut overflow, b.0);
                };
                match c {
                    LoggedColl::AllReduce { buf, .. } => rd(buf),
                    LoggedColl::AllGather { src, dst, .. } => {
                        rd(src);
                        rd(dst);
                    }
                    LoggedColl::ReduceScatter { src, dst, .. } => {
                        rd(src);
                        rd(dst);
                    }
                    LoggedColl::Broadcast { buf, .. } => rd(buf),
                    LoggedColl::Barrier { .. } => {}
                }
            }
            LoggedOp::Send { buf, .. } | LoggedOp::Recv { buf, .. } => {
                r.class = OpClass::Pinned;
                push_vid(&mut r.reads, &mut r.nreads, &mut overflow, buf.0);
            }
        }
        (r, overflow)
    }
}

/// The per-minibatch replay log: an append-only encoded-op arena plus a
/// fixed-width effect index. Wire-compatible with the `Vec<LoggedOp>`
/// encoding (`u64` count + concatenated op encodings), so CPU-state
/// images carry the same schema as before.
#[derive(Debug, Clone, Default)]
pub struct OpLog {
    arena: BytesMut,
    index: Vec<OpRecord>,
    overflowed: bool,
}

impl OpLog {
    /// Creates an empty log.
    pub fn new() -> OpLog {
        OpLog::default()
    }

    /// Number of logged ops.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes held by the encoded-op arena (diagnostics).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Drops all ops (minibatch boundary). The arena allocation is
    /// reused by the next minibatch.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.index.clear();
        self.overflowed = false;
    }

    /// Appends one op: encodes it into the arena and derives its effect
    /// summary. No per-op heap allocation is retained.
    pub fn push(&mut self, op: &LoggedOp) {
        let off = self.arena.len();
        op.encode(&mut self.arena);
        let len = self.arena.len() - off;
        let (rec, overflow) = OpRecord::build(op, off, len);
        if overflow {
            self.overflowed = true;
        }
        self.index.push(rec);
    }

    /// Appends a device call without materializing an owned
    /// [`LoggedOp`] (the interception hot path: zero heap allocation
    /// per op beyond arena growth). Encodes exactly what
    /// `LoggedOp::Device { call, result_vid }` would.
    pub fn push_device(&mut self, call: &DeviceCall, result_vid: Option<u64>) {
        let off = self.arena.len();
        0u8.encode(&mut self.arena);
        call.encode(&mut self.arena);
        result_vid.encode(&mut self.arena);
        let len = self.arena.len() - off;
        let (rec, overflow) = OpRecord::build_device(call, result_vid, off, len);
        if overflow {
            self.overflowed = true;
        }
        self.index.push(rec);
    }

    /// Decodes the op at `i`.
    pub fn get(&self, i: usize) -> SimResult<LoggedOp> {
        let r = self
            .index
            .get(i)
            .ok_or_else(|| SimError::Protocol(format!("oplog index {i} out of range")))?;
        let raw = self
            .arena
            .get(r.off..r.off + r.len)
            .ok_or_else(|| SimError::Protocol(format!("oplog arena span for op {i} invalid")))?;
        let mut b = bytes::Bytes::from(raw.to_vec());
        LoggedOp::decode(&mut b)
    }

    /// Decodes every op, serially and in order.
    pub fn ops(&self) -> SimResult<Vec<LoggedOp>> {
        let mut b = bytes::Bytes::from(self.arena.to_vec());
        let mut out = Vec::with_capacity(self.index.len());
        for _ in 0..self.index.len() {
            out.push(LoggedOp::decode(&mut b)?);
        }
        Ok(out)
    }

    /// Decodes every op across up to `workers` lanes on the bounded
    /// [`simcore::pool::fan_out`] pool, returning ops in log order.
    ///
    /// Lanes are keyed by stream vid: ops of one stream decode on one
    /// lane in log order, so independent streams' logs are processed in
    /// parallel; stream-less ops round-robin by position. Decode is
    /// binding-independent (it never consults the [`VirtualMap`], whose
    /// contents evolve as creation ops replay), which is what makes this
    /// phase safe to parallelize; execution stays serial in log order,
    /// preserving cross-stream event edges by construction.
    pub fn decode_parallel(&self, workers: usize) -> SimResult<Vec<LoggedOp>> {
        let n = self.index.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let snap = bytes::Bytes::from(self.arena.to_vec());
        let lanes = workers.clamp(1, n);
        let lane_of = |i: usize| -> usize {
            match self.index.get(i) {
                Some(r) if r.stream != 0 => (r.stream as usize) % lanes,
                _ => i % lanes,
            }
        };
        type LaneSlot = simcore::sync::Mutex<Vec<(usize, SimResult<LoggedOp>)>>;
        let slots: Vec<LaneSlot> = (0..lanes)
            .map(|_| simcore::sync::Mutex::new(Vec::new()))
            .collect();
        simcore::pool::fan_out(lanes, lanes, "oplog-decode", |l| {
            let mut out = Vec::new();
            for (i, r) in self.index.iter().enumerate() {
                if lane_of(i) != l {
                    continue;
                }
                let mut b = snap.slice(r.off..r.off + r.len);
                out.push((i, LoggedOp::decode(&mut b)));
            }
            if let Some(slot) = slots.get(l) {
                *slot.lock() = out;
            }
        });
        let mut merged: Vec<Option<LoggedOp>> = (0..n).map(|_| None).collect();
        for s in slots {
            for (i, res) in s.into_inner() {
                if let Some(slot) = merged.get_mut(i) {
                    *slot = Some(res?);
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in merged.into_iter().enumerate() {
            out.push(
                slot.ok_or_else(|| SimError::Protocol(format!("oplog decode dropped op {i}")))?,
            );
        }
        Ok(out)
    }

    /// Minibatch-boundary compaction: returns a log that replays to a
    /// state bit-identical to this one (over live virtual buffers) with
    /// superseded ops dropped.
    ///
    /// Rules (backward liveness over virtual ids, which are never
    /// reused):
    ///
    /// * `Download`/`EventQuery`/`StreamSync`/`DeviceSync` never affect
    ///   memory — always dropped.
    /// * A store (`Upload`, `CopyD2D`, `Launch`) is dropped when every
    ///   buffer it writes is *dead*: fully overwritten later (writes
    ///   minus reads of a kept op — every kernel store replaces its whole
    ///   target) or freed later with the allocation also in-log. Kept
    ///   stores mark their pure write targets dead and their reads live.
    /// * `Free` of a buffer allocated *before* the minibatch stays, and
    ///   pins earlier stores (the graveyard keeps free-time contents for
    ///   resurrection); `Free` of an in-log allocation kills earlier
    ///   stores, and the whole malloc..free chain is dropped when no
    ///   kept op references the vid in between.
    /// * `EventRecord` survives if a wait follows on the event, or it is
    ///   the event's last record and the event outlives the log (the
    ///   application may still query it); `StreamWaitEvent` survives if
    ///   any record precedes it — kept record/wait pairs preserve every
    ///   cross-stream edge parallel replay must respect.
    /// * Creation ops survive unless destroyed in-log with no kept
    ///   reference in between; collectives and p2p are always kept.
    pub fn compact(&self) -> OpLog {
        let keep = if self.overflowed {
            vec![true; self.index.len()]
        } else {
            self.keep_mask()
        };
        let mut out = OpLog::new();
        out.overflowed = self.overflowed;
        for (r, k) in self.index.iter().zip(keep) {
            if !k {
                continue;
            }
            if let Some(raw) = self.arena.get(r.off..r.off + r.len) {
                let off = out.arena.len();
                out.arena.put_slice(raw);
                let mut nr = *r;
                nr.off = off;
                out.index.push(nr);
            }
        }
        out
    }

    fn keep_mask(&self) -> Vec<bool> {
        let n = self.index.len();
        let mut keep = vec![true; n];

        // Forward pass: creation/destruction positions and event edges.
        let mut created: HashSet<u64> = HashSet::new();
        let mut destroyed_at: HashMap<u64, usize> = HashMap::new();
        let mut records: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut waits: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut last_record: HashMap<u64, usize> = HashMap::new();
        for (i, r) in self.index.iter().enumerate() {
            match r.class {
                OpClass::Malloc | OpClass::StreamCreate | OpClass::EventCreate => {
                    created.insert(r.result_vid);
                }
                OpClass::Free => {
                    if let Some(v) = r.writes.first() {
                        destroyed_at.insert(*v, i);
                    }
                }
                OpClass::StreamDestroy => {
                    destroyed_at.insert(r.stream, i);
                }
                OpClass::EventDestroy => {
                    destroyed_at.insert(r.event, i);
                }
                OpClass::EventRecord => {
                    records.entry(r.event).or_default().push(i);
                    last_record.insert(r.event, i);
                }
                OpClass::StreamWaitEvent => {
                    waits.entry(r.event).or_default().push(i);
                }
                _ => {}
            }
        }

        // Backward pass: per-vid liveness. Absent = live (buffers that
        // outlive the log are observable state).
        let mut dead: HashSet<u64> = HashSet::new();
        // Vids referenced by an op we decided to keep (used by the
        // dead-allocation-chain fixup at the creation op).
        let mut refs_kept: HashSet<u64> = HashSet::new();
        for i in (0..n).rev() {
            let r = self.index[i];
            match r.class {
                OpClass::Download
                | OpClass::EventQuery
                | OpClass::StreamSync
                | OpClass::DeviceSync => keep[i] = false,
                OpClass::EventRecord => {
                    let has_later_wait = waits
                        .get(&r.event)
                        .map(|w| w.iter().any(|&j| j > i))
                        .unwrap_or(false);
                    let is_last_live = last_record.get(&r.event) == Some(&i)
                        && !destroyed_at.contains_key(&r.event);
                    keep[i] = has_later_wait || is_last_live;
                }
                OpClass::StreamWaitEvent => {
                    keep[i] = records
                        .get(&r.event)
                        .map(|w| w.iter().any(|&j| j < i))
                        .unwrap_or(false);
                }
                OpClass::Upload => {
                    let dst = r.writes.first().copied().unwrap_or(0);
                    if dead.contains(&dst) {
                        keep[i] = false;
                    } else {
                        dead.insert(dst);
                    }
                }
                OpClass::CopyD2D => {
                    let dst = r.writes.first().copied().unwrap_or(0);
                    let src = r.reads.first().copied().unwrap_or(0);
                    if dead.contains(&dst) {
                        keep[i] = false;
                    } else {
                        dead.insert(dst);
                        dead.remove(&src);
                    }
                }
                OpClass::Launch => {
                    let writes = &r.writes[..r.nwrites as usize];
                    let reads = &r.reads[..r.nreads as usize];
                    if writes.iter().all(|w| dead.contains(w)) {
                        keep[i] = false;
                    } else {
                        for w in writes {
                            if !reads.contains(w) {
                                dead.insert(*w);
                            }
                        }
                        for rd in reads {
                            dead.remove(rd);
                        }
                    }
                }
                OpClass::Free => {
                    let v = r.writes.first().copied().unwrap_or(0);
                    if created.contains(&v) {
                        // In-log allocation: free-time contents are
                        // unobservable (the pair never outlives a reset).
                        dead.insert(v);
                    } else {
                        // Pre-existing buffer: the graveyard snapshot of
                        // its free-time contents must stay exact.
                        dead.remove(&v);
                    }
                }
                OpClass::Malloc | OpClass::StreamCreate | OpClass::EventCreate => {
                    let v = r.result_vid;
                    if let Some(&d) = destroyed_at.get(&v) {
                        if !refs_kept.contains(&v) {
                            keep[i] = false;
                            if let Some(kd) = keep.get_mut(d) {
                                *kd = false;
                            }
                        }
                    }
                }
                OpClass::StreamDestroy | OpClass::EventDestroy | OpClass::Pinned => {
                    if r.class == OpClass::Pinned {
                        for rd in &r.reads[..r.nreads as usize] {
                            dead.remove(rd);
                        }
                    }
                }
            }
            // Record what a kept op references, except destruction ops:
            // a Free/Destroy alone must not pin its dying object's
            // creation (that is exactly the chain the fixup removes).
            let destruction = matches!(
                r.class,
                OpClass::Free | OpClass::StreamDestroy | OpClass::EventDestroy
            );
            if keep[i] && !destruction {
                if r.stream != 0 {
                    refs_kept.insert(r.stream);
                }
                if r.event != 0 {
                    refs_kept.insert(r.event);
                }
                for v in &r.reads[..r.nreads as usize] {
                    refs_kept.insert(*v);
                }
                for v in &r.writes[..r.nwrites as usize] {
                    refs_kept.insert(*v);
                }
            }
        }
        keep
    }
}

impl Encode for OpLog {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        (self.index.len() as u64).encode(buf);
        buf.put_slice(&self.arena);
    }
}

impl Decode for OpLog {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        let n = u64::decode(buf)? as usize;
        let mut log = OpLog::new();
        for _ in 0..n {
            let op = LoggedOp::decode(buf)?;
            log.push(&op);
        }
        Ok(log)
    }
}

// ---------------------------------------------------------------------
// Deferred-submission ring.
// ---------------------------------------------------------------------

/// Fixed-capacity single-producer/single-consumer ring of translated
/// (physical-id) device calls awaiting a batched round trip to the proxy
/// server. The trainer thread is both producer (at interception) and
/// consumer (at flush), so the fixed capacity bounds staging memory and
/// forces a flush cadence rather than guarding against races.
#[derive(Debug)]
pub struct OpRing {
    slots: Vec<Option<DeviceCall>>,
    head: usize,
    len: usize,
}

impl OpRing {
    /// Creates a ring holding at most `cap` (≥ 1) deferred calls.
    pub fn with_capacity(cap: usize) -> OpRing {
        OpRing {
            slots: (0..cap.max(1)).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Deferred calls currently staged.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no calls.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether a push would be rejected.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Stages a call; hands it back when the ring is full (the caller
    /// must flush and retry).
    pub fn push(&mut self, op: DeviceCall) -> Result<(), DeviceCall> {
        if self.is_full() {
            return Err(op);
        }
        let tail = (self.head + self.len) % self.slots.len();
        match self.slots.get_mut(tail) {
            Some(slot) => {
                *slot = Some(op);
                self.len += 1;
                Ok(())
            }
            None => Err(op),
        }
    }

    /// Removes the oldest staged call.
    pub fn pop(&mut self) -> Option<DeviceCall> {
        if self.len == 0 {
            return None;
        }
        let op = self.slots.get_mut(self.head).and_then(|s| s.take());
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        op
    }

    /// Removes all staged calls in FIFO order.
    pub fn drain(&mut self) -> Vec<DeviceCall> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(op) = self.pop() {
            out.push(op);
        }
        out
    }

    /// Discards all staged calls (recovery reset: the ops are already in
    /// the replay log, so replay regenerates their effects).
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod arena_tests {
    use super::*;
    use simgpu::{AllocSite, BufferTag, KernelKind};

    fn vid(i: u64) -> u64 {
        (1 << 32) + i
    }

    fn malloc(v: u64) -> LoggedOp {
        LoggedOp::Device {
            call: DeviceCall::Malloc {
                site: AllocSite::new("b", 4),
                elems: 4,
                logical_bytes: 16,
                tag: BufferTag::Activation,
            },
            result_vid: Some(v),
        }
    }

    fn upload(v: u64) -> LoggedOp {
        LoggedOp::Device {
            call: DeviceCall::Upload {
                buf: BufferId(v),
                data: vec![1.0, 2.0, 3.0, 4.0],
            },
            result_vid: None,
        }
    }

    fn free(v: u64) -> LoggedOp {
        LoggedOp::Device {
            call: DeviceCall::Free { buf: BufferId(v) },
            result_vid: None,
        }
    }

    fn launch(stream: u64, kernel: KernelKind) -> LoggedOp {
        LoggedOp::Device {
            call: DeviceCall::Launch {
                stream: StreamId(stream),
                kernel,
            },
            result_vid: None,
        }
    }

    fn device(call: DeviceCall) -> LoggedOp {
        LoggedOp::Device {
            call,
            result_vid: None,
        }
    }

    #[test]
    fn oplog_wire_format_matches_vec_of_logged_ops() -> SimResult<()> {
        let ops = vec![malloc(vid(1)), upload(vid(1)), free(vid(1))];
        let mut log = OpLog::new();
        for op in &ops {
            log.push(op);
        }
        let mut a = bytes::BytesMut::new();
        ops.encode(&mut a);
        let mut b = bytes::BytesMut::new();
        log.encode(&mut b);
        assert_eq!(&a[..], &b[..], "OpLog wire format must equal Vec<LoggedOp>");
        // And the round trip decodes to the same ops.
        let mut raw = bytes::Bytes::from(b.to_vec());
        let back = OpLog::decode(&mut raw)?;
        assert_eq!(back.ops()?, ops);
        Ok(())
    }

    #[test]
    fn superseded_upload_is_compacted_away() -> SimResult<()> {
        let mut log = OpLog::new();
        log.push(&upload(vid(1)));
        log.push(&upload(vid(1)));
        let c = log.compact();
        assert_eq!(c.len(), 1, "first upload is fully overwritten");
        assert_eq!(c.ops()?, vec![upload(vid(1))]);
        Ok(())
    }

    #[test]
    fn dead_allocation_chain_is_dropped_whole() -> SimResult<()> {
        let mut log = OpLog::new();
        log.push(&malloc(vid(1)));
        log.push(&upload(vid(1)));
        log.push(&launch(
            vid(9),
            KernelKind::Zero {
                buf: BufferId(vid(1)),
            },
        ));
        log.push(&free(vid(1)));
        // A surviving buffer keeps the log non-trivial.
        log.push(&upload(vid(2)));
        let c = log.compact();
        assert_eq!(c.ops()?, vec![upload(vid(2))]);
        Ok(())
    }

    #[test]
    fn free_of_preexisting_buffer_pins_prior_stores() {
        // vid(1) was allocated before the minibatch: its free-time
        // contents feed graveyard resurrection, so the upload stays.
        let mut log = OpLog::new();
        log.push(&upload(vid(1)));
        log.push(&free(vid(1)));
        let c = log.compact();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn read_between_stores_pins_the_first_store() {
        let mut log = OpLog::new();
        log.push(&upload(vid(1)));
        log.push(&launch(
            vid(9),
            KernelKind::Relu {
                x: BufferId(vid(1)),
                out: BufferId(vid(2)),
            },
        ));
        log.push(&upload(vid(1)));
        let c = log.compact();
        assert_eq!(c.len(), 3, "the read keeps the first store live");
    }

    #[test]
    fn sync_and_query_ops_always_drop() {
        let mut log = OpLog::new();
        log.push(&device(DeviceCall::StreamSync {
            stream: StreamId(vid(9)),
        }));
        log.push(&device(DeviceCall::DeviceSync));
        log.push(&device(DeviceCall::EventQuery {
            event: EventId(vid(8)),
        }));
        log.push(&device(DeviceCall::Download {
            buf: BufferId(vid(1)),
        }));
        assert_eq!(log.compact().len(), 0);
    }

    #[test]
    fn event_record_wait_pairs_survive_unpaired_ops_drop() {
        let rec = device(DeviceCall::EventRecord {
            stream: StreamId(vid(9)),
            event: EventId(vid(8)),
        });
        let wait = device(DeviceCall::StreamWaitEvent {
            stream: StreamId(vid(10)),
            event: EventId(vid(8)),
        });
        // Paired: both survive.
        let mut log = OpLog::new();
        log.push(&rec);
        log.push(&wait);
        assert_eq!(log.compact().len(), 2);
        // Wait with no prior record in the log: dropped (the device
        // treats a wait on an unrecorded event as a no-op).
        let mut log = OpLog::new();
        log.push(&wait);
        assert_eq!(log.compact().len(), 0);
        // A record with no waits survives only as the event's last
        // record (the application may still query the event).
        let mut log = OpLog::new();
        log.push(&rec);
        log.push(&rec);
        assert_eq!(log.compact().len(), 1);
    }

    #[test]
    fn collectives_and_p2p_are_never_dropped_and_pin_reads() {
        let mut log = OpLog::new();
        log.push(&upload(vid(1)));
        log.push(&LoggedOp::Collective(LoggedColl::AllReduce {
            comm: CommToken(1),
            gen: 0,
            buf: BufferId(vid(1)),
            op: ReduceOp::Sum,
        }));
        log.push(&LoggedOp::Send {
            dst: RankId(1),
            tag: 0,
            seq: 0,
            buf: BufferId(vid(1)),
            same_node: false,
        });
        assert_eq!(log.compact().len(), 3);
    }

    #[test]
    fn parallel_decode_preserves_order() -> SimResult<()> {
        let mut log = OpLog::new();
        let mut expect = Vec::new();
        for i in 0..200u64 {
            let op = launch(
                vid(100 + i % 3),
                KernelKind::Zero {
                    buf: BufferId(vid(i)),
                },
            );
            log.push(&op);
            expect.push(op);
        }
        for w in [1, 2, 4] {
            assert_eq!(log.decode_parallel(w)?, expect);
        }
        Ok(())
    }

    #[test]
    fn clear_resets_but_reuses_arena() {
        let mut log = OpLog::new();
        log.push(&upload(vid(1)));
        assert!(log.arena_len() > 0);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.arena_len(), 0);
        log.push(&upload(vid(2)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_is_fifo_wraps_and_rejects_when_full() {
        let mut ring = OpRing::with_capacity(2);
        assert!(ring.is_empty());
        assert!(ring.push(DeviceCall::DeviceSync).is_ok());
        assert!(ring
            .push(DeviceCall::StreamSync {
                stream: StreamId(1)
            })
            .is_ok());
        assert!(ring.is_full());
        // Full: the op comes back.
        assert!(ring.push(DeviceCall::DeviceSync).is_err());
        assert_eq!(ring.pop(), Some(DeviceCall::DeviceSync));
        // Wrap around.
        assert!(ring.push(DeviceCall::DeviceSync).is_ok());
        assert_eq!(
            ring.drain(),
            vec![
                DeviceCall::StreamSync {
                    stream: StreamId(1)
                },
                DeviceCall::DeviceSync
            ]
        );
        assert!(ring.is_empty());
    }
}
